//! VSC2: the compressed, zone-mapped, appendable on-disk dataset format.
//!
//! VSC1 ([`crate::vsc`]) stores each column as one raw block and verifies a
//! load by re-encoding the whole table — robust, but at 10M+ rows both the
//! bytes on disk and the cold-start decode dominate. VSC2 keeps the same
//! durability contract (manifest-last writes, per-payload digests, typed
//! errors on any corruption) while scaling the substrate:
//!
//! * **Row groups.** Every column is split into fixed-size row groups
//!   ([`viewseeker_dataset::zones::DEFAULT_GROUP_ROWS`] rows). Each
//!   `(column, group)` chunk is encoded independently and carries a
//!   [`ColumnZone`] summary (min/max, NaN count, distinct bound) in the
//!   manifest — the zone maps the fused executor uses to skip row groups a
//!   DQ predicate provably excludes.
//! * **Per-chunk encodings**, chosen by smallest output: `raw` (f64 bit
//!   patterns, 8-byte aligned for zero-copy), `rle` (run-length),
//!   `dict` (per-chunk value dictionary + bit-packed codes) for numeric
//!   columns; `codes` (bit-packed dictionary codes) and `rlecodes` for
//!   categorical columns.
//! * **Zero-copy cold starts.** Column files keep every chunk 8-byte
//!   aligned; a numeric column whose chunks are all `raw` and contiguous is
//!   served straight out of a read-only file mapping ([`crate::map`])
//!   without decoding. Validation still runs: per-chunk digests (a
//!   word-at-a-time FNV-1a) plus a recomputation of every zone summary
//!   against the decoded (or mapped) data, so a bit flip in either the
//!   payload or the manifest's zone maps is a typed [`CatalogError::Corrupt`].
//! * **Atomic appends.** New rows only ever *add* bytes: fresh chunks are
//!   appended to the column files (rewriting the last, partial row group as
//!   new bytes at the end — its old bytes become dead space), then the
//!   manifest is swapped via write-to-temp + rename. A crash mid-append
//!   leaves the old manifest pointing at the old prefix, which still loads
//!   bit-identically; orphaned trailing bytes are ignored. Categorical
//!   dictionaries are append-only, so existing codes never change meaning.
//!
//! The trade against VSC1: a load no longer re-encodes the table to verify
//! `table_checksum` (that is exactly the cold-start cost VSC2 exists to
//! avoid); integrity rests on the per-chunk digests and zone recomputation
//! instead. `table_checksum` is still computed at save/append time so
//! catalog identity stays comparable across both formats, and appended
//! datasets trade the zero-copy fast path for append-only atomicity until
//! they are re-saved.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use viewseeker_dataset::schema::{AttributeRole, ColumnType};
use viewseeker_dataset::zones::DEFAULT_GROUP_ROWS;
use viewseeker_dataset::{Column, ColumnZone, Schema, Table, ZoneMaps};

#[cfg(target_endian = "little")]
use crate::map::MappedF64;
use crate::map::Mapping;
use crate::vsc::{hex, table_checksum, Fnv64, MANIFEST};
use crate::CatalogError;

/// Format tag VSC2 manifests carry.
pub const FORMAT: &str = "VSC2";

/// Magic prefix of every VSC2 column file (8 bytes, keeping the first chunk
/// 8-byte aligned).
pub const COLUMN_MAGIC: &[u8; 8] = b"VSC2COL\0";

/// Largest per-chunk numeric dictionary the encoder will build.
const DICT_MAX: usize = 1 << 16;

/// The file name of column `index`.
#[must_use]
pub fn column_file(index: usize) -> String {
    format!("col_{index:05}.vs2")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST)
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One encoded `(column, row group)` chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// `"raw"`, `"rle"`, `"dict"`, `"codes"`, or `"rlecodes"`.
    pub encoding: String,
    /// Byte offset of the payload inside the column file (8-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (padding excluded).
    pub bytes: u64,
    /// Word-FNV digest ([`fnv64_words`]) of the payload, lowercase hex.
    pub checksum: String,
    /// Zone summary of the rows this chunk encodes.
    pub zone: ColumnZone,
}

/// One column of a VSC2 dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest2Column {
    /// Column name.
    pub name: String,
    /// `"categorical"` or `"numeric"`.
    pub kind: String,
    /// `"dimension"` or `"measure"`.
    pub role: String,
    /// Column file name (always [`column_file`] of the column's index).
    pub file: String,
    /// Append-only global dictionary (categorical columns; empty otherwise).
    pub dictionary: Vec<String>,
    /// One chunk per row group, ascending.
    pub chunks: Vec<ChunkMeta>,
}

/// The VSC2 manifest: format tag, shape, and per-chunk metadata. Written
/// last (atomically, via temp + rename), so a directory with a VSC2
/// manifest always describes a complete, loadable dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest2 {
    /// Always [`FORMAT`].
    pub format: String,
    /// Total rows.
    pub rows: u64,
    /// Rows per row group (the final group may be shorter).
    pub group_rows: u64,
    /// Digest of the full table ([`table_checksum`]), lowercase hex.
    /// Computed at save/append time; loads verify per-chunk digests and
    /// zone summaries instead of re-encoding the table.
    pub table_checksum: String,
    /// Per-column metadata.
    pub columns: Vec<Manifest2Column>,
}

impl Manifest2 {
    /// Total payload bytes across every chunk (dead bytes from rewritten
    /// partial groups excluded).
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.chunks.iter().map(|ch| ch.bytes).sum::<u64>())
            .sum()
    }

    /// Number of row groups the manifest describes.
    #[must_use]
    pub fn group_count(&self) -> usize {
        let rows = usize::try_from(self.rows).unwrap_or(usize::MAX);
        let group_rows = usize::try_from(self.group_rows).unwrap_or(usize::MAX);
        if group_rows == 0 {
            0
        } else {
            rows.div_ceil(group_rows)
        }
    }

    /// Rebuilds the schema the manifest describes.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Corrupt`] for unknown kind/role tags or invalid
    /// schema shapes.
    pub fn schema(&self) -> Result<Schema, CatalogError> {
        let metas = self
            .columns
            .iter()
            .map(|c| {
                let column_type = match c.kind.as_str() {
                    "categorical" => ColumnType::Categorical,
                    "numeric" => ColumnType::Numeric,
                    other => {
                        return Err(CatalogError::Corrupt(format!(
                            "unknown column kind {other:?} in manifest"
                        )))
                    }
                };
                let role = match c.role.as_str() {
                    "dimension" => AttributeRole::Dimension,
                    "measure" => AttributeRole::Measure,
                    other => {
                        return Err(CatalogError::Corrupt(format!(
                            "unknown column role {other:?} in manifest"
                        )))
                    }
                };
                Ok(viewseeker_dataset::schema::ColumnMeta {
                    name: c.name.clone(),
                    column_type,
                    role,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Schema::new(metas).map_err(|e| CatalogError::Corrupt(format!("manifest schema: {e}")))
    }

    /// Assembles the manifest's zone summaries into executor-ready
    /// [`ZoneMaps`].
    ///
    /// # Errors
    ///
    /// [`CatalogError::Corrupt`] when any column's chunk count disagrees
    /// with the manifest's row/group shape.
    pub fn zone_maps(&self) -> Result<ZoneMaps, CatalogError> {
        let n_groups = self.group_count();
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let mut zones = Vec::with_capacity(self.columns.len());
            for c in &self.columns {
                let chunk = c.chunks.get(g).ok_or_else(|| {
                    CatalogError::Corrupt(format!(
                        "column {:?} has {} chunks, expected {n_groups}",
                        c.name,
                        c.chunks.len()
                    ))
                })?;
                zones.push(chunk.zone);
            }
            groups.push(zones);
        }
        Ok(ZoneMaps {
            group_rows: usize::try_from(self.group_rows)
                .map_err(|_| CatalogError::Corrupt("group_rows overflows".into()))?,
            rows: usize::try_from(self.rows)
                .map_err(|_| CatalogError::Corrupt("row count overflows".into()))?,
            groups,
        })
    }
}

// ---------------------------------------------------------------------------
// Digest
// ---------------------------------------------------------------------------

/// FNV-1a folded a 64-bit word at a time (little-endian), byte-wise over
/// the tail. ~8× fewer multiplies than byte-wise FNV — the digest that
/// makes verifying a mapped 80MB column a fast single pass. Distinct from
/// [`crate::vsc::fnv64`]; the two formats' digests are not comparable.
#[must_use]
pub fn fnv64_words(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = Fnv64::default().finish(); // the FNV-1a offset basis
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        h = (h ^ u64::from_le_bytes(word)).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

/// Bits needed to represent codes `0..n` (at least 1).
fn bits_for(n: u64) -> u32 {
    match n {
        0 | 1 => 1,
        n => 64 - (n - 1).leading_zeros(),
    }
}

/// Packs `codes` at `width` bits each into a little-endian bit stream.
fn pack_codes(codes: &[u32], width: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity((codes.len() * width as usize).div_ceil(8));
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for &code in codes {
        acc |= u64::from(code) << bits;
        bits += width;
        while bits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push((acc & 0xff) as u8);
    }
    out
}

/// Unpacks `n` codes of `width` bits from a little-endian bit stream,
/// requiring the stream to be exactly the packed length.
/// Unpacks `n` bit-packed dictionary codes straight into `out` as their
/// dictionary values — the fused form of [`unpack_codes`] + translate,
/// skipping the intermediate code vector (measurable on multi-million-row
/// cold starts).
fn unpack_dict(
    bytes: &[u8],
    width: u32,
    n: usize,
    dict: &[f64],
    out: &mut Vec<f64>,
    what: &str,
) -> Result<(), CatalogError> {
    if !(1..=32).contains(&width) {
        return Err(CatalogError::Corrupt(format!(
            "{what}: invalid code width {width}"
        )));
    }
    let expected = (n * width as usize).div_ceil(8);
    if bytes.len() != expected {
        return Err(CatalogError::Corrupt(format!(
            "{what}: packed codes are {} bytes, expected {expected}",
            bytes.len()
        )));
    }
    let mask: u64 = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    out.reserve(n);
    let mut iter = bytes.iter();
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for _ in 0..n {
        while bits < width {
            let byte = iter
                .next()
                .ok_or_else(|| CatalogError::Corrupt(format!("{what}: packed codes truncated")))?;
            acc |= u64::from(*byte) << bits;
            bits += 8;
        }
        let code = (acc & mask) as usize;
        acc >>= width;
        bits -= width;
        let value = dict.get(code).ok_or_else(|| {
            CatalogError::Corrupt(format!(
                "{what}: code {code} out of range for dictionary of {}",
                dict.len()
            ))
        })?;
        out.push(*value);
    }
    Ok(())
}

fn unpack_codes(bytes: &[u8], width: u32, n: usize, what: &str) -> Result<Vec<u32>, CatalogError> {
    if !(1..=32).contains(&width) {
        return Err(CatalogError::Corrupt(format!(
            "{what}: invalid code width {width}"
        )));
    }
    let expected = (n * width as usize).div_ceil(8);
    if bytes.len() != expected {
        return Err(CatalogError::Corrupt(format!(
            "{what}: packed codes are {} bytes, expected {expected}",
            bytes.len()
        )));
    }
    let mask: u64 = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    let mut out = Vec::with_capacity(n);
    let mut iter = bytes.iter();
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for _ in 0..n {
        while bits < width {
            let byte = iter
                .next()
                .ok_or_else(|| CatalogError::Corrupt(format!("{what}: packed codes truncated")))?;
            acc |= u64::from(*byte) << bits;
            bits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= width;
        bits -= width;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Chunk encode / decode
// ---------------------------------------------------------------------------

/// A cursor over a chunk payload that fails loudly on short reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], what: &'a str) -> Self {
        Reader {
            bytes,
            pos: 0,
            what,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CatalogError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(CatalogError::Corrupt(format!(
                "{} truncated at byte {}",
                self.what, self.pos
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, CatalogError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, CatalogError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, CatalogError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn rest(&mut self) -> &'a [u8] {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        self.pos = self.bytes.len();
        rest
    }

    fn finish(&self) -> Result<(), CatalogError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CatalogError::Corrupt(format!(
                "{} has {} trailing bytes",
                self.what,
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn numeric_runs(values: &[f64]) -> Vec<(u32, u64)> {
    let mut runs: Vec<(u32, u64)> = Vec::new();
    for &v in values {
        let bits = v.to_bits();
        match runs.last_mut() {
            Some((len, last)) if *last == bits && *len < u32::MAX => *len += 1,
            _ => runs.push((1, bits)),
        }
    }
    runs
}

fn code_runs(codes: &[u32]) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &c in codes {
        match runs.last_mut() {
            Some((len, last)) if *last == c && *len < u32::MAX => *len += 1,
            _ => runs.push((1, c)),
        }
    }
    runs
}

/// Encodes one numeric chunk, choosing the smallest of raw / rle / dict
/// (ties prefer raw, which is the zero-copy layout, then rle).
fn encode_numeric(values: &[f64]) -> (&'static str, Vec<u8>) {
    let raw_size = values.len() * 8;
    let runs = numeric_runs(values);
    let rle_size = 4 + runs.len() * 12;

    // Per-chunk value dictionary in first-appearance order (deterministic).
    let mut dict: Vec<u64> = Vec::new();
    let mut dict_index: HashMap<u64, u32> = HashMap::new();
    let mut codes: Vec<u32> = Vec::with_capacity(values.len());
    let mut dict_ok = true;
    for &v in values {
        let bits = v.to_bits();
        let code = match dict_index.get(&bits) {
            Some(&c) => c,
            None => {
                if dict.len() >= DICT_MAX {
                    dict_ok = false;
                    break;
                }
                let c = dict.len() as u32;
                dict.push(bits);
                dict_index.insert(bits, c);
                c
            }
        };
        codes.push(code);
    }
    let dict_size = if dict_ok && !values.is_empty() {
        let width = bits_for(dict.len() as u64);
        Some(4 + dict.len() * 8 + 1 + (values.len() * width as usize).div_ceil(8))
    } else {
        None
    };

    let mut best = ("raw", raw_size);
    if rle_size < best.1 {
        best = ("rle", rle_size);
    }
    if let Some(size) = dict_size {
        if size < best.1 {
            best = ("dict", size);
        }
    }

    match best.0 {
        "rle" => {
            let mut out = Vec::with_capacity(rle_size);
            out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
            for (len, bits) in &runs {
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&bits.to_le_bytes());
            }
            ("rle", out)
        }
        "dict" => {
            let width = bits_for(dict.len() as u64);
            let mut out = Vec::with_capacity(dict_size.unwrap_or(0));
            out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
            for bits in &dict {
                out.extend_from_slice(&bits.to_le_bytes());
            }
            out.push(width as u8);
            out.extend_from_slice(&pack_codes(&codes, width));
            ("dict", out)
        }
        _ => {
            let mut out = Vec::with_capacity(raw_size);
            for &v in values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            ("raw", out)
        }
    }
}

/// Encodes one categorical chunk, choosing the smaller of bit-packed codes
/// and run-length-encoded codes (ties prefer packed codes).
fn encode_categorical(codes: &[u32]) -> (&'static str, Vec<u8>) {
    let max_code = codes.iter().copied().max().unwrap_or(0);
    let width = bits_for(u64::from(max_code) + 1);
    let packed_size = 1 + (codes.len() * width as usize).div_ceil(8);
    let runs = code_runs(codes);
    let rle_size = 4 + runs.len() * 8;
    if rle_size < packed_size {
        let mut out = Vec::with_capacity(rle_size);
        out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
        for (len, code) in &runs {
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&code.to_le_bytes());
        }
        ("rlecodes", out)
    } else {
        let mut out = Vec::with_capacity(packed_size);
        out.push(width as u8);
        out.extend_from_slice(&pack_codes(codes, width));
        ("codes", out)
    }
}

fn encode_chunk(
    column: &Column,
    start: usize,
    end: usize,
) -> Result<(&'static str, Vec<u8>), CatalogError> {
    match column {
        Column::Numeric(values) => {
            let slice = values.as_slice().get(start..end).ok_or_else(|| {
                CatalogError::Corrupt(format!("chunk range {start}..{end} out of bounds"))
            })?;
            Ok(encode_numeric(slice))
        }
        Column::Categorical { codes, .. } => {
            let slice = codes.get(start..end).ok_or_else(|| {
                CatalogError::Corrupt(format!("chunk range {start}..{end} out of bounds"))
            })?;
            Ok(encode_categorical(slice))
        }
    }
}

/// Decodes one numeric chunk of `rows` values.
fn decode_numeric(
    encoding: &str,
    payload: &[u8],
    rows: usize,
    what: &str,
) -> Result<Vec<f64>, CatalogError> {
    let mut r = Reader::new(payload, what);
    let mut out = Vec::with_capacity(rows);
    match encoding {
        "raw" => {
            for _ in 0..rows {
                out.push(f64::from_bits(r.u64()?));
            }
        }
        "rle" => {
            let n_runs = r.u32()? as usize;
            for _ in 0..n_runs {
                let len = r.u32()? as usize;
                let value = f64::from_bits(r.u64()?);
                if out.len() + len > rows {
                    return Err(CatalogError::Corrupt(format!(
                        "{what}: rle runs exceed {rows} rows"
                    )));
                }
                out.extend(std::iter::repeat_n(value, len));
            }
        }
        "dict" => {
            let dict_len = r.u32()? as usize;
            if dict_len > DICT_MAX {
                return Err(CatalogError::Corrupt(format!(
                    "{what}: dictionary of {dict_len} entries exceeds the format cap"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(f64::from_bits(r.u64()?));
            }
            let width = u32::from(r.u8()?);
            unpack_dict(r.rest(), width, rows, &dict, &mut out, what)?;
        }
        other => {
            return Err(CatalogError::Corrupt(format!(
                "{what}: unknown numeric encoding {other:?}"
            )))
        }
    }
    r.finish()?;
    if out.len() != rows {
        return Err(CatalogError::Corrupt(format!(
            "{what}: decoded {} rows, expected {rows}",
            out.len()
        )));
    }
    Ok(out)
}

/// Decodes one categorical chunk of `rows` codes, validating every code
/// against the dictionary size.
fn decode_categorical(
    encoding: &str,
    payload: &[u8],
    rows: usize,
    dict_len: usize,
    what: &str,
) -> Result<Vec<u32>, CatalogError> {
    let mut r = Reader::new(payload, what);
    let out = match encoding {
        "codes" => {
            let width = u32::from(r.u8()?);
            unpack_codes(r.rest(), width, rows, what)?
        }
        "rlecodes" => {
            let n_runs = r.u32()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..n_runs {
                let len = r.u32()? as usize;
                let code = r.u32()?;
                if out.len() + len > rows {
                    return Err(CatalogError::Corrupt(format!(
                        "{what}: rle runs exceed {rows} rows"
                    )));
                }
                out.extend(std::iter::repeat_n(code, len));
            }
            out
        }
        other => {
            return Err(CatalogError::Corrupt(format!(
                "{what}: unknown categorical encoding {other:?}"
            )))
        }
    };
    r.finish()?;
    if out.len() != rows {
        return Err(CatalogError::Corrupt(format!(
            "{what}: decoded {} rows, expected {rows}",
            out.len()
        )));
    }
    if let Some(bad) = out.iter().find(|&&c| c as usize >= dict_len) {
        return Err(CatalogError::Corrupt(format!(
            "{what}: code {bad} out of range for dictionary of {dict_len}"
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn kind_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Categorical => "categorical",
        ColumnType::Numeric => "numeric",
    }
}

fn role_str(r: AttributeRole) -> &'static str {
    match r {
        AttributeRole::Dimension => "dimension",
        AttributeRole::Measure => "measure",
    }
}

/// Encodes the chunks for groups `first_group..` of `column`, appending
/// their bytes (8-aligned) to `buf` whose first byte sits at file offset
/// `base`. Returns the chunk metadata.
fn encode_groups(
    column: &Column,
    rows: usize,
    group_rows: usize,
    first_group: usize,
    base: u64,
    buf: &mut Vec<u8>,
) -> Result<Vec<ChunkMeta>, CatalogError> {
    let n_groups = rows.div_ceil(group_rows);
    let mut chunks = Vec::with_capacity(n_groups.saturating_sub(first_group));
    for g in first_group..n_groups {
        let start = g * group_rows;
        let end = (start + group_rows).min(rows);
        let (encoding, payload) = encode_chunk(column, start, end)?;
        pad8(buf);
        let offset = base + buf.len() as u64;
        let checksum = hex(fnv64_words(&payload));
        let bytes = payload.len() as u64;
        buf.extend_from_slice(&payload);
        pad8(buf);
        chunks.push(ChunkMeta {
            encoding: encoding.to_owned(),
            offset,
            bytes,
            checksum,
            zone: ColumnZone::of_column(column, start, end),
        });
    }
    Ok(chunks)
}

fn write_manifest(dir: &Path, manifest: &Manifest2) -> Result<(), CatalogError> {
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| CatalogError::Corrupt(format!("manifest serialization: {e}")))?;
    let tmp = dir.join("manifest.json.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(json.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, manifest_path(dir))?;
    // Durability of the rename itself (best effort; not all platforms allow
    // fsync on a directory handle).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Writes `table` into `dir` as a VSC2 dataset, creating the directory.
/// Column files are written and synced first, the manifest last, so a
/// directory with a VSC2 manifest is always complete. A `group_rows` of
/// zero uses [`DEFAULT_GROUP_ROWS`].
///
/// # Errors
///
/// [`CatalogError::Io`] on filesystem failure.
pub fn save(dir: &Path, table: &Table, group_rows: usize) -> Result<Manifest2, CatalogError> {
    let group_rows = if group_rows == 0 {
        DEFAULT_GROUP_ROWS
    } else {
        group_rows
    };
    std::fs::create_dir_all(dir)?;
    let rows = table.row_count();
    let mut columns = Vec::with_capacity(table.schema().len());
    for (i, meta) in table.schema().columns().iter().enumerate() {
        let column = table.column(i);
        let mut buf: Vec<u8> = COLUMN_MAGIC.to_vec();
        let chunks = encode_groups(column, rows, group_rows, 0, 0, &mut buf)?;
        let file_name = column_file(i);
        let mut file = std::fs::File::create(dir.join(&file_name))?;
        file.write_all(&buf)?;
        file.sync_all()?;
        columns.push(Manifest2Column {
            name: meta.name.clone(),
            kind: kind_str(meta.column_type).to_owned(),
            role: role_str(meta.role).to_owned(),
            file: file_name,
            dictionary: match column {
                Column::Categorical { dictionary, .. } => dictionary.clone(),
                Column::Numeric(_) => Vec::new(),
            },
            chunks,
        });
    }
    let manifest = Manifest2 {
        format: FORMAT.to_owned(),
        rows: rows as u64,
        group_rows: group_rows as u64,
        table_checksum: hex(table_checksum(table)),
        columns,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// Peek / format dispatch
// ---------------------------------------------------------------------------

#[derive(Deserialize)]
struct FormatProbe {
    format: String,
}

/// Reads just the `format` tag of the manifest in `dir` (`"VSC1"`,
/// `"VSC2"`, ...), so callers can dispatch to the right loader.
///
/// # Errors
///
/// [`CatalogError::Io`] when the manifest is missing;
/// [`CatalogError::Corrupt`] when it is not valid manifest JSON.
pub fn format_of(dir: &Path) -> Result<String, CatalogError> {
    let path = manifest_path(dir);
    let json = std::fs::read_to_string(&path)?;
    let probe: FormatProbe = serde_json::from_str(&json)
        .map_err(|e| CatalogError::Corrupt(format!("manifest {path:?}: {e}")))?;
    Ok(probe.format)
}

/// Reads and validates the VSC2 manifest in `dir` without touching any
/// column file — enough for listings (schema, row count, on-disk bytes).
///
/// # Errors
///
/// [`CatalogError::Io`] when the manifest is missing;
/// [`CatalogError::Corrupt`] for unparseable JSON, a format tag other than
/// [`FORMAT`], or an inconsistent shape (bad group size, ragged chunk
/// counts, unsafe file names).
pub fn peek(dir: &Path) -> Result<Manifest2, CatalogError> {
    let path = manifest_path(dir);
    let json = std::fs::read_to_string(&path)?;
    let manifest: Manifest2 = serde_json::from_str(&json)
        .map_err(|e| CatalogError::Corrupt(format!("manifest {path:?}: {e}")))?;
    if manifest.format != FORMAT {
        return Err(CatalogError::Corrupt(format!(
            "unsupported format {:?} (this reader expects {FORMAT:?})",
            manifest.format
        )));
    }
    if manifest.group_rows == 0 {
        return Err(CatalogError::Corrupt("manifest has group_rows = 0".into()));
    }
    let n_groups = manifest.group_count();
    for (i, c) in manifest.columns.iter().enumerate() {
        // File names are derived, never trusted: a tampered manifest must
        // not be able to read outside the dataset directory.
        if c.file != column_file(i) {
            return Err(CatalogError::Corrupt(format!(
                "column {:?} names unexpected file {:?}",
                c.name, c.file
            )));
        }
        if c.chunks.len() != n_groups {
            return Err(CatalogError::Corrupt(format!(
                "column {:?} has {} chunks, expected {n_groups}",
                c.name,
                c.chunks.len()
            )));
        }
    }
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// A loaded VSC2 dataset: the table, its zone maps, and how its bytes are
/// held (for cache accounting).
#[derive(Debug)]
pub struct Loaded {
    /// The decoded (or mapped) table.
    pub table: Table,
    /// Zone maps from the manifest, verified against the data.
    pub zones: ZoneMaps,
    /// Bytes served by live file mappings (zero-copy columns).
    pub mapped_bytes: u64,
    /// Heap bytes owned by the table's columns.
    pub owned_bytes: u64,
}

impl Loaded {
    /// What the table actually costs while resident: owned heap bytes plus
    /// mapped file bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.mapped_bytes + self.owned_bytes
    }
}

/// Whether a numeric column can be served straight from the mapping: every
/// chunk raw-encoded and the payloads contiguous (appends relocate the
/// rewritten tail group, breaking contiguity until a re-save).
#[cfg_attr(not(target_endian = "little"), allow(dead_code))]
fn zero_copy_span(chunks: &[ChunkMeta]) -> Option<(u64, u64)> {
    let first = chunks.first()?;
    if first.offset % 8 != 0 {
        return None;
    }
    let mut end = first.offset;
    for chunk in chunks {
        if chunk.encoding != "raw" || chunk.offset != end {
            return None;
        }
        end = chunk.offset.checked_add(chunk.bytes)?;
    }
    Some((first.offset, end))
}

/// Loads the VSC2 dataset in `dir`.
///
/// Every referenced chunk is bounds-checked and digest-verified, and every
/// zone summary in the manifest is compared against a recomputation from
/// the decoded (or mapped) values — a flipped bit in either payload or
/// zone map is a typed error, never a wrong answer. Raw, contiguous
/// numeric columns are served zero-copy from a file mapping on
/// little-endian targets.
///
/// # Errors
///
/// [`CatalogError::Io`] for missing files, [`CatalogError::Corrupt`] for
/// any validation failure.
pub fn load(dir: &Path) -> Result<Loaded, CatalogError> {
    let manifest = peek(dir)?;
    let schema = manifest.schema()?;
    let rows = usize::try_from(manifest.rows)
        .map_err(|_| CatalogError::Corrupt("row count overflows".into()))?;
    let group_rows = usize::try_from(manifest.group_rows)
        .map_err(|_| CatalogError::Corrupt("group_rows overflows".into()))?;
    let mut columns = Vec::with_capacity(manifest.columns.len());
    let mut mapped_bytes = 0u64;
    for mc in &manifest.columns {
        let map = Arc::new(Mapping::open(&dir.join(&mc.file))?);
        let header = map.bytes().get(..COLUMN_MAGIC.len());
        if header != Some(COLUMN_MAGIC.as_slice()) {
            return Err(CatalogError::Corrupt(format!(
                "column file {:?} has bad magic",
                mc.file
            )));
        }
        // Digest gate: every referenced chunk, before any decoding.
        for (g, chunk) in mc.chunks.iter().enumerate() {
            let payload = chunk_payload(&map, chunk, &mc.file, g)?;
            if hex(fnv64_words(payload)) != chunk.checksum {
                return Err(CatalogError::Corrupt(format!(
                    "column {:?} group {g}: checksum mismatch",
                    mc.name
                )));
            }
        }
        let column = match mc.kind.as_str() {
            "numeric" => load_numeric(&map, mc, rows, group_rows, &mut mapped_bytes)?,
            "categorical" => load_categorical(&map, mc, rows, group_rows)?,
            other => {
                return Err(CatalogError::Corrupt(format!(
                    "unknown column kind {other:?} in manifest"
                )))
            }
        };
        if column.len() != rows {
            return Err(CatalogError::Corrupt(format!(
                "column {:?} decoded {} rows, manifest says {rows}",
                mc.name,
                column.len()
            )));
        }
        columns.push(column);
    }
    let table = Table::new(schema, columns)
        .map_err(|e| CatalogError::Corrupt(format!("manifest table: {e}")))?;
    let zones = manifest.zone_maps()?;
    // Tamper gate for the zone maps themselves: a zone that disagrees with
    // the data it summarizes would let pruning skip matching rows — reject
    // the dataset instead.
    if ZoneMaps::build(&table, group_rows) != zones {
        return Err(CatalogError::Corrupt(
            "zone maps disagree with column data".into(),
        ));
    }
    let owned_bytes = (0..table.schema().len())
        .map(|i| table.column(i).owned_bytes() as u64)
        .sum();
    Ok(Loaded {
        table,
        zones,
        mapped_bytes,
        owned_bytes,
    })
}

fn chunk_payload<'m>(
    map: &'m Mapping,
    chunk: &ChunkMeta,
    file: &str,
    group: usize,
) -> Result<&'m [u8], CatalogError> {
    let offset = usize::try_from(chunk.offset)
        .map_err(|_| CatalogError::Corrupt("chunk offset overflows".into()))?;
    let bytes = usize::try_from(chunk.bytes)
        .map_err(|_| CatalogError::Corrupt("chunk length overflows".into()))?;
    offset
        .checked_add(bytes)
        .and_then(|end| map.bytes().get(offset..end))
        .ok_or_else(|| {
            CatalogError::Corrupt(format!(
                "column file {file:?} group {group}: chunk {offset}+{bytes} out of bounds \
                 (file is {} bytes)",
                map.len()
            ))
        })
}

fn group_bounds(g: usize, rows: usize, group_rows: usize) -> (usize, usize) {
    let start = g * group_rows;
    (start.min(rows), (start + group_rows).min(rows))
}

fn load_numeric(
    map: &Arc<Mapping>,
    mc: &Manifest2Column,
    rows: usize,
    group_rows: usize,
    mapped_bytes: &mut u64,
) -> Result<Column, CatalogError> {
    #[cfg(target_endian = "little")]
    {
        if map.is_mapped() {
            if let Some((start, end)) = zero_copy_span(&mc.chunks) {
                if end - start == rows as u64 * 8 {
                    let offset = usize::try_from(start)
                        .map_err(|_| CatalogError::Corrupt("chunk offset overflows".into()))?;
                    let view = MappedF64::new(Arc::clone(map), offset, rows)?;
                    *mapped_bytes += map.len() as u64;
                    return Ok(Column::numeric_shared(Arc::new(view)));
                }
            }
        }
    }
    let mut values = Vec::with_capacity(rows);
    for (g, chunk) in mc.chunks.iter().enumerate() {
        let (start, end) = group_bounds(g, rows, group_rows);
        let what = format!("column {:?} group {g}", mc.name);
        let payload = chunk_payload(map, chunk, &mc.file, g)?;
        values.extend(decode_numeric(
            &chunk.encoding,
            payload,
            end - start,
            &what,
        )?);
    }
    Ok(Column::numeric(values))
}

fn load_categorical(
    map: &Arc<Mapping>,
    mc: &Manifest2Column,
    rows: usize,
    group_rows: usize,
) -> Result<Column, CatalogError> {
    let mut codes = Vec::with_capacity(rows);
    for (g, chunk) in mc.chunks.iter().enumerate() {
        let (start, end) = group_bounds(g, rows, group_rows);
        let what = format!("column {:?} group {g}", mc.name);
        let payload = chunk_payload(map, chunk, &mc.file, g)?;
        codes.extend(decode_categorical(
            &chunk.encoding,
            payload,
            end - start,
            mc.dictionary.len(),
            &what,
        )?);
    }
    Ok(Column::Categorical {
        codes,
        dictionary: mc.dictionary.clone(),
    })
}

// ---------------------------------------------------------------------------
// Append
// ---------------------------------------------------------------------------

/// The result of an append: the new manifest plus the merged in-memory
/// table and its zone maps (ready to swap into the catalog cache).
#[derive(Debug)]
pub struct Appended {
    /// The manifest now on disk.
    pub manifest: Manifest2,
    /// The merged table (old rows followed by appended rows).
    pub table: Table,
    /// Zone maps matching the merged table.
    pub zones: ZoneMaps,
}

/// Merges `chunk` onto `old` (same schema required): numeric columns are
/// concatenated; categorical dictionaries grow append-only, with the
/// chunk's codes translated into the merged dictionary.
pub(crate) fn merge_tables(old: &Table, chunk: &Table) -> Result<Table, CatalogError> {
    if old.schema() != chunk.schema() {
        return Err(CatalogError::Dataset(
            "appended rows have a different schema than the dataset".into(),
        ));
    }
    let mut columns = Vec::with_capacity(old.schema().len());
    for i in 0..old.schema().len() {
        let merged = match (old.column(i), chunk.column(i)) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                let mut values = Vec::with_capacity(a.len() + b.len());
                values.extend_from_slice(a.as_slice());
                values.extend_from_slice(b.as_slice());
                Column::numeric(values)
            }
            (
                Column::Categorical {
                    codes: old_codes,
                    dictionary: old_dict,
                },
                Column::Categorical {
                    codes: new_codes,
                    dictionary: new_dict,
                },
            ) => {
                let mut dictionary = old_dict.clone();
                let index: HashMap<&str, u32> = old_dict
                    .iter()
                    .enumerate()
                    .map(|(c, s)| (s.as_str(), c as u32))
                    .collect();
                let mut remap = Vec::with_capacity(new_dict.len());
                for entry in new_dict {
                    match index.get(entry.as_str()) {
                        Some(&code) => remap.push(code),
                        None => {
                            let code = dictionary.len() as u32;
                            remap.push(code);
                            dictionary.push(entry.clone());
                            // Entries within one dictionary are unique, so
                            // the index needn't learn the new code; `remap`
                            // already carries it.
                        }
                    }
                }
                let mut codes = Vec::with_capacity(old_codes.len() + new_codes.len());
                codes.extend_from_slice(old_codes);
                for &c in new_codes {
                    let mapped = remap.get(c as usize).ok_or_else(|| {
                        CatalogError::Dataset(format!(
                            "appended rows carry code {c} outside their dictionary"
                        ))
                    })?;
                    codes.push(*mapped);
                }
                Column::Categorical { codes, dictionary }
            }
            _ => {
                return Err(CatalogError::Dataset(
                    "appended rows have a different schema than the dataset".into(),
                ))
            }
        };
        columns.push(merged);
    }
    Table::new(old.schema().clone(), columns)
        .map_err(|e| CatalogError::Dataset(format!("merged table: {e}")))
}

/// Appends `chunk`'s rows to the VSC2 dataset in `dir`, whose current
/// manifest is `manifest` and whose current table is `old` (the caller —
/// the catalog — guarantees they agree).
///
/// Bytes are only ever added: the last, partial row group (if any) is
/// re-encoded as fresh chunks at the end of each column file together with
/// the new groups, and the manifest is swapped atomically last. A crash at
/// any point leaves either the old or the new manifest in place, each
/// describing a complete dataset.
///
/// # Errors
///
/// [`CatalogError::Dataset`] for schema mismatches or empty appends;
/// [`CatalogError::Io`] on filesystem failure.
pub fn append(
    dir: &Path,
    manifest: &Manifest2,
    old: &Table,
    chunk: &Table,
) -> Result<Appended, CatalogError> {
    if chunk.row_count() == 0 {
        return Err(CatalogError::Dataset("append carries no rows".into()));
    }
    let group_rows = usize::try_from(manifest.group_rows)
        .map_err(|_| CatalogError::Corrupt("group_rows overflows".into()))?;
    if group_rows == 0 {
        return Err(CatalogError::Corrupt("manifest has group_rows = 0".into()));
    }
    let old_rows = old.row_count();
    if manifest.rows != old_rows as u64 || manifest.columns.len() != old.schema().len() {
        return Err(CatalogError::Corrupt(
            "manifest does not describe the resident table".into(),
        ));
    }
    let merged = merge_tables(old, chunk)?;
    let new_rows = merged.row_count();
    // Groups before this index are untouched; the partial tail group (if
    // any) and all new groups are re-encoded at the end of each file.
    let first_dirty = old_rows / group_rows;
    let mut columns = Vec::with_capacity(manifest.columns.len());
    for (i, mc) in manifest.columns.iter().enumerate() {
        if mc.file != column_file(i) {
            return Err(CatalogError::Corrupt(format!(
                "column {:?} names unexpected file {:?}",
                mc.name, mc.file
            )));
        }
        let column = merged.column(i);
        let path = dir.join(&mc.file);
        let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
        let base = file.metadata()?.len();
        let mut buf = Vec::new();
        // Re-align in case an interrupted append left a ragged tail.
        let pad = (8 - (base % 8) as usize) % 8;
        buf.resize(pad, 0);
        let fresh = encode_groups(column, new_rows, group_rows, first_dirty, base, &mut buf)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        let mut chunks = Vec::with_capacity(new_rows.div_ceil(group_rows));
        chunks.extend(mc.chunks.iter().take(first_dirty).cloned());
        chunks.extend(fresh);
        columns.push(Manifest2Column {
            name: mc.name.clone(),
            kind: mc.kind.clone(),
            role: mc.role.clone(),
            file: mc.file.clone(),
            dictionary: match column {
                Column::Categorical { dictionary, .. } => dictionary.clone(),
                Column::Numeric(_) => Vec::new(),
            },
            chunks,
        });
    }
    let new_manifest = Manifest2 {
        format: FORMAT.to_owned(),
        rows: new_rows as u64,
        group_rows: manifest.group_rows,
        table_checksum: hex(table_checksum(&merged)),
        columns,
    };
    write_manifest(dir, &new_manifest)?;
    let zones = new_manifest.zone_maps()?;
    Ok(Appended {
        manifest: new_manifest,
        table: merged,
        zones,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::Predicate;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vsc2-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo_table(rows: usize) -> Table {
        let cities: Vec<String> = (0..rows).map(|i| format!("c{}", i % 7)).collect();
        let schema = Schema::builder()
            .categorical_dimension("city")
            .numeric_dimension("n_age")
            .measure("m_sales")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&cities),
                Column::numeric((0..rows).map(|i| f64::from((i % 50) as u32)).collect()),
                Column::numeric((0..rows).map(|i| (i / 10) as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn tables_bit_identical(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.row_count(), b.row_count());
        for i in 0..a.schema().len() {
            match (a.column(i), b.column(i)) {
                (Column::Numeric(x), Column::Numeric(y)) => {
                    let (x, y) = (x.as_slice(), y.as_slice());
                    assert_eq!(x.len(), y.len());
                    for (p, q) in x.iter().zip(y) {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                }
                (
                    Column::Categorical {
                        codes: xc,
                        dictionary: xd,
                    },
                    Column::Categorical {
                        codes: yc,
                        dictionary: yd,
                    },
                ) => {
                    assert_eq!(xc, yc);
                    assert_eq!(xd, yd);
                }
                _ => panic!("column {i} kind mismatch"),
            }
        }
    }

    #[test]
    fn round_trip_with_small_groups() {
        let dir = tmp("roundtrip");
        let table = demo_table(1000);
        let manifest = save(&dir, &table, 128).unwrap();
        assert_eq!(manifest.group_count(), 8);
        let loaded = load(&dir).unwrap();
        tables_bit_identical(&table, &loaded.table);
        assert!(loaded.zones.covers(&loaded.table));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compresses_repetitive_data_well_below_raw() {
        let dir = tmp("compress");
        let table = demo_table(10_000);
        let manifest = save(&dir, &table, 1024).unwrap();
        let raw = crate::vsc::table_resident_bytes(&table);
        assert!(
            manifest.data_bytes() * 3 <= raw,
            "expected >=3x compression, got {} vs {raw}",
            manifest.data_bytes()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_copy_span_detection() {
        let chunk = |offset, bytes, encoding: &str| ChunkMeta {
            encoding: encoding.to_owned(),
            offset,
            bytes,
            checksum: String::new(),
            zone: ColumnZone::of_numeric(&[]),
        };
        assert_eq!(
            zero_copy_span(&[chunk(8, 64, "raw"), chunk(72, 16, "raw")]),
            Some((8, 88))
        );
        assert_eq!(
            zero_copy_span(&[chunk(8, 64, "raw"), chunk(80, 16, "raw")]),
            None
        );
        assert_eq!(zero_copy_span(&[chunk(8, 64, "rle")]), None);
        assert_eq!(zero_copy_span(&[]), None);
    }

    #[test]
    fn append_preserves_history_and_is_readable() {
        let dir = tmp("append");
        let old = demo_table(300);
        let manifest = save(&dir, &old, 128).unwrap();
        let extra = demo_table(100);
        let appended = append(&dir, &manifest, &old, &extra).unwrap();
        assert_eq!(appended.table.row_count(), 400);
        let loaded = load(&dir).unwrap();
        tables_bit_identical(&appended.table, &loaded.table);
        // Old rows unchanged.
        let reload_old_rows = loaded.table.column(2).values().unwrap();
        let old_rows = old.column(2).values().unwrap();
        assert_eq!(&reload_old_rows[..300], old_rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_append_keeps_the_old_dataset() {
        let dir = tmp("crash");
        let old = demo_table(300);
        let manifest = save(&dir, &old, 128).unwrap();
        let before = std::fs::read_to_string(dir.join(MANIFEST)).unwrap();
        append(&dir, &manifest, &old, &demo_table(100)).unwrap();
        // Simulate the crash window: column bytes appended, manifest swap
        // never happened.
        std::fs::write(dir.join(MANIFEST), before).unwrap();
        let loaded = load(&dir).unwrap();
        tables_bit_identical(&old, &loaded.table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_bit_is_rejected() {
        let dir = tmp("flip");
        let manifest = save(&dir, &demo_table(500), 128).unwrap();
        let target = dir.join(&manifest.columns[2].file);
        let mut bytes = std::fs::read(&target).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&target, bytes).unwrap();
        assert!(matches!(load(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_zone_map_is_rejected() {
        let dir = tmp("zoneflip");
        save(&dir, &demo_table(500), 128).unwrap();
        let mut manifest = peek(&dir).unwrap();
        let chunk = &mut manifest.columns[1].chunks[1];
        if let ColumnZone::Numeric { max_bits, .. } = &mut chunk.zone {
            *max_bits ^= 1 << 52;
        } else {
            panic!("expected a numeric zone");
        }
        // Re-sign nothing: the payload digest still matches; only the zone
        // lies. The loader must still reject it.
        write_manifest(&dir, &manifest).unwrap();
        match load(&dir) {
            Err(CatalogError::Corrupt(msg)) => assert!(msg.contains("zone maps")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_column_file_is_rejected() {
        let dir = tmp("trunc");
        let manifest = save(&dir, &demo_table(500), 128).unwrap();
        let target = dir.join(&manifest.columns[0].file);
        let bytes = std::fs::read(&target).unwrap();
        std::fs::write(&target, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(load(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_naming_foreign_files_is_rejected() {
        let dir = tmp("foreign");
        save(&dir, &demo_table(100), 128).unwrap();
        let mut manifest = peek(&dir).unwrap();
        manifest.columns[0].file = "../escape.vs2".to_owned();
        write_manifest(&dir, &manifest).unwrap();
        assert!(matches!(peek(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zone_pruning_on_loaded_dataset_matches_plain_evaluation() {
        let dir = tmp("prune");
        let table = demo_table(2000);
        save(&dir, &table, 256).unwrap();
        let loaded = load(&dir).unwrap();
        let pred = Predicate::range("m_sales", 100.0, 900.0);
        let plain = pred.evaluate(&loaded.table).unwrap();
        let (pruned, stats) = pred.evaluate_pruned(&loaded.table, &loaded.zones).unwrap();
        assert_eq!(plain.ids(), pruned.ids());
        assert!(!plain.is_empty(), "predicate should select rows");
        assert!(stats.pruned > 0, "sorted measure should prune groups");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_dispatch_distinguishes_vsc1_and_vsc2() {
        let dir1 = tmp("fmt1");
        let dir2 = tmp("fmt2");
        let table = demo_table(50);
        crate::vsc::save(&dir1, &table).unwrap();
        save(&dir2, &table, 16).unwrap();
        assert_eq!(format_of(&dir1).unwrap(), "VSC1");
        assert_eq!(format_of(&dir2).unwrap(), "VSC2");
        assert!(matches!(peek(&dir1), Err(CatalogError::Corrupt(_))));
        // Identity is format-independent: same table, same checksum.
        assert_eq!(
            crate::vsc::peek(&dir1).unwrap().table_checksum,
            peek(&dir2).unwrap().table_checksum
        );
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}
