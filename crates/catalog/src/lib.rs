//! Persistent dataset catalog for ViewSeeker.
//!
//! Every layer of the system resolves tables through a [`Catalog`] rather
//! than generating or parsing its own copy. The catalog combines:
//!
//! * **the VSC2 on-disk format** ([`vsc2`]) — compressed, zone-mapped row
//!   groups with per-chunk digests, zero-copy mmap cold starts ([`map`]),
//!   and an append-only growth path. New datasets are written as VSC2;
//! * **the VSC1 format** ([`vsc`]) — the original one-block-per-column
//!   layout, still fully readable (and writable, as the differential
//!   oracle for VSC2's test battery). Loads dispatch on the manifest's
//!   format tag;
//! * **ingestion** — [`Catalog::import_csv_bytes`] infers a schema by the
//!   `m_`/`n_` naming convention and parses the rows, while
//!   [`Catalog::materialize_generated`] runs the `diab`/`syn` generators
//!   once and persists the result; [`Catalog::append_rows`] grows an
//!   existing dataset in place, atomically;
//! * **a concurrent in-memory cache** — lookups hand out shared
//!   `Arc<Table>`s, so N sessions over one dataset hold one table. A byte
//!   budget bounds residency with LRU eviction; tables are charged at what
//!   they actually cost (owned heap bytes plus mapped file bytes — a
//!   zero-copy column's pages are charged at mapped size, not at the
//!   decoded-size estimate); hit/miss/eviction/bytes accounting feeds the
//!   Prometheus exposition.
//!
//! A catalog is either *persistent* ([`Catalog::open`] on a data
//! directory — every dataset is spilled to disk and can be evicted and
//! reloaded) or *in-memory* ([`Catalog::in_memory`] — datasets are pinned,
//! since eviction would destroy them).
//!
//! Consistency notes: one internal mutex serializes metadata operations and
//! disk loads. Loads are a few milliseconds (VSC2 cold starts are mmap
//! page-ins, not decodes), and serializing them is what guarantees two
//! concurrent `get`s of the same name return the *same* allocation rather
//! than racing to load twice.
//!
//! `unsafe` is confined to the [`map`] module (the mmap syscall surface);
//! the rest of the crate denies it, and the workspace lint enforces the
//! boundary statically.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod vsc;
pub mod vsc2;

mod cache;

use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use serde::{Deserialize, Serialize};
use viewseeker_dataset::generate::{generate_diab, generate_syn, DiabConfig, SynConfig};
use viewseeker_dataset::schema::{AttributeRole, ColumnType};
use viewseeker_dataset::{DatasetError, Table, ZoneMaps};

use cache::LruCache;

/// Errors produced by the catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk data failed validation (bad digest, truncation, bad JSON).
    Corrupt(String),
    /// No dataset with the given name.
    NotFound(String),
    /// A dataset with the given name already exists.
    Exists(String),
    /// The dataset name is empty, too long, or contains invalid characters.
    InvalidName(String),
    /// The name is reserved for generator-materialized datasets.
    Reserved(String),
    /// The dataset is still referenced by live sessions.
    InUse {
        /// Dataset name.
        name: String,
        /// Number of outside references keeping it alive.
        refs: usize,
    },
    /// CSV parsing or table construction failed.
    Dataset(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "io error: {e}"),
            CatalogError::Corrupt(msg) => write!(f, "corrupt dataset: {msg}"),
            CatalogError::NotFound(name) => write!(f, "dataset not found: {name}"),
            CatalogError::Exists(name) => write!(f, "dataset already exists: {name}"),
            CatalogError::InvalidName(name) => write!(
                f,
                "invalid dataset name {name:?} (use 1-64 of [A-Za-z0-9_-])"
            ),
            CatalogError::Reserved(name) => write!(
                f,
                "dataset name {name:?} is reserved for generated datasets"
            ),
            CatalogError::InUse { name, refs } => {
                write!(f, "dataset {name} is in use by {refs} reference(s)")
            }
            CatalogError::Dataset(msg) => write!(f, "dataset error: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl From<DatasetError> for CatalogError {
    fn from(e: DatasetError) -> Self {
        CatalogError::Dataset(e.to_string())
    }
}

/// A resolved dataset: the shared table plus identifying metadata.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Catalog name the table was resolved under.
    pub name: String,
    /// The shared table; clones of this handle are pointer-equal.
    pub table: Arc<Table>,
    /// Content digest ([`vsc::table_checksum`]) as lowercase hex.
    pub checksum: String,
    /// Row-group zone maps for the table (from the VSC2 manifest when
    /// loaded from disk, built in-memory otherwise) — what the executor
    /// uses to skip row groups a predicate provably excludes.
    pub zones: Arc<ZoneMaps>,
}

/// The result of appending rows to a dataset.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// The dataset after the append (merged table, fresh zones/checksum).
    pub entry: DatasetEntry,
    /// Rows added by this append.
    pub appended: u64,
    /// Total rows after the append.
    pub total_rows: u64,
}

/// Schema of one column, as reported by listings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSchema {
    /// Column name.
    pub name: String,
    /// `"categorical"` or `"numeric"`.
    pub kind: String,
    /// `"dimension"` or `"measure"`.
    pub role: String,
}

/// One dataset in a catalog listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Stored bytes: on-disk payload bytes when persisted, resident
    /// estimate for memory-only datasets.
    pub bytes: u64,
    /// Content digest, lowercase hex.
    pub checksum: String,
    /// Whether the table is currently resident in the cache.
    pub resident: bool,
    /// Per-column schema.
    pub columns: Vec<ColumnSchema>,
}

/// Full description of one dataset, including per-column cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetDetail {
    /// Dataset name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// What the table costs while resident: owned heap bytes plus mapped
    /// file bytes.
    pub resident_bytes: u64,
    /// Content digest, lowercase hex.
    pub checksum: String,
    /// Per-column schema and cardinality.
    pub columns: Vec<ColumnDetail>,
}

/// Schema plus cardinality of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDetail {
    /// Column name.
    pub name: String,
    /// `"categorical"` or `"numeric"`.
    pub kind: String,
    /// `"dimension"` or `"measure"`.
    pub role: String,
    /// Distinct-value count.
    pub cardinality: u64,
}

/// A point-in-time snapshot of the catalog's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Lookups served from memory (cache or a live session's handle).
    pub hits: u64,
    /// Lookups that had to load from disk.
    pub misses: u64,
    /// Tables evicted under byte-budget pressure.
    pub evictions: u64,
    /// Bytes of tables currently resident (owned heap + mapped files).
    pub resident_bytes: u64,
    /// Number of tables currently resident.
    pub cached_datasets: u64,
    /// Number of datasets the catalog knows about (resident or not).
    pub known_datasets: u64,
    /// Rows appended via [`Catalog::append_rows`] since startup.
    pub append_rows: u64,
}

/// How a dataset is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stored {
    /// Memory-only (in-memory catalog); pinned in cache.
    Memory,
    /// On disk in the legacy VSC1 layout.
    Vsc1,
    /// On disk in the VSC2 layout.
    Vsc2,
}

struct MetaEntry {
    rows: u64,
    bytes: u64,
    checksum: String,
    columns: Vec<ColumnSchema>,
    stored: Stored,
}

/// Live-table side data: zone maps and the cache charge the table was
/// admitted with (so a re-share after eviction charges the same bytes).
struct Shape {
    zones: Arc<ZoneMaps>,
    charge: u64,
}

struct Inner {
    cache: LruCache,
    /// Weak handles to every table ever handed out; lets `get` re-share an
    /// evicted table a session still holds, and lets `delete` count live
    /// outside references.
    handles: std::collections::HashMap<String, Weak<Table>>,
    shapes: std::collections::HashMap<String, Shape>,
    meta: std::collections::BTreeMap<String, MetaEntry>,
}

/// A persistent, concurrent dataset store handing out shared `Arc<Table>`s.
pub struct Catalog {
    dir: Option<PathBuf>,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    append_rows: AtomicU64,
}

fn column_schemas(table: &Table) -> Vec<ColumnSchema> {
    table
        .schema()
        .columns()
        .iter()
        .map(|m| ColumnSchema {
            name: m.name.clone(),
            kind: kind_str(m.column_type).to_owned(),
            role: role_str(m.role).to_owned(),
        })
        .collect()
}

fn kind_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Categorical => "categorical",
        ColumnType::Numeric => "numeric",
    }
}

fn role_str(r: AttributeRole) -> &'static str {
    match r {
        AttributeRole::Dimension => "dimension",
        AttributeRole::Measure => "measure",
    }
}

/// Heap bytes actually owned by a table's columns (zero for mapped numeric
/// storage — those bytes are charged at mapped size by the loader).
fn table_owned_bytes(table: &Table) -> u64 {
    (0..table.schema().len())
        .map(|i| table.column(i).owned_bytes() as u64)
        .sum()
}

/// Validates a user-supplied dataset name: 1-64 characters drawn from
/// `[A-Za-z0-9_-]`. Keeps names safe as directory components.
///
/// # Errors
///
/// [`CatalogError::InvalidName`] otherwise.
pub fn validate_name(name: &str) -> Result<(), CatalogError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(CatalogError::InvalidName(name.to_owned()))
    }
}

fn is_reserved(name: &str) -> bool {
    name == "diab" || name == "syn" || name.starts_with("gen-")
}

impl Catalog {
    /// An in-memory catalog: no persistence, every dataset pinned in cache.
    /// `mem_budget` still bounds what *evictable* tables may occupy, but
    /// memory-only datasets are never evicted (eviction would destroy them),
    /// so residency can exceed the budget.
    #[must_use]
    pub fn in_memory(mem_budget: u64) -> Self {
        Self {
            dir: None,
            inner: Mutex::new(Inner {
                cache: LruCache::new(mem_budget),
                handles: std::collections::HashMap::new(),
                shapes: std::collections::HashMap::new(),
                meta: std::collections::BTreeMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            append_rows: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) a persistent catalog rooted at `dir`.
    /// Existing dataset directories (VSC1 or VSC2) are indexed by reading
    /// their manifests; directories without a valid manifest are ignored (a
    /// crashed save leaves exactly that).
    ///
    /// # Errors
    ///
    /// [`CatalogError::Io`] when the directory cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>, mem_budget: u64) -> Result<Self, CatalogError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut meta = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_dir() || !vsc::exists(&path) {
                continue;
            }
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            let Some(indexed) = index_dataset_dir(&path) else {
                continue;
            };
            meta.insert(name, indexed);
        }
        Ok(Self {
            dir: Some(dir),
            inner: Mutex::new(Inner {
                cache: LruCache::new(mem_budget),
                handles: std::collections::HashMap::new(),
                shapes: std::collections::HashMap::new(),
                meta,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            append_rows: AtomicU64::new(0),
        })
    }

    /// The data directory, if this catalog is persistent.
    #[must_use]
    pub fn data_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn dataset_dir(&self, name: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(name))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means another thread panicked mid-operation; the
        // catalog's state is still structurally valid (every mutation is a
        // single map/cache call), so keep serving.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers `table` under `name`, persisting it as VSC2 when the
    /// catalog has a data directory, and caches it.
    ///
    /// # Errors
    ///
    /// [`CatalogError::InvalidName`] / [`CatalogError::Reserved`] for bad
    /// names, [`CatalogError::Exists`] for duplicates, [`CatalogError::Io`]
    /// on persistence failure.
    pub fn put(&self, name: &str, table: Table) -> Result<DatasetEntry, CatalogError> {
        validate_name(name)?;
        if is_reserved(name) {
            return Err(CatalogError::Reserved(name.to_owned()));
        }
        let mut inner = self.lock();
        if inner.meta.contains_key(name) {
            return Err(CatalogError::Exists(name.to_owned()));
        }
        self.store(&mut inner, name, table)
    }

    /// Parses `bytes` as CSV (schema inferred by the `m_`/`n_` header
    /// convention) and registers the result under `name`.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Dataset`] for malformed CSV, plus everything
    /// [`Catalog::put`] returns.
    pub fn import_csv_bytes(&self, name: &str, bytes: &[u8]) -> Result<DatasetEntry, CatalogError> {
        let schema = viewseeker_dataset::csv::infer_schema(Cursor::new(bytes))?;
        let table = viewseeker_dataset::csv::read_csv(&schema, Cursor::new(bytes))?;
        if table.row_count() == 0 {
            return Err(CatalogError::Dataset("csv has a header but no rows".into()));
        }
        self.put(name, table)
    }

    /// Stores `table` under `name` (name already validated, duplicate policy
    /// already applied) with the lock held.
    fn store(
        &self,
        inner: &mut Inner,
        name: &str,
        table: Table,
    ) -> Result<DatasetEntry, CatalogError> {
        let checksum = format!("{:016x}", vsc::table_checksum(&table));
        let columns = column_schemas(&table);
        let rows = table.row_count() as u64;
        let (bytes, stored, zones) = match self.dataset_dir(name) {
            Some(dir) => {
                let manifest = vsc2::save(&dir, &table, 0)?;
                let zones = manifest.zone_maps()?;
                (manifest.data_bytes(), Stored::Vsc2, zones)
            }
            None => (
                table_owned_bytes(&table),
                Stored::Memory,
                ZoneMaps::build(&table, 0),
            ),
        };
        let charge = table_owned_bytes(&table);
        self.admit(
            inner,
            name,
            Arc::new(table),
            Arc::new(zones),
            charge,
            MetaEntry {
                rows,
                bytes,
                checksum: checksum.clone(),
                columns,
                stored,
            },
        )
    }

    /// Inserts a resolved table into the cache, handle, shape, and meta
    /// maps, returning its entry. The single place residency is admitted.
    fn admit(
        &self,
        inner: &mut Inner,
        name: &str,
        table: Arc<Table>,
        zones: Arc<ZoneMaps>,
        charge: u64,
        meta: MetaEntry,
    ) -> Result<DatasetEntry, CatalogError> {
        let checksum = meta.checksum.clone();
        let evictable = meta.stored != Stored::Memory;
        let evicted = inner
            .cache
            .insert(name, Arc::clone(&table), charge, evictable);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        inner
            .handles
            .insert(name.to_owned(), Arc::downgrade(&table));
        inner.shapes.insert(
            name.to_owned(),
            Shape {
                zones: Arc::clone(&zones),
                charge,
            },
        );
        inner.meta.insert(name.to_owned(), meta);
        Ok(DatasetEntry {
            name: name.to_owned(),
            table,
            checksum,
            zones,
        })
    }

    /// Zone maps for `name`'s live `table`, from the shape map when
    /// present, rebuilt (and remembered) otherwise.
    fn zones_for(inner: &mut Inner, name: &str, table: &Table) -> Arc<ZoneMaps> {
        if let Some(shape) = inner.shapes.get(name) {
            if shape.zones.covers(table) {
                return Arc::clone(&shape.zones);
            }
        }
        let zones = Arc::new(ZoneMaps::build(table, 0));
        let charge = table_owned_bytes(table);
        inner.shapes.insert(
            name.to_owned(),
            Shape {
                zones: Arc::clone(&zones),
                charge,
            },
        );
        zones
    }

    /// Resolves `name` to its shared table: cache hit, a live handle some
    /// session still holds, or a disk load (VSC1 or VSC2, by format tag) —
    /// in that order. Two concurrent calls for the same name return
    /// pointer-equal `Arc`s.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for unknown names, [`CatalogError::Io`] /
    /// [`CatalogError::Corrupt`] when the on-disk copy fails validation.
    pub fn get(&self, name: &str) -> Result<DatasetEntry, CatalogError> {
        let mut inner = self.lock();
        self.resolve(&mut inner, name)
    }

    fn resolve(&self, inner: &mut Inner, name: &str) -> Result<DatasetEntry, CatalogError> {
        if let Some(table) = inner.cache.get(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let checksum = inner
                .meta
                .get(name)
                .map(|m| m.checksum.clone())
                .unwrap_or_else(|| format!("{:016x}", vsc::table_checksum(&table)));
            let zones = Self::zones_for(inner, name, &table);
            return Ok(DatasetEntry {
                name: name.to_owned(),
                table,
                checksum,
                zones,
            });
        }
        // Evicted but still alive in some session: re-share that allocation.
        if let Some(table) = inner.handles.get(name).and_then(Weak::upgrade) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let evictable = inner
                .meta
                .get(name)
                .is_some_and(|m| m.stored != Stored::Memory);
            let zones = Self::zones_for(inner, name, &table);
            let charge = inner
                .shapes
                .get(name)
                .map_or_else(|| table_owned_bytes(&table), |s| s.charge);
            let evicted = inner
                .cache
                .insert(name, Arc::clone(&table), charge, evictable);
            self.evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            let checksum = inner
                .meta
                .get(name)
                .map(|m| m.checksum.clone())
                .unwrap_or_else(|| format!("{:016x}", vsc::table_checksum(&table)));
            return Ok(DatasetEntry {
                name: name.to_owned(),
                table,
                checksum,
                zones,
            });
        }
        let Some(dir) = self.dataset_dir(name).filter(|d| vsc::exists(d)) else {
            return Err(CatalogError::NotFound(name.to_owned()));
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Dispatch on the stored format (probing the manifest when the
        // dataset appeared on disk after open()).
        let stored = match inner.meta.get(name).map(|m| m.stored) {
            Some(s @ (Stored::Vsc1 | Stored::Vsc2)) => s,
            _ => {
                if vsc2::format_of(&dir)? == vsc2::FORMAT {
                    Stored::Vsc2
                } else {
                    Stored::Vsc1
                }
            }
        };
        let (table, zones, charge, bytes) = match stored {
            Stored::Vsc2 => {
                let loaded = vsc2::load(&dir)?;
                let charge = loaded.resident_bytes();
                let bytes = vsc2::peek(&dir)?.data_bytes();
                (Arc::new(loaded.table), loaded.zones, charge, bytes)
            }
            _ => {
                let table = vsc::load(&dir)?;
                let zones = ZoneMaps::build(&table, 0);
                let charge = table_owned_bytes(&table);
                let bytes = vsc::peek(&dir)?.block_bytes();
                (Arc::new(table), zones, charge, bytes)
            }
        };
        let checksum = match inner.meta.get(name) {
            Some(m) => m.checksum.clone(),
            None => format!("{:016x}", vsc::table_checksum(&table)),
        };
        let meta = MetaEntry {
            rows: table.row_count() as u64,
            bytes,
            checksum,
            columns: column_schemas(&table),
            stored,
        };
        self.admit(inner, name, table, Arc::new(zones), charge, meta)
    }

    /// Appends `chunk`'s rows to the existing dataset `name`.
    ///
    /// Persistent VSC2 datasets grow in place via the append-only path
    /// (new row groups plus an atomic manifest swap); VSC1 datasets are
    /// upgraded to VSC2 on first append; memory-only datasets are merged
    /// in place. The merged table replaces the cached one — sessions
    /// holding the old `Arc` keep a consistent snapshot until they fold
    /// the appended rows in.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for unknown names,
    /// [`CatalogError::Reserved`] for generated datasets (their contents
    /// are defined by their parameters), [`CatalogError::Dataset`] for
    /// schema mismatches or empty appends, [`CatalogError::Io`] /
    /// [`CatalogError::Corrupt`] on persistence failure.
    pub fn append_rows(&self, name: &str, chunk: Table) -> Result<AppendOutcome, CatalogError> {
        validate_name(name)?;
        if is_reserved(name) {
            return Err(CatalogError::Reserved(name.to_owned()));
        }
        if chunk.row_count() == 0 {
            return Err(CatalogError::Dataset("append carries no rows".into()));
        }
        let mut inner = self.lock();
        if !inner.meta.contains_key(name) {
            return Err(CatalogError::NotFound(name.to_owned()));
        }
        let current = self.resolve(&mut inner, name)?;
        let appended = chunk.row_count() as u64;
        let (table, zones, checksum, bytes, stored) =
            match self.dataset_dir(name).filter(|d| vsc::exists(d)) {
                Some(dir) => {
                    if vsc2::format_of(&dir)? == vsc2::FORMAT {
                        let manifest = vsc2::peek(&dir)?;
                        let result = vsc2::append(&dir, &manifest, &current.table, &chunk)?;
                        (
                            result.table,
                            result.zones,
                            result.manifest.table_checksum.clone(),
                            result.manifest.data_bytes(),
                            Stored::Vsc2,
                        )
                    } else {
                        // Legacy VSC1 dataset: merge in memory and rewrite as
                        // VSC2 (the manifest swap is still atomic; stale VSC1
                        // blocks become ignored orphans).
                        let merged = vsc2::merge_tables(&current.table, &chunk)?;
                        let manifest = vsc2::save(&dir, &merged, 0)?;
                        let zones = manifest.zone_maps()?;
                        (
                            merged,
                            zones,
                            manifest.table_checksum.clone(),
                            manifest.data_bytes(),
                            Stored::Vsc2,
                        )
                    }
                }
                None => {
                    let merged = vsc2::merge_tables(&current.table, &chunk)?;
                    let zones = ZoneMaps::build(&merged, 0);
                    let checksum = format!("{:016x}", vsc::table_checksum(&merged));
                    let bytes = table_owned_bytes(&merged);
                    (merged, zones, checksum, bytes, Stored::Memory)
                }
            };
        let rows = table.row_count() as u64;
        let columns = column_schemas(&table);
        let charge = table_owned_bytes(&table);
        let entry = self.admit(
            &mut inner,
            name,
            Arc::new(table),
            Arc::new(zones),
            charge,
            MetaEntry {
                rows,
                bytes,
                checksum,
                columns,
                stored,
            },
        )?;
        self.append_rows.fetch_add(appended, Ordering::Relaxed);
        Ok(AppendOutcome {
            entry,
            appended,
            total_rows: rows,
        })
    }

    /// Parses `bytes` as CSV against the dataset's existing schema (same
    /// header required) and appends the rows via [`Catalog::append_rows`].
    ///
    /// # Errors
    ///
    /// [`CatalogError::Dataset`] for malformed CSV or header mismatch,
    /// plus everything [`Catalog::append_rows`] returns.
    pub fn append_csv_bytes(
        &self,
        name: &str,
        bytes: &[u8],
    ) -> Result<AppendOutcome, CatalogError> {
        let schema = self.get(name)?.table.schema().clone();
        let chunk = viewseeker_dataset::csv::read_csv(&schema, Cursor::new(bytes))?;
        self.append_rows(name, chunk)
    }

    /// Runs the named generator (`"diab"` or `"syn"`) with the given
    /// parameters exactly once: the result is registered under the
    /// deterministic name `gen-<kind>-r<rows>-s<seed>` (and persisted when
    /// the catalog has a data directory), so later calls with the same
    /// parameters share the cached table.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for unknown generator kinds;
    /// [`CatalogError::Dataset`] when generation fails.
    pub fn materialize_generated(
        &self,
        kind: &str,
        rows: usize,
        seed: u64,
    ) -> Result<DatasetEntry, CatalogError> {
        if kind != "diab" && kind != "syn" {
            return Err(CatalogError::NotFound(kind.to_owned()));
        }
        let name = format!("gen-{kind}-r{rows}-s{seed}");
        match self.get(&name) {
            Err(CatalogError::NotFound(_)) => {}
            other => return other,
        }
        // Hold the lock across generation so a concurrent materialization of
        // the same parameters waits and then hits the cache instead of
        // racing to a second allocation.
        let mut inner = self.lock();
        if let Some(table) = inner.cache.get(&name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let checksum = inner
                .meta
                .get(&name)
                .map(|m| m.checksum.clone())
                .unwrap_or_default();
            let zones = Self::zones_for(&mut inner, &name, &table);
            return Ok(DatasetEntry {
                name,
                table,
                checksum,
                zones,
            });
        }
        let table = match kind {
            "diab" => generate_diab(&DiabConfig::small(rows, seed))?,
            _ => generate_syn(&SynConfig::small(rows, seed))?,
        };
        self.store(&mut inner, &name, table)
    }

    /// Lists every known dataset, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<DatasetSummary> {
        let inner = self.lock();
        inner
            .meta
            .iter()
            .map(|(name, m)| DatasetSummary {
                name: name.clone(),
                rows: m.rows,
                bytes: m.bytes,
                checksum: m.checksum.clone(),
                resident: inner.cache.contains(name),
                columns: m.columns.clone(),
            })
            .collect()
    }

    /// Describes one dataset, including per-column cardinality (computed
    /// from the resident table, loading it if necessary).
    ///
    /// # Errors
    ///
    /// Everything [`Catalog::get`] returns.
    pub fn describe(&self, name: &str) -> Result<DatasetDetail, CatalogError> {
        let entry = self.get(name)?;
        let table = &entry.table;
        let resident_bytes = {
            let inner = self.lock();
            inner
                .shapes
                .get(name)
                .map_or_else(|| table_owned_bytes(table), |s| s.charge)
        };
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, m)| ColumnDetail {
                name: m.name.clone(),
                kind: kind_str(m.column_type).to_owned(),
                role: role_str(m.role).to_owned(),
                cardinality: table.column(i).cardinality() as u64,
            })
            .collect();
        Ok(DatasetDetail {
            name: entry.name,
            rows: table.row_count() as u64,
            resident_bytes,
            checksum: entry.checksum,
            columns,
        })
    }

    /// Deletes a dataset from the cache and (for persistent catalogs) from
    /// disk, unless live references outside the catalog still hold it.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for unknown names, [`CatalogError::InUse`]
    /// when sessions still reference the table, [`CatalogError::Io`] when
    /// the on-disk copy cannot be removed.
    pub fn delete(&self, name: &str) -> Result<(), CatalogError> {
        let mut inner = self.lock();
        if !inner.meta.contains_key(name) {
            return Err(CatalogError::NotFound(name.to_owned()));
        }
        if let Some(table) = inner.handles.get(name).and_then(Weak::upgrade) {
            // Count strong refs that are NOT ours: subtract this temporary
            // upgrade and the cache's copy (if resident).
            let cached = usize::from(inner.cache.contains(name));
            let outside = Arc::strong_count(&table).saturating_sub(1 + cached);
            if outside > 0 {
                return Err(CatalogError::InUse {
                    name: name.to_owned(),
                    refs: outside,
                });
            }
        }
        inner.cache.remove(name);
        inner.handles.remove(name);
        inner.shapes.remove(name);
        inner.meta.remove(name);
        if let Some(dir) = self.dataset_dir(name) {
            if dir.exists() {
                std::fs::remove_dir_all(&dir)?;
            }
        }
        Ok(())
    }

    /// A snapshot of the catalog's counters and gauges.
    #[must_use]
    pub fn stats(&self) -> CatalogStats {
        let inner = self.lock();
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: inner.cache.resident_bytes(),
            cached_datasets: inner.cache.len() as u64,
            known_datasets: inner.meta.len() as u64,
            append_rows: self.append_rows.load(Ordering::Relaxed),
        }
    }
}

/// Indexes one on-disk dataset directory (either format), returning its
/// metadata, or `None` when the manifest is unreadable.
fn index_dataset_dir(path: &Path) -> Option<MetaEntry> {
    match vsc2::format_of(path).ok()?.as_str() {
        vsc2::FORMAT => {
            let manifest = vsc2::peek(path).ok()?;
            let schema = manifest.schema().ok()?;
            Some(MetaEntry {
                rows: manifest.rows,
                bytes: manifest.data_bytes(),
                checksum: manifest.table_checksum.clone(),
                columns: schema
                    .columns()
                    .iter()
                    .map(|m| ColumnSchema {
                        name: m.name.clone(),
                        kind: kind_str(m.column_type).to_owned(),
                        role: role_str(m.role).to_owned(),
                    })
                    .collect(),
                stored: Stored::Vsc2,
            })
        }
        _ => {
            let manifest = vsc::peek(path).ok()?;
            let schema = manifest.schema().ok()?;
            Some(MetaEntry {
                rows: manifest.rows,
                bytes: manifest.block_bytes(),
                checksum: manifest.table_checksum.clone(),
                columns: schema
                    .columns()
                    .iter()
                    .map(|m| ColumnSchema {
                        name: m.name.clone(),
                        kind: kind_str(m.column_type).to_owned(),
                        role: role_str(m.role).to_owned(),
                    })
                    .collect(),
                stored: Stored::Vsc1,
            })
        }
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Catalog")
            .field("dir", &self.dir)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::{Column, Schema};

    fn demo_table(rows: usize) -> Table {
        let values: Vec<String> = (0..rows).map(|i| format!("v{}", i % 5)).collect();
        let schema = Schema::builder()
            .categorical_dimension("city")
            .measure("m_sales")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&values),
                Column::numeric((0..rows).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_shares_one_allocation() {
        let catalog = Catalog::in_memory(1 << 20);
        let entry = catalog.put("sales", demo_table(10)).unwrap();
        let a = catalog.get("sales").unwrap();
        let b = catalog.get("sales").unwrap();
        assert!(Arc::ptr_eq(&a.table, &b.table));
        assert!(Arc::ptr_eq(&a.table, &entry.table));
        assert_eq!(a.checksum, entry.checksum);
        assert!(a.zones.covers(&a.table));
        let stats = catalog.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn duplicate_and_reserved_names_rejected() {
        let catalog = Catalog::in_memory(1 << 20);
        catalog.put("sales", demo_table(5)).unwrap();
        assert!(matches!(
            catalog.put("sales", demo_table(5)),
            Err(CatalogError::Exists(_))
        ));
        for name in ["diab", "syn", "gen-diab-r10-s1"] {
            assert!(matches!(
                catalog.put(name, demo_table(5)),
                Err(CatalogError::Reserved(_))
            ));
        }
        assert!(matches!(
            catalog.put("../evil", demo_table(5)),
            Err(CatalogError::InvalidName(_))
        ));
        assert!(matches!(
            catalog.put("", demo_table(5)),
            Err(CatalogError::InvalidName(_))
        ));
    }

    #[test]
    fn csv_import_round_trips() {
        let catalog = Catalog::in_memory(1 << 20);
        let csv = b"region,n_age,m_profit\nwest,30,1.5\neast,40,2.5\nwest,50,3.5\n";
        let entry = catalog.import_csv_bytes("regions", csv).unwrap();
        assert_eq!(entry.table.row_count(), 3);
        assert_eq!(
            entry.table.schema().dimension_names(),
            vec!["region", "n_age"]
        );
        let detail = catalog.describe("regions").unwrap();
        assert_eq!(detail.rows, 3);
        assert_eq!(detail.columns[0].cardinality, 2);
        assert_eq!(detail.columns[1].cardinality, 3);
        assert!(matches!(
            catalog.import_csv_bytes("empty", b"a,m_b\n"),
            Err(CatalogError::Dataset(_))
        ));
    }

    #[test]
    fn persistent_catalog_survives_reopen() {
        let dir = tmp("reopen");
        let checksum = {
            let catalog = Catalog::open(&dir, 1 << 20).unwrap();
            catalog.put("sales", demo_table(20)).unwrap().checksum
        };
        let catalog = Catalog::open(&dir, 1 << 20).unwrap();
        let listed = catalog.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "sales");
        assert_eq!(listed[0].rows, 20);
        assert!(!listed[0].resident);
        let entry = catalog.get("sales").unwrap();
        assert_eq!(entry.checksum, checksum);
        assert_eq!(catalog.stats().misses, 1);
        assert!(catalog.list()[0].resident);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_vsc1_datasets_remain_readable() {
        let dir = tmp("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let table = demo_table(40);
        let checksum = format!("{:016x}", vsc::table_checksum(&table));
        vsc::save(&dir.join("old"), &table).unwrap();
        let catalog = Catalog::open(&dir, 1 << 20).unwrap();
        let listed = catalog.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].checksum, checksum);
        let entry = catalog.get("old").unwrap();
        assert_eq!(entry.table.row_count(), 40);
        assert_eq!(entry.checksum, checksum);
        assert!(entry.zones.covers(&entry.table));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_and_reload_counts() {
        let dir = tmp("evict");
        // Budget fits roughly one of the two tables.
        let catalog = Catalog::open(&dir, 600).unwrap();
        catalog.put("a", demo_table(30)).unwrap();
        catalog.put("b", demo_table(30)).unwrap();
        let stats = catalog.stats();
        assert_eq!(stats.evictions, 1, "a evicted when b arrived");
        assert_eq!(stats.cached_datasets, 1);
        // Reloading "a" from disk is a miss and evicts "b".
        let a = catalog.get("a").unwrap();
        assert_eq!(a.table.row_count(), 30);
        let stats = catalog.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_but_live_table_is_reshared_not_reloaded() {
        let dir = tmp("reshare");
        let catalog = Catalog::open(&dir, 600).unwrap();
        let a = catalog.get_or_put("a");
        catalog.put("b", demo_table(30)).unwrap(); // evicts "a"
        assert_eq!(catalog.stats().evictions, 1);
        // "a" is evicted, but we still hold it: get must return the same
        // allocation, not a fresh disk load.
        let again = catalog.get("a").unwrap();
        assert!(Arc::ptr_eq(&a, &again.table));
        assert_eq!(catalog.stats().misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    impl Catalog {
        /// Test helper: put `name` if missing and return its table handle.
        fn get_or_put(&self, name: &str) -> Arc<Table> {
            match self.get(name) {
                Ok(e) => e.table,
                Err(_) => self.put(name, demo_table(30)).unwrap().table,
            }
        }
    }

    #[test]
    fn delete_guards_live_references() {
        let catalog = Catalog::in_memory(1 << 20);
        let entry = catalog.put("sales", demo_table(5)).unwrap();
        let held = Arc::clone(&entry.table);
        drop(entry);
        match catalog.delete("sales") {
            Err(CatalogError::InUse { refs, .. }) => assert_eq!(refs, 1),
            other => panic!("expected InUse, got {other:?}"),
        }
        drop(held);
        catalog.delete("sales").unwrap();
        assert!(matches!(
            catalog.get("sales"),
            Err(CatalogError::NotFound(_))
        ));
        assert!(matches!(
            catalog.delete("sales"),
            Err(CatalogError::NotFound(_))
        ));
    }

    #[test]
    fn delete_removes_on_disk_copy() {
        let dir = tmp("delete");
        let catalog = Catalog::open(&dir, 1 << 20).unwrap();
        catalog.put("sales", demo_table(5)).unwrap();
        assert!(dir.join("sales").join(vsc::MANIFEST).is_file());
        catalog.delete("sales").unwrap();
        assert!(!dir.join("sales").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn materialize_generated_is_idempotent_and_shared() {
        let catalog = Catalog::in_memory(64 << 20);
        let a = catalog.materialize_generated("diab", 500, 7).unwrap();
        let b = catalog.materialize_generated("diab", 500, 7).unwrap();
        assert!(Arc::ptr_eq(&a.table, &b.table));
        assert_eq!(a.name, "gen-diab-r500-s7");
        let c = catalog.materialize_generated("diab", 500, 8).unwrap();
        assert!(!Arc::ptr_eq(&a.table, &c.table));
        assert!(matches!(
            catalog.materialize_generated("nope", 10, 1),
            Err(CatalogError::NotFound(_))
        ));
        // syn works too.
        let s = catalog.materialize_generated("syn", 200, 3).unwrap();
        assert!(s.table.row_count() > 0);
    }

    #[test]
    fn materialized_generator_persists_to_disk() {
        let dir = tmp("gen");
        {
            let catalog = Catalog::open(&dir, 64 << 20).unwrap();
            catalog.materialize_generated("diab", 300, 9).unwrap();
        }
        let catalog = Catalog::open(&dir, 64 << 20).unwrap();
        let entry = catalog.materialize_generated("diab", 300, 9).unwrap();
        assert_eq!(entry.table.row_count(), 300);
        // Served from disk, not regenerated: the load shows up as a miss.
        assert_eq!(catalog.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_grows_dataset_and_survives_reload() {
        let dir = tmp("append");
        let catalog = Catalog::open(&dir, 64 << 20).unwrap();
        catalog.put("sales", demo_table(30)).unwrap();
        let outcome = catalog.append_rows("sales", demo_table(12)).unwrap();
        assert_eq!(outcome.appended, 12);
        assert_eq!(outcome.total_rows, 42);
        assert_eq!(outcome.entry.table.row_count(), 42);
        assert!(outcome.entry.zones.covers(&outcome.entry.table));
        assert_eq!(catalog.stats().append_rows, 12);
        drop(catalog);
        // Cold restart: the appended rows are on disk.
        let catalog = Catalog::open(&dir, 64 << 20).unwrap();
        let entry = catalog.get("sales").unwrap();
        assert_eq!(entry.table.row_count(), 42);
        assert_eq!(entry.checksum, outcome.entry.checksum);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_upgrades_legacy_vsc1_datasets() {
        let dir = tmp("upgrade");
        std::fs::create_dir_all(&dir).unwrap();
        vsc::save(&dir.join("old"), &demo_table(30)).unwrap();
        let catalog = Catalog::open(&dir, 64 << 20).unwrap();
        let outcome = catalog.append_rows("old", demo_table(10)).unwrap();
        assert_eq!(outcome.total_rows, 40);
        assert_eq!(vsc2::format_of(&dir.join("old")).unwrap(), vsc2::FORMAT);
        let entry = catalog.get("old").unwrap();
        assert_eq!(entry.table.row_count(), 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_rejects_bad_targets_and_shapes() {
        let catalog = Catalog::in_memory(1 << 20);
        catalog.put("sales", demo_table(10)).unwrap();
        assert!(matches!(
            catalog.append_rows("missing", demo_table(5)),
            Err(CatalogError::NotFound(_))
        ));
        assert!(matches!(
            catalog.append_rows("gen-diab-r10-s1", demo_table(5)),
            Err(CatalogError::Reserved(_))
        ));
        // Different schema.
        let other = {
            let schema = Schema::builder().measure("m_other").build().unwrap();
            Table::new(schema, vec![Column::numeric(vec![1.0])]).unwrap()
        };
        assert!(matches!(
            catalog.append_rows("sales", other),
            Err(CatalogError::Dataset(_))
        ));
        // In-memory appends work.
        let outcome = catalog.append_rows("sales", demo_table(3)).unwrap();
        assert_eq!(outcome.total_rows, 13);
    }

    #[test]
    fn append_csv_uses_existing_schema() {
        let catalog = Catalog::in_memory(1 << 20);
        let csv = b"region,n_age,m_profit\nwest,30,1.5\neast,40,2.5\n";
        catalog.import_csv_bytes("regions", csv).unwrap();
        let outcome = catalog
            .append_csv_bytes("regions", b"region,n_age,m_profit\nnorth,25,9.5\n")
            .unwrap();
        assert_eq!(outcome.total_rows, 3);
        let detail = catalog.describe("regions").unwrap();
        assert_eq!(detail.columns[0].cardinality, 3, "dictionary grew");
        assert!(matches!(
            catalog.append_csv_bytes("regions", b"wrong,header\nx,1\n"),
            Err(CatalogError::Dataset(_))
        ));
    }

    #[test]
    fn mapped_tables_are_charged_at_mapped_size() {
        let dir = tmp("mapcharge");
        // High-entropy measure: stays raw-encoded, so the reload serves it
        // zero-copy from the mapping on Linux.
        let rows = 4096usize;
        let schema = Schema::builder().measure("m_noise").build().unwrap();
        let table = Table::new(
            schema,
            vec![Column::numeric(
                (0..rows).map(|i| (i as f64).sin() * 1e9).collect(),
            )],
        )
        .unwrap();
        {
            let catalog = Catalog::open(&dir, 64 << 20).unwrap();
            catalog.put("noise", table).unwrap();
        }
        let catalog = Catalog::open(&dir, 64 << 20).unwrap();
        let entry = catalog.get("noise").unwrap();
        let loaded = vsc2::load(&dir.join("noise")).unwrap();
        // Regression: the cache charge equals what the load actually costs
        // (owned heap + mapped file bytes), not a decoded-size estimate.
        assert_eq!(catalog.stats().resident_bytes, loaded.resident_bytes());
        if loaded.mapped_bytes > 0 {
            // The zero-copy column owns no heap; its charge is the file.
            let file_len = std::fs::metadata(dir.join("noise").join(vsc2::column_file(0)))
                .unwrap()
                .len();
            assert_eq!(loaded.mapped_bytes, file_len);
            assert_eq!(entry.table.column(0).owned_bytes(), 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
