//! Byte-budgeted LRU table cache.
//!
//! The cache always admits the table being inserted and then evicts
//! least-recently-used *evictable* entries until the budget is met. An entry
//! is evictable only when it can be reloaded (it has a VSC1 copy on disk);
//! memory-only datasets are pinned so eviction never destroys data, which
//! means an in-memory catalog can exceed its budget — by design, since the
//! alternative is silent data loss.

use std::collections::HashMap;
use std::sync::Arc;

use viewseeker_dataset::Table;

/// One cached table plus its accounting metadata.
struct CacheEntry {
    table: Arc<Table>,
    bytes: u64,
    last_used: u64,
    evictable: bool,
}

/// LRU cache keyed by dataset name.
pub(crate) struct LruCache {
    budget: u64,
    entries: HashMap<String, CacheEntry>,
    bytes: u64,
    tick: u64,
}

impl LruCache {
    pub(crate) fn new(budget: u64) -> Self {
        Self {
            budget,
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
        }
    }

    /// Looks up a cached table, marking it most-recently-used.
    pub(crate) fn get(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(name).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.table)
        })
    }

    /// Whether `name` is currently resident.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Inserts (or replaces) `name`, then evicts LRU evictable entries other
    /// than `name` until the byte budget is met or no candidates remain.
    /// Returns the names evicted.
    pub(crate) fn insert(
        &mut self,
        name: &str,
        table: Arc<Table>,
        bytes: u64,
        evictable: bool,
    ) -> Vec<String> {
        self.tick += 1;
        if let Some(old) = self.entries.remove(name) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.entries.insert(
            name.to_owned(),
            CacheEntry {
                table,
                bytes,
                last_used: self.tick,
                evictable,
            },
        );
        let mut evicted = Vec::new();
        while self.bytes > self.budget {
            // vslint::allow(hash-iter): eviction choice is deterministic —
            // `last_used` ticks are unique and strictly increasing, so
            // min_by_key never ties despite the hash iteration order.
            let victim = self
                .entries
                .iter()
                .filter(|(k, e)| e.evictable && k.as_str() != name)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(victim) => {
                    if let Some(e) = self.entries.remove(&victim) {
                        self.bytes -= e.bytes;
                    }
                    evicted.push(victim);
                }
                None => break,
            }
        }
        evicted
    }

    /// Drops `name` from the cache, returning its byte size if it was
    /// resident.
    pub(crate) fn remove(&mut self, name: &str) -> Option<u64> {
        self.entries.remove(name).map(|e| {
            self.bytes -= e.bytes;
            e.bytes
        })
    }

    /// Total bytes of resident tables.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of resident tables.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::{Column, Schema};

    fn table() -> Arc<Table> {
        let schema = Schema::builder().measure("m").build().unwrap();
        Arc::new(Table::new(schema, vec![Column::numeric(vec![1.0])]).unwrap())
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut c = LruCache::new(100);
        assert!(c.insert("a", table(), 40, true).is_empty());
        assert!(c.insert("b", table(), 40, true).is_empty());
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get("a").is_some());
        let evicted = c.insert("c", table(), 40, true);
        assert_eq!(evicted, vec!["b".to_owned()]);
        assert_eq!(c.resident_bytes(), 80);
        assert!(c.contains("a") && c.contains("c") && !c.contains("b"));
    }

    #[test]
    fn newly_inserted_entry_is_always_admitted() {
        let mut c = LruCache::new(10);
        let evicted = c.insert("big", table(), 50, true);
        assert!(evicted.is_empty());
        assert!(c.contains("big"));
        // The next insert evicts it, even though the newcomer is also over
        // budget.
        let evicted = c.insert("big2", table(), 60, true);
        assert_eq!(evicted, vec!["big".to_owned()]);
        assert_eq!(c.resident_bytes(), 60);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let mut c = LruCache::new(50);
        assert!(c.insert("pinned", table(), 40, false).is_empty());
        let evicted = c.insert("disk", table(), 40, true);
        assert!(evicted.is_empty(), "nothing evictable except the newcomer");
        assert_eq!(c.resident_bytes(), 80);
        // A third evictable entry pushes out "disk" but never "pinned".
        let evicted = c.insert("disk2", table(), 40, true);
        assert_eq!(evicted, vec!["disk".to_owned()]);
        assert!(c.contains("pinned"));
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = LruCache::new(100);
        c.insert("a", table(), 30, true);
        c.insert("a", table(), 70, true);
        assert_eq!(c.resident_bytes(), 70);
        assert_eq!(c.len(), 1);
        assert_eq!(c.remove("a"), Some(70));
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.remove("a"), None);
    }
}
