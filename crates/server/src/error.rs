//! Error type shared by every layer of the server, with its HTTP mapping.

use viewseeker_core::CoreError;

/// A request-handling failure, tagged with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Malformed request: bad JSON, bad query parameter, bad HTTP framing.
    BadRequest(String),
    /// The session (or route) does not exist.
    NotFound(String),
    /// The request is well-formed but the session cannot satisfy it right
    /// now (no labels yet, view already labeled, registry full).
    Conflict(String),
    /// Filesystem trouble (snapshot persistence).
    Io(String),
    /// Anything else from the core engine.
    Internal(String),
}

impl ServerError {
    /// The HTTP status code this error renders as.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ServerError::BadRequest(_) => 400,
            ServerError::NotFound(_) => 404,
            ServerError::Conflict(_) => 409,
            ServerError::Io(_) | ServerError::Internal(_) => 500,
        }
    }

    /// The human-readable message carried by the error.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            ServerError::BadRequest(m)
            | ServerError::NotFound(m)
            | ServerError::Conflict(m)
            | ServerError::Io(m)
            | ServerError::Internal(m) => m,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        match &e {
            // Caller named a view outside the space or sent a bad score.
            CoreError::UnknownView(_) | CoreError::InvalidLabel(_) => {
                ServerError::BadRequest(e.to_string())
            }
            // Valid request, wrong session state.
            CoreError::AlreadyLabeled(_) => ServerError::Conflict(e.to_string()),
            // Estimator not fitted yet (recommend before any feedback).
            CoreError::Learn(_) => ServerError::Conflict(e.to_string()),
            CoreError::Invalid(_) => ServerError::BadRequest(e.to_string()),
            CoreError::Dataset(_) | CoreError::Stats(_) => ServerError::Internal(e.to_string()),
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e.to_string())
    }
}

impl From<viewseeker_net::http1::ParseError> for ServerError {
    fn from(e: viewseeker_net::http1::ParseError) -> Self {
        // Framing errors (431/413) never reach handler code — the I/O
        // paths answer them directly. What arrives here comes from the
        // request accessor helpers (`parsed_param`, `body_text`), which
        // are all 400s.
        ServerError::BadRequest(e.message())
    }
}

impl From<viewseeker_catalog::CatalogError> for ServerError {
    fn from(e: viewseeker_catalog::CatalogError) -> Self {
        use viewseeker_catalog::CatalogError as C;
        match &e {
            C::NotFound(_) => ServerError::NotFound(e.to_string()),
            // Duplicate name or live references: well-formed request, wrong
            // catalog state.
            C::Exists(_) | C::InUse { .. } => ServerError::Conflict(e.to_string()),
            C::InvalidName(_) | C::Reserved(_) | C::Dataset(_) => {
                ServerError::BadRequest(e.to_string())
            }
            // Server-side storage trouble, not the client's fault.
            C::Io(_) | C::Corrupt(_) => ServerError::Internal(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_map_to_sensible_statuses() {
        assert_eq!(ServerError::from(CoreError::UnknownView(3)).status(), 400);
        assert_eq!(
            ServerError::from(CoreError::InvalidLabel(2.0)).status(),
            400
        );
        assert_eq!(
            ServerError::from(CoreError::AlreadyLabeled(1)).status(),
            409
        );
        assert_eq!(
            ServerError::from(CoreError::Invalid("x".into())).status(),
            400
        );
        assert_eq!(ServerError::NotFound("s9".into()).status(), 404);
    }
}
