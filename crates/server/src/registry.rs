//! The session registry: named, concurrent, capacity-bounded interactive
//! sessions.
//!
//! Concurrency model: the registry map lives under an `RwLock` (reads for
//! lookup, writes for create/evict/remove), and every session is
//! single-writer behind its own `Mutex<OwnedSeeker>` — two requests to the
//! *same* session serialize, requests to *different* sessions proceed in
//! parallel, and no request holds the registry lock while the (potentially
//! slow) seeker work runs.
//!
//! Capacity: at most `max_sessions` live sessions. A session idle past
//! `ttl` is evictable; when the cap is hit the least-recently-used session
//! is evicted even if fresh. Eviction is not data loss: the session is
//! snapshotted (labels + spec) to `snapshot_dir` first, and
//! [`SessionRegistry::restore_from_disk`] rebuilds it bit-identically —
//! the estimators are a pure function of the replayed labels.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use viewseeker_catalog::{Catalog, CatalogError, DatasetEntry};
use viewseeker_core::persist::SessionSnapshot;
use viewseeker_core::trace::{Recorder, Tracer};
use viewseeker_core::{MaterializeStrategy, OwnedSeeker, Seeker, ViewSeekerConfig};
use viewseeker_dataset::{Predicate, SelectQuery};

use crate::error::ServerError;
use crate::log::{n, s, Logger};
use crate::metrics::Counters;

/// Everything needed to (re)build a session's world deterministically: the
/// named generated dataset and the view-space configuration. Doubles as the
/// `POST /sessions` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Requested session id. `None` (the wire default — older clients
    /// never send the key) lets the registry mint `s<n>`; the cluster
    /// shard router sets it so an id's consistent-hash owner is decided
    /// *before* the session exists, and so a forwarded create lands on a
    /// plain peer server under the router-chosen id. Validated to 1–64
    /// chars of `[A-Za-z0-9_-]`.
    pub id: Option<String>,
    /// Named dataset: `"diab"` or `"syn"`.
    pub dataset: String,
    /// Row count (default: 3000).
    pub rows: Option<usize>,
    /// Generator seed (default: 11).
    pub seed: Option<u64>,
    /// Target query: `"*"` or a SQL WHERE expression
    /// (e.g. `"a0 = 'a0_v0'"`). Default: `"*"`.
    pub query: Option<String>,
    /// α partial-data ratio in `(0, 1]` (default: 1.0 = exact features).
    pub alpha: Option<f64>,
    /// Dimensions excluded from the view space.
    pub exclude: Option<Vec<String>>,
    /// Bin configurations for numeric dimensions.
    pub bins: Option<Vec<usize>>,
    /// Materialization executor: `"naive"`, `"shared"`, or `"fused"`
    /// (default: fused). The slower executors are kept reachable so a
    /// deployment can cross-check the fused path against its oracles.
    pub executor: Option<String>,
}

impl SessionSpec {
    /// A minimal spec for `dataset` with every knob defaulted.
    #[must_use]
    pub fn named(dataset: &str) -> Self {
        Self {
            id: None,
            dataset: dataset.to_owned(),
            rows: None,
            seed: None,
            query: None,
            alpha: None,
            exclude: None,
            bins: None,
            executor: None,
        }
    }

    /// Resolves the spec's dataset through `catalog`: `"diab"`/`"syn"` are
    /// materialized from the generators (once — later specs with the same
    /// parameters share the cached table), anything else is looked up as a
    /// catalog dataset name (uploaded CSV or pre-imported VSC1). Identical
    /// specs resolve to pointer-equal `Arc<Table>`s.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] for an unknown dataset name, generator
    /// rejection, or `rows`/`seed` given with a stored (non-generated)
    /// dataset.
    pub fn resolve_dataset(&self, catalog: &Catalog) -> Result<DatasetEntry, ServerError> {
        match self.dataset.as_str() {
            kind @ ("diab" | "syn") => {
                let rows = self.rows.unwrap_or(3_000);
                let seed = self.seed.unwrap_or(11);
                catalog
                    .materialize_generated(kind, rows, seed)
                    .map_err(|e| ServerError::BadRequest(format!("dataset generation: {e}")))
            }
            name => {
                if self.rows.is_some() || self.seed.is_some() {
                    return Err(ServerError::BadRequest(format!(
                        "rows/seed only apply to generated datasets, not {name:?}"
                    )));
                }
                catalog.get(name).map_err(|e| match e {
                    CatalogError::NotFound(_) => ServerError::BadRequest(format!(
                        "unknown dataset {name:?} (expected \"diab\", \"syn\", or an \
                         uploaded dataset name)"
                    )),
                    other => other.into(),
                })
            }
        }
    }

    /// Parses the spec's query string.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] for unparseable SQL.
    pub fn build_query(&self) -> Result<SelectQuery, ServerError> {
        let raw = self.query.as_deref().unwrap_or("*").trim();
        if raw.is_empty() || raw == "*" {
            return Ok(SelectQuery::new(Predicate::True));
        }
        let predicate = viewseeker_dataset::sql::parse_where(raw)
            .map_err(|e| ServerError::BadRequest(format!("bad query {raw:?}: {e}")))?;
        Ok(SelectQuery::new(predicate))
    }

    /// Translates the spec's knobs onto a default [`ViewSeekerConfig`].
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] for an unknown executor name.
    pub fn build_config(&self) -> Result<ViewSeekerConfig, ServerError> {
        let mut config = ViewSeekerConfig::default();
        if let Some(alpha) = self.alpha {
            config.alpha = alpha;
        }
        if let Some(exclude) = &self.exclude {
            config.excluded_dimensions = exclude.clone();
        }
        if let Some(bins) = &self.bins {
            config.bin_configs = bins.clone();
        }
        if let Some(executor) = &self.executor {
            config.materialize = executor
                .parse()
                .map_err(|e: String| ServerError::BadRequest(format!("bad executor: {e}")))?;
        }
        Ok(config)
    }

    /// Builds the full session over a table already resolved from the
    /// catalog: the seeker shares the catalog's `Arc<Table>` rather than
    /// owning a private copy.
    ///
    /// # Errors
    ///
    /// Spec validation plus seeker initialization errors.
    pub fn build_seeker_on(
        &self,
        dataset: &DatasetEntry,
        tracer: Arc<dyn Tracer>,
    ) -> Result<OwnedSeeker, ServerError> {
        let query = self.build_query()?;
        Ok(Seeker::new_traced_with_zones(
            Arc::clone(&dataset.table),
            &query,
            self.build_config()?,
            Some(Arc::clone(&dataset.zones)),
            tracer,
        )?)
    }
}

/// What eviction writes to disk: the spec to rebuild the world plus the
/// snapshot to replay onto it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedSession {
    /// The session's id at eviction time (restore keeps it).
    pub id: String,
    /// How to rebuild the table / query / config.
    pub spec: SessionSpec,
    /// The labels to replay.
    pub snapshot: SessionSnapshot,
    /// Catalog name the session's table resolved to (e.g.
    /// `gen-diab-r3000-s11` or an uploaded dataset name). `None` in
    /// snapshots written before the catalog existed.
    pub dataset_name: Option<String>,
    /// Content digest of that table at snapshot time, lowercase hex.
    /// Restore re-resolves the spec and refuses to replay labels onto a
    /// table whose digest no longer matches (the learned weights would
    /// silently describe different views).
    pub dataset_checksum: Option<String>,
}

/// One live session.
pub struct SessionEntry {
    /// The registry-assigned id.
    pub id: String,
    /// The spec the session was created from.
    pub spec: SessionSpec,
    /// The catalog name the spec's dataset resolved to.
    pub dataset_name: String,
    /// Content digest of the session's table, lowercase hex. Behind a lock
    /// because a dataset append retargets live sessions onto the grown
    /// table, whose digest differs; read it via
    /// [`SessionEntry::dataset_checksum`].
    dataset_checksum: Mutex<String>,
    /// The interactive session itself; lock to use.
    pub seeker: Mutex<OwnedSeeker>,
    /// The session's trace recorder (the seeker reports into it; readable
    /// without the seeker lock).
    pub recorder: Arc<Recorder>,
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    /// The current content digest of the session's table. A poisoned lock
    /// is recovered: the guarded value is a plain `String`, structurally
    /// valid no matter where a panicking thread died.
    #[must_use]
    pub fn dataset_checksum(&self) -> String {
        self.dataset_checksum
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn set_dataset_checksum(&self, checksum: String) {
        *self
            .dataset_checksum
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = checksum;
    }

    /// The LRU clock. A poisoned clock lock is recovered: the guarded
    /// value is a plain `Instant`, structurally valid no matter where a
    /// panicking thread died.
    fn last_used(&self) -> MutexGuard<'_, Instant> {
        self.last_used
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn touch(&self) {
        // vslint::allow(wall-clock): the LRU recency clock decides only
        // *eviction* order, never recommendation output.
        *self.last_used() = Instant::now();
    }

    fn idle(&self) -> Duration {
        self.last_used().elapsed()
    }

    /// Locks the seeker, surfacing a poisoned lock as a typed 500 instead
    /// of a panic: unlike the registry map or the LRU clock, a seeker may
    /// genuinely be mid-mutation when its holder panics, so the state is
    /// not trusted.
    pub fn seeker_lock(&self) -> Result<MutexGuard<'_, OwnedSeeker>, ServerError> {
        self.seeker.lock().map_err(|_| {
            ServerError::Internal(format!(
                "session {:?} is unusable: a request holding its lock panicked",
                self.id
            ))
        })
    }
}

/// The concurrent, capacity-bounded session table.
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, Arc<SessionEntry>>>,
    next_id: AtomicU64,
    max_sessions: usize,
    ttl: Duration,
    snapshot_dir: Option<PathBuf>,
    catalog: Arc<Catalog>,
    counters: Arc<Counters>,
    logger: Arc<Logger>,
    default_executor: MaterializeStrategy,
}

/// Cache budget of the private in-memory catalog behind
/// [`SessionRegistry::new`] (generated tables are pinned anyway; the budget
/// only bounds evictable disk-backed tables, of which an in-memory catalog
/// has none).
const DEFAULT_CATALOG_BUDGET: u64 = 512 << 20;

impl SessionRegistry {
    /// Creates a registry holding at most `max_sessions` sessions, evicting
    /// after `ttl` idle time, persisting evictees under `snapshot_dir`
    /// (`None` = evictees are dropped after an in-memory snapshot attempt).
    /// Datasets resolve through a private in-memory catalog; use
    /// [`SessionRegistry::with_catalog`] to share one (and get persistence).
    #[must_use]
    pub fn new(max_sessions: usize, ttl: Duration, snapshot_dir: Option<PathBuf>) -> Self {
        Self::with_catalog(
            max_sessions,
            ttl,
            snapshot_dir,
            Arc::new(Catalog::in_memory(DEFAULT_CATALOG_BUDGET)),
        )
    }

    /// [`SessionRegistry::new`] resolving datasets through `catalog` — the
    /// handle the HTTP dataset endpoints share, so a session spec naming an
    /// uploaded dataset finds it.
    #[must_use]
    pub fn with_catalog(
        max_sessions: usize,
        ttl: Duration,
        snapshot_dir: Option<PathBuf>,
        catalog: Arc<Catalog>,
    ) -> Self {
        Self {
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
            ttl,
            snapshot_dir,
            catalog,
            counters: Arc::new(Counters::default()),
            logger: Logger::disabled(),
            default_executor: MaterializeStrategy::default(),
        }
    }

    /// Sets the executor used by sessions whose spec does not name one
    /// (`viewseeker serve --executor`). The chosen executor is written back
    /// into the session's spec, so snapshots replay with the executor the
    /// session was actually built with.
    pub fn set_default_executor(&mut self, executor: MaterializeStrategy) {
        self.default_executor = executor;
    }

    /// The catalog sessions resolve their datasets through.
    #[must_use]
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Connects the registry to the process-wide counters and the event
    /// logger. Called once by [`crate::api::AppState`] before serving; the
    /// defaults (private counters, disabled logger) keep standalone
    /// registries in tests silent.
    pub fn attach_observability(&mut self, counters: Arc<Counters>, logger: Arc<Logger>) {
        self.counters = counters;
        self.logger = logger;
    }

    /// Read-locks the session map. A poisoned lock is recovered:
    /// `HashMap` insert/remove either happened or didn't — a panicking
    /// holder can't leave the map half-mutated — so the data is valid
    /// and refusing service would only turn one failed request into a
    /// permanently dead registry.
    fn sessions_read(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<SessionEntry>>> {
        self.sessions.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-locks the session map; same poison policy as
    /// [`SessionRegistry::sessions_read`].
    fn sessions_write(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<SessionEntry>>> {
        self.sessions
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions_read().len()
    }

    /// Whether no session is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(id, label_count, phase, idle)` for every live session, for the
    /// listing endpoint.
    #[must_use]
    pub fn describe(&self) -> Vec<(String, usize, &'static str, Duration)> {
        // Clone the entries out so no session lock is taken while the
        // registry lock is held (vslint rule lock-order).
        let entries: Vec<Arc<SessionEntry>> = self.sessions_read().values().cloned().collect();
        let mut out: Vec<_> = entries
            .iter()
            .map(|e| match e.seeker.lock() {
                Ok(seeker) => {
                    let phase = match seeker.phase() {
                        viewseeker_core::SeekerPhase::ColdStart => "cold_start",
                        viewseeker_core::SeekerPhase::Active => "active",
                    };
                    (e.id.clone(), seeker.label_count(), phase, e.idle())
                }
                // A poisoned session still appears in the listing — hiding
                // it would make the id unkillable via the API.
                Err(_) => (e.id.clone(), 0, "poisoned", e.idle()),
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Creates a session from `spec`, evicting if the cap requires it.
    ///
    /// # Errors
    ///
    /// Spec/seeker construction errors; eviction persistence errors.
    pub fn create(&self, mut spec: SessionSpec) -> Result<Arc<SessionEntry>, ServerError> {
        // A requested id (set by the cluster shard router, or by any
        // client that wants to pick its own handle) is honored after
        // validation; it is lifted out of the spec so stored specs and
        // snapshots stay canonical — the id lives on the entry.
        let requested = match spec.id.take() {
            Some(id) => {
                Self::validate_id(&id)?;
                if self.sessions_read().contains_key(&id) {
                    return Err(ServerError::Conflict(format!(
                        "session {id:?} is already live"
                    )));
                }
                Some(id)
            }
            None => None,
        };
        // Pin the executor into the spec so the snapshot records which one
        // actually built the session, even if the server default changes.
        if spec.executor.is_none() {
            spec.executor = Some(self.default_executor.name().to_owned());
        }
        let dataset = spec.resolve_dataset(&self.catalog)?;
        let recorder = Recorder::shared();
        let seeker = spec.build_seeker_on(&dataset, Arc::clone(&recorder) as Arc<dyn Tracer>)?;
        let id = requested
            .unwrap_or_else(|| format!("s{}", self.next_id.fetch_add(1, Ordering::SeqCst)));
        let entry = self.insert(id, spec, &dataset, seeker, recorder)?;
        Counters::bump(&self.counters.sessions_created);
        let (views, executor, scans) = entry.seeker.lock().map_or((0, "?", 0), |sk| {
            let report = sk.materialization();
            (
                sk.view_space().len() as u64,
                report.strategy.name(),
                report.scans,
            )
        });
        self.logger.info(
            "session_created",
            &[
                ("session", s(&entry.id)),
                ("dataset", s(&entry.dataset_name)),
                ("views", n(views)),
                ("executor", s(executor)),
                ("materialize_scans", n(scans)),
            ],
        );
        Ok(entry)
    }

    /// Checks a client- or router-requested session id: 1–64 characters,
    /// ASCII alphanumerics plus `-` and `_` (the same alphabet
    /// [`SessionRegistry::snapshot_path`] preserves, so the id survives a
    /// persist/restore round trip unchanged).
    fn validate_id(id: &str) -> Result<(), ServerError> {
        let ok_chars = id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        if id.is_empty() || id.len() > 64 || !ok_chars {
            return Err(ServerError::BadRequest(format!(
                "bad session id {id:?}: expected 1-64 characters of [A-Za-z0-9_-]"
            )));
        }
        Ok(())
    }

    /// Creates a session by replaying `persisted` labels over a freshly
    /// rebuilt world. The persisted id is kept so clients can resume with
    /// the handle they already hold.
    ///
    /// # Errors
    ///
    /// Spec errors, snapshot/view-space mismatches, label replay errors.
    pub fn restore(&self, persisted: &PersistedSession) -> Result<Arc<SessionEntry>, ServerError> {
        let result = self.restore_inner(persisted);
        match &result {
            Ok(entry) => {
                Counters::bump(&self.counters.restores_ok);
                self.logger.info(
                    "session_restored",
                    &[
                        ("session", s(&entry.id)),
                        ("labels", n(persisted.snapshot.labels.len() as u64)),
                    ],
                );
            }
            Err(e) => {
                Counters::bump(&self.counters.restores_failed);
                self.logger.warn(
                    "session_restore_failed",
                    &[("session", s(&persisted.id)), ("error", s(e.message()))],
                );
            }
        }
        result
    }

    fn restore_inner(
        &self,
        persisted: &PersistedSession,
    ) -> Result<Arc<SessionEntry>, ServerError> {
        if self.sessions_read().contains_key(&persisted.id) {
            return Err(ServerError::Conflict(format!(
                "session {:?} is already live",
                persisted.id
            )));
        }
        let dataset = persisted.spec.resolve_dataset(&self.catalog)?;
        if let Some(expected) = &persisted.dataset_checksum {
            if *expected != dataset.checksum {
                return Err(ServerError::Conflict(format!(
                    "snapshot {} was taken against dataset digest {expected}, but {:?} \
                     now has digest {} — refusing to replay labels onto different data",
                    persisted.id, dataset.name, dataset.checksum
                )));
            }
        }
        let query = persisted.spec.build_query()?;
        let recorder = Recorder::shared();
        let seeker = persisted.snapshot.restore_seeker_traced(
            Arc::clone(&dataset.table),
            &query,
            persisted.spec.build_config()?,
            Arc::clone(&recorder) as Arc<dyn Tracer>,
        )?;
        self.insert(
            persisted.id.clone(),
            persisted.spec.clone(),
            &dataset,
            seeker,
            recorder,
        )
    }

    /// Reloads a previously evicted session from `snapshot_dir`.
    ///
    /// # Errors
    ///
    /// [`ServerError::NotFound`] when no snapshot file exists for `id`;
    /// restore errors otherwise.
    pub fn restore_from_disk(&self, id: &str) -> Result<Arc<SessionEntry>, ServerError> {
        let path = self
            .snapshot_path(id)
            .ok_or_else(|| ServerError::NotFound("no snapshot directory configured".into()))?;
        let json = std::fs::read_to_string(&path).map_err(|_| {
            ServerError::NotFound(format!("no snapshot on disk for session {id:?}"))
        })?;
        let persisted: PersistedSession = serde_json::from_str(&json)
            .map_err(|e| ServerError::Internal(format!("corrupt snapshot {path:?}: {e}")))?;
        self.restore(&persisted)
    }

    fn insert(
        &self,
        id: String,
        spec: SessionSpec,
        dataset: &DatasetEntry,
        seeker: OwnedSeeker,
        recorder: Arc<Recorder>,
    ) -> Result<Arc<SessionEntry>, ServerError> {
        // Account the offline materialization this build just paid for,
        // whichever path (create or restore) triggered it.
        let report = *seeker.materialization();
        Counters::add(&self.counters.materialize_scans, report.scans);
        Counters::add(&self.counters.materialize_rows, report.rows_scanned);
        Counters::add(&self.counters.materialize_us, report.duration_us);
        Counters::add(&self.counters.rowgroups_scanned, report.rowgroups_scanned);
        Counters::add(&self.counters.rowgroups_pruned, report.rowgroups_pruned);
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            spec,
            dataset_name: dataset.name.clone(),
            dataset_checksum: Mutex::new(dataset.checksum.clone()),
            seeker: Mutex::new(seeker),
            recorder,
            // vslint::allow(wall-clock): initializes the LRU recency clock,
            // which decides only eviction order.
            last_used: Mutex::new(Instant::now()),
        });
        let evicted = {
            let mut sessions = self.sessions_write();
            let mut evicted = Vec::new();
            while sessions.len() >= self.max_sessions {
                // The most-idle session loses; idle-time ties (coarse
                // clocks) break on the smaller id so the victim never
                // depends on hash iteration order.
                // vslint::allow(hash-iter): victim choice is a pure max
                // over (idle, id) — a total order, so iteration order
                // cannot change the winner.
                let victim = sessions
                    .values()
                    .map(|e| (e.idle(), e.id.clone()))
                    .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                    .map(|(_, id)| id);
                let Some(victim) = victim else { break };
                evicted.extend(sessions.remove(&victim));
            }
            sessions.insert(id, Arc::clone(&entry));
            evicted
        };
        // Persist outside the registry lock: snapshotting locks the evicted
        // session and may touch the filesystem.
        for victim in evicted {
            Counters::bump(&self.counters.sessions_evicted);
            self.logger.info(
                "session_evicted",
                &[("session", s(&victim.id)), ("reason", s("capacity"))],
            );
            self.persist(&victim)?;
        }
        Ok(entry)
    }

    /// Looks a session up and refreshes its LRU clock.
    ///
    /// # Errors
    ///
    /// [`ServerError::NotFound`] for an unknown id (the error message points
    /// at `restore` when a disk snapshot exists).
    pub fn get(&self, id: &str) -> Result<Arc<SessionEntry>, ServerError> {
        let entry = self.sessions_read().get(id).cloned();
        match entry {
            Some(entry) => {
                entry.touch();
                Ok(entry)
            }
            None => {
                let hint = if self.snapshot_path(id).is_some_and(|p| p.exists()) {
                    " (evicted; POST /sessions/{id}/restore to reload it)"
                } else {
                    ""
                };
                Err(ServerError::NotFound(format!(
                    "unknown session {id:?}{hint}"
                )))
            }
        }
    }

    /// Looks a session up *without* refreshing its LRU clock — for
    /// observers (access logging, trace reads) that must not keep an
    /// otherwise-idle session alive.
    #[must_use]
    pub fn peek(&self, id: &str) -> Option<Arc<SessionEntry>> {
        self.sessions_read().get(id).cloned()
    }

    /// Removes a session without persisting it.
    ///
    /// # Errors
    ///
    /// [`ServerError::NotFound`] for an unknown id.
    pub fn remove(&self, id: &str) -> Result<(), ServerError> {
        self.sessions_write()
            .remove(id)
            .map(|_| self.logger.info("session_removed", &[("session", s(id))]))
            .ok_or_else(|| ServerError::NotFound(format!("unknown session {id:?}")))
    }

    /// Evicts every session idle longer than the TTL, persisting each.
    /// Returns the evicted ids. Called opportunistically by `/healthz`.
    ///
    /// # Errors
    ///
    /// Persistence errors (the sessions are already out of the map).
    pub fn sweep_expired(&self) -> Result<Vec<String>, ServerError> {
        let expired: Vec<Arc<SessionEntry>> = {
            let mut sessions = self.sessions_write();
            let victims: Vec<String> = sessions
                .values()
                .filter(|e| e.idle() > self.ttl)
                .map(|e| e.id.clone())
                .collect();
            victims
                .iter()
                .filter_map(|id| sessions.remove(id))
                .collect()
        };
        let mut ids = Vec::with_capacity(expired.len());
        for entry in &expired {
            Counters::bump(&self.counters.sessions_evicted);
            self.logger.info(
                "session_evicted",
                &[("session", s(&entry.id)), ("reason", s("ttl"))],
            );
            self.persist(entry)?;
            ids.push(entry.id.clone());
        }
        ids.sort();
        Ok(ids)
    }

    /// Folds a just-appended dataset into every live session built over it:
    /// each session either merges the appended tail into its retained fused
    /// aggregates (a tail-only scan) or re-materializes its view space on
    /// the grown table, then re-fits its estimators on the exact features —
    /// collected labels survive. Returns `(session_id, merged)` per updated
    /// session, sorted by id.
    ///
    /// A session whose absorption fails is logged and left on its previous
    /// table — the old `Arc<Table>` is still intact, so the session stays
    /// self-consistent, just behind the appended data.
    pub fn absorb_append(&self, dataset: &DatasetEntry) -> Vec<(String, bool)> {
        // Clone matching entries out so no session lock is taken while the
        // registry lock is held (vslint rule lock-order).
        let entries: Vec<Arc<SessionEntry>> = self
            .sessions_read()
            .values()
            .filter(|e| e.dataset_name == dataset.name)
            .cloned()
            .collect();
        let mut updated = Vec::new();
        for entry in entries {
            let result = entry.seeker_lock().and_then(|mut seeker| {
                Ok(seeker
                    .absorb_append(Arc::clone(&dataset.table), Some(Arc::clone(&dataset.zones)))?)
            });
            match result {
                Ok(report) => {
                    Counters::add(&self.counters.rowgroups_scanned, report.rowgroups_scanned);
                    Counters::add(&self.counters.rowgroups_pruned, report.rowgroups_pruned);
                    entry.set_dataset_checksum(dataset.checksum.clone());
                    self.logger.info(
                        "session_absorbed_append",
                        &[
                            ("session", s(&entry.id)),
                            ("dataset", s(&dataset.name)),
                            ("appended_rows", n(report.appended_rows)),
                            ("mode", s(if report.merged { "merged" } else { "rebuilt" })),
                            ("rows_scanned", n(report.rows_scanned)),
                        ],
                    );
                    updated.push((entry.id.clone(), report.merged));
                }
                Err(e) => {
                    self.logger.warn(
                        "session_absorb_append_failed",
                        &[
                            ("session", s(&entry.id)),
                            ("dataset", s(&dataset.name)),
                            ("error", s(e.message())),
                        ],
                    );
                }
            }
        }
        updated.sort();
        updated
    }

    /// Snapshots `entry` to the snapshot directory (no-op without one).
    ///
    /// # Errors
    ///
    /// Serialization or filesystem errors.
    pub fn persist(&self, entry: &SessionEntry) -> Result<(), ServerError> {
        let result = self.persist_inner(entry);
        match &result {
            Ok(true) => {
                Counters::bump(&self.counters.snapshots_ok);
                self.logger
                    .info("session_snapshot", &[("session", s(&entry.id))]);
            }
            Ok(false) => {} // no snapshot directory configured: a no-op
            Err(e) => {
                Counters::bump(&self.counters.snapshots_failed);
                self.logger.error(
                    "session_snapshot_failed",
                    &[("session", s(&entry.id)), ("error", s(e.message()))],
                );
            }
        }
        result.map(|_| ())
    }

    /// Returns whether a snapshot was actually written (`false` when no
    /// snapshot directory is configured).
    fn persist_inner(&self, entry: &SessionEntry) -> Result<bool, ServerError> {
        let Some(path) = self.snapshot_path(&entry.id) else {
            return Ok(false);
        };
        let seeker = entry.seeker_lock()?;
        let persisted = PersistedSession {
            id: entry.id.clone(),
            spec: entry.spec.clone(),
            snapshot: SessionSnapshot::from_seeker(&seeker),
            dataset_name: Some(entry.dataset_name.clone()),
            dataset_checksum: Some(entry.dataset_checksum()),
        };
        drop(seeker);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(&persisted)
            .map_err(|e| ServerError::Internal(format!("snapshot serialization: {e}")))?;
        std::fs::write(&path, json)?;
        Ok(true)
    }

    fn snapshot_path(&self, id: &str) -> Option<PathBuf> {
        // Ids are registry-generated (`s<n>`), but sanitize anyway since
        // restore takes the id from the URL.
        let safe: String = id
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        self.snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{safe}.json")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SessionSpec {
        SessionSpec {
            rows: Some(800),
            seed: Some(5),
            query: Some("a0 = 'a0_v0'".into()),
            ..SessionSpec::named("diab")
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vs-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_get_remove() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let entry = registry.create(spec()).unwrap();
        assert_eq!(registry.len(), 1);
        let again = registry.get(&entry.id).unwrap();
        assert_eq!(again.id, entry.id);
        assert!(registry.get("nope").is_err());
        registry.remove(&entry.id).unwrap();
        assert!(registry.is_empty());
    }

    #[test]
    fn requested_id_is_honored() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let entry = registry
            .create(SessionSpec {
                id: Some("shard-1_s42".into()),
                ..spec()
            })
            .unwrap();
        assert_eq!(entry.id, "shard-1_s42");
        assert_eq!(registry.get("shard-1_s42").unwrap().id, entry.id);
        // The id is lifted out of the stored spec.
        assert_eq!(entry.spec.id, None);
        // Minting continues independently for specs without an id.
        let minted = registry.create(spec()).unwrap();
        assert!(minted.id.starts_with('s'), "{}", minted.id);
    }

    #[test]
    fn duplicate_requested_id_is_a_conflict() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let forced = SessionSpec {
            id: Some("dup".into()),
            ..spec()
        };
        registry.create(forced.clone()).unwrap();
        match registry.create(forced).map(|entry| entry.id.clone()) {
            Err(ServerError::Conflict(msg)) => assert!(msg.contains("dup"), "{msg}"),
            other => panic!("expected Conflict, got {other:?}"),
        }
    }

    #[test]
    fn bad_requested_ids_are_rejected() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        for bad in ["", "has space", "slash/y", "dot.y", &"x".repeat(65)] {
            let result = registry
                .create(SessionSpec {
                    id: Some((*bad).to_owned()),
                    ..spec()
                })
                .map(|entry| entry.id.clone());
            match result {
                Err(ServerError::BadRequest(_)) => {}
                other => panic!("id {bad:?}: expected BadRequest, got {other:?}"),
            }
        }
        assert!(registry.is_empty());
    }

    #[test]
    fn spec_json_without_id_parses_to_none() {
        let parsed: SessionSpec =
            serde_json::from_str(r#"{"dataset":"diab","rows":800,"seed":5,"query":null,"alpha":null,"exclude":null,"bins":null,"executor":null}"#)
                .unwrap();
        assert_eq!(parsed.id, None);
    }

    #[test]
    fn eviction_snapshots_and_restore_reproduces_weights() {
        let dir = tmp_dir("evict");
        let registry = SessionRegistry::new(1, Duration::from_secs(600), Some(dir.clone()));

        let first = registry.create(spec()).unwrap();
        let first_id = first.id.clone();
        let weights_before = {
            let mut seeker = first.seeker.lock().unwrap();
            for score in [0.9, 0.1, 0.6] {
                let v = seeker.next_views(1).unwrap()[0];
                seeker.submit_feedback(v, score).unwrap();
            }
            seeker.learned_weights().unwrap().to_vec()
        };
        drop(first);

        // Cap is 1: creating a second session evicts the first to disk.
        let second = registry.create(spec()).unwrap();
        assert_ne!(second.id, first_id);
        assert_eq!(registry.len(), 1);
        assert!(registry.get(&first_id).is_err());

        let restored = registry.restore_from_disk(&first_id).unwrap();
        assert_eq!(restored.id, first_id);
        let seeker = restored.seeker.lock().unwrap();
        assert_eq!(seeker.label_count(), 3);
        let weights_after = seeker.learned_weights().unwrap();
        assert_eq!(weights_before.len(), weights_after.len());
        for (a, b) in weights_before.iter().zip(weights_after) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} != {b}");
        }
        drop(seeker);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ttl_sweep_evicts_idle_sessions() {
        let dir = tmp_dir("ttl");
        let registry = SessionRegistry::new(8, Duration::ZERO, Some(dir.clone()));
        let entry = registry.create(spec()).unwrap();
        let id = entry.id.clone();
        drop(entry);
        std::thread::sleep(Duration::from_millis(5));
        let evicted = registry.sweep_expired().unwrap();
        assert_eq!(evicted, vec![id.clone()]);
        assert!(registry.is_empty());
        // And it left a loadable snapshot behind.
        registry.restore_from_disk(&id).unwrap();
        assert_eq!(registry.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let registry = SessionRegistry::new(2, Duration::from_secs(60), None);
        assert!(registry.create(SessionSpec::named("nope")).is_err());
        let bad_query = SessionSpec {
            query: Some("NOT ( VALID".into()),
            ..spec()
        };
        assert!(registry.create(bad_query).is_err());
        // rows/seed are generator knobs; naming a stored dataset with them
        // set is a contradiction, not something to silently ignore.
        let rows_on_stored = SessionSpec {
            rows: Some(100),
            ..SessionSpec::named("uploaded")
        };
        assert!(registry.create(rows_on_stored).is_err());
    }

    #[test]
    fn executor_knob_selects_the_materialization_strategy() {
        let registry = SessionRegistry::new(8, Duration::from_secs(60), None);
        // Default: fused.
        let entry = registry.create(spec()).unwrap();
        assert_eq!(
            entry.seeker.lock().unwrap().materialization().strategy,
            MaterializeStrategy::Fused
        );
        // Explicit oracle selection sticks.
        let naive = registry
            .create(SessionSpec {
                executor: Some("naive".into()),
                ..spec()
            })
            .unwrap();
        assert_eq!(
            naive.seeker.lock().unwrap().materialization().strategy,
            MaterializeStrategy::Naive
        );
        // Unknown names are a client error, not a silent default.
        let err = registry
            .create(SessionSpec {
                executor: Some("turbo".into()),
                ..spec()
            })
            .err()
            .expect("must reject");
        assert!(matches!(err, ServerError::BadRequest(_)), "{err:?}");
        // Session builds fed the process-wide materialization counters.
        assert!(Counters::read(&registry.counters.materialize_scans) >= 1);
        assert!(Counters::read(&registry.counters.materialize_rows) >= 800);
    }

    #[test]
    fn registry_default_executor_applies_when_the_spec_names_none() {
        let mut registry = SessionRegistry::new(8, Duration::from_secs(60), None);
        registry.set_default_executor(MaterializeStrategy::Shared);
        let entry = registry.create(spec()).unwrap();
        assert_eq!(
            entry.seeker.lock().unwrap().materialization().strategy,
            MaterializeStrategy::Shared
        );
        // The chosen executor is pinned into the stored spec, so a snapshot
        // replays with the executor that actually built the session.
        assert_eq!(entry.spec.executor.as_deref(), Some("shared"));
        // An explicit spec still wins over the server default.
        let fused = registry
            .create(SessionSpec {
                executor: Some("fused".into()),
                ..spec()
            })
            .unwrap();
        assert_eq!(
            fused.seeker.lock().unwrap().materialization().strategy,
            MaterializeStrategy::Fused
        );
    }

    #[test]
    fn spec_json_without_executor_still_parses() {
        // Clients (and snapshots) from before the executor knob send no
        // "executor" key; it must deserialize to None, not fail.
        let json = r#"{"dataset":"diab","rows":500,"seed":3,"query":"*",
                       "alpha":null,"exclude":null,"bins":null}"#;
        let parsed: SessionSpec = serde_json::from_str(json).unwrap();
        assert_eq!(parsed.executor, None);
        assert_eq!(
            parsed.build_config().unwrap().materialize,
            viewseeker_core::MaterializeStrategy::Fused
        );
    }

    #[test]
    fn concurrent_sessions_with_one_spec_share_one_table_arc() {
        let registry = Arc::new(SessionRegistry::new(8, Duration::from_secs(60), None));
        let entries: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || registry.create(spec()).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        let first = entries[0].seeker.lock().unwrap().table_handle().clone();
        for entry in &entries[1..] {
            let seeker = entry.seeker.lock().unwrap();
            assert!(
                Arc::ptr_eq(&first, seeker.table_handle()),
                "sessions regenerated private tables instead of sharing the catalog's"
            );
        }
        // One materialization; the other three creates were cache hits.
        let stats = registry.catalog().stats();
        assert_eq!(stats.known_datasets, 1);
        assert!(stats.hits >= 3, "{stats:?}");
    }

    #[test]
    fn sessions_resolve_uploaded_catalog_datasets() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let csv = b"city,n_age,m_sales\nNY,30,1.0\nLA,40,2.0\nNY,50,3.0\nSF,35,4.0\n";
        registry.catalog().import_csv_bytes("sales", csv).unwrap();
        let entry = registry.create(SessionSpec::named("sales")).unwrap();
        assert_eq!(entry.dataset_name, "sales");
        let seeker = entry.seeker.lock().unwrap();
        assert!(!seeker.view_space().is_empty());
        let shared = Arc::ptr_eq(
            seeker.table_handle(),
            &registry.catalog().get("sales").unwrap().table,
        );
        assert!(shared);
    }

    #[test]
    fn restore_refuses_a_checksum_mismatch() {
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let entry = registry.create(spec()).unwrap();
        let snapshot = {
            let seeker = entry.seeker.lock().unwrap();
            SessionSnapshot::from_seeker(&seeker)
        };
        let persisted = PersistedSession {
            id: "ghost".into(),
            spec: spec(),
            snapshot,
            dataset_name: Some(entry.dataset_name.clone()),
            dataset_checksum: Some("00000000deadbeef".into()),
        };
        let err = registry.restore(&persisted).err().expect("must refuse");
        assert!(matches!(err, ServerError::Conflict(_)), "{err:?}");
        // With the true digest (or a pre-catalog snapshot without one) the
        // same restore succeeds.
        let ok = PersistedSession {
            id: "ghost".into(),
            dataset_checksum: Some(entry.dataset_checksum()),
            ..persisted.clone()
        };
        registry.restore(&ok).unwrap();
        registry.remove("ghost").unwrap();
        let legacy = PersistedSession {
            id: "ghost".into(),
            dataset_name: None,
            dataset_checksum: None,
            ..persisted
        };
        registry.restore(&legacy).unwrap();
    }

    #[test]
    fn legacy_snapshot_json_without_dataset_fields_still_parses() {
        // Snapshots written before the catalog have no dataset_name /
        // dataset_checksum keys; they must deserialize to None, not fail.
        let registry = SessionRegistry::new(4, Duration::from_secs(60), None);
        let entry = registry.create(spec()).unwrap();
        let snapshot = {
            let seeker = entry.seeker.lock().unwrap();
            SessionSnapshot::from_seeker(&seeker)
        };
        let mut value = serde_json::to_value(&PersistedSession {
            id: "old".into(),
            spec: spec(),
            snapshot,
            dataset_name: None,
            dataset_checksum: None,
        });
        if let serde_json::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "dataset_name" && k != "dataset_checksum");
        }
        let json = serde_json::render_compact(&value);
        let parsed: PersistedSession = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.dataset_name, None);
        assert_eq!(parsed.dataset_checksum, None);
        registry.restore(&parsed).unwrap();
    }
}
