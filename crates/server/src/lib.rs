//! `viewseeker-server`: a multi-session recommendation service over the
//! interactive loop.
//!
//! The paper frames ViewSeeker as an *interactive tool*: a user session
//! alternates "show me candidate views" with 0–1 feedback until the learned
//! utility stabilizes. This crate lifts that loop behind a small HTTP/1.1 +
//! JSON service so many users (or experiment harnesses) can run concurrent
//! sessions against one process:
//!
//! * [`http`] — the blocking HTTP path: `std::net::TcpListener` accept
//!   loop feeding a fixed worker pool through a crossbeam channel, kept as
//!   the differential oracle for the event path. The default I/O model is
//!   the `viewseeker-net` epoll reactor (`serve --io event`); both paths
//!   share one incremental HTTP/1.1 parser (`viewseeker_net::http1`).
//! * [`router`] — method/path dispatch with per-endpoint latency metrics.
//! * [`registry`] — the concurrent session table: `RwLock` map of
//!   per-session `Mutex<OwnedSeeker>` entries, with a max-session cap and
//!   TTL/LRU eviction that snapshots evictees to disk (restorable, since
//!   estimators are a pure function of the replayed labels).
//! * [`api`] — the endpoint bodies and JSON types.
//! * [`metrics`] — request histograms + lifecycle counters for `/healthz`.
//! * [`hist`] — the log-linear bucketed latency histogram behind both.
//! * [`prometheus`] — text exposition (format 0.0.4) for `GET /metrics`.
//! * [`log`] — structured JSON/text access and lifecycle event logs.
//! * [`trace`] — request-tracing glue: the thread-local trace scope, the
//!   seeker-phase tee, and the sink feeding `/debug/traces`.
//! * [`error`] — one error type with its HTTP status mapping.
//!
//! # In-process quickstart
//!
//! ```
//! use std::time::Duration;
//! use viewseeker_server::{serve_app, LogFormat, LogLevel, ServerConfig};
//!
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     max_sessions: 8,
//!     ttl: Duration::from_secs(600),
//!     snapshot_dir: None,
//!     data_dir: None,
//!     catalog_mem_budget: 64 << 20,
//!     log_format: LogFormat::Text,
//!     log_level: LogLevel::Off,
//!     default_executor: Default::default(),
//!     io: Default::default(),
//!     max_inflight: 256,
//!     queue_deadline_ms: 500,
//!     tracing: true,
//!     shards: 1,
//!     peers: Vec::new(),
//! };
//! let handle = serve_app(&config).unwrap();
//! let addr = handle.addr(); // POST http://{addr}/sessions etc.
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cluster;
pub mod error;
pub mod hist;
pub mod http;
pub mod log;
pub mod metrics;
pub mod prometheus;
pub mod registry;
pub mod router;
pub mod trace;

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

pub use api::AppState;
pub use cluster::ShardRouter;
pub use error::ServerError;
pub use http::{Request, Response, ServerHandle};
pub use log::{LogFormat, LogLevel, Logger};
pub use registry::{PersistedSession, SessionRegistry, SessionSpec};
pub use router::Router;

/// Startup knobs for [`serve_app`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Max live sessions before LRU eviction.
    pub max_sessions: usize,
    /// Idle time after which a session becomes evictable.
    pub ttl: Duration,
    /// Where evicted/snapshotted sessions are written (`None` = don't
    /// persist).
    pub snapshot_dir: Option<PathBuf>,
    /// Dataset catalog directory (`--data-dir`): imported CSVs are stored
    /// here in the VSC1 columnar format and survive restarts. `None` keeps
    /// the catalog memory-only.
    pub data_dir: Option<PathBuf>,
    /// Byte budget for the catalog's in-memory table cache
    /// (`--catalog-mem-budget`); disk-backed tables beyond it are LRU
    /// evicted and reloaded on demand.
    pub catalog_mem_budget: u64,
    /// Shape of access/event log lines (`--log-format json|text`).
    pub log_format: LogFormat,
    /// Minimum severity written to stderr (`--log-level`).
    pub log_level: LogLevel,
    /// Materialization executor for sessions whose spec does not name one
    /// (`--executor naive|shared|fused`; default: fused).
    pub default_executor: viewseeker_core::MaterializeStrategy,
    /// Which I/O path serves requests (`--io blocking|event`; default:
    /// event). Blocking is kept as a differential oracle for one release.
    pub io: IoModel,
    /// Event path only: max requests dispatched to the worker pool at
    /// once (`--max-inflight`); excess requests wait in the admission
    /// queue.
    pub max_inflight: usize,
    /// Event path only: max milliseconds a request may wait in the
    /// admission queue before being shed with `503 + Retry-After`
    /// (`--queue-deadline-ms`).
    pub queue_deadline_ms: u64,
    /// Per-request tracing (`--tracing false` disables): feeds the tail
    /// sampler behind `GET /debug/traces` and the
    /// `viewseeker_request_stage_seconds` histograms. `false` installs a
    /// no-op sink — request ids are still generated and echoed; this knob
    /// exists so the differential oracle can price the tracing overhead.
    pub tracing: bool,
    /// Local session shards (`serve --shards N`; default 1). Above 1,
    /// requests are consistent-hash routed by session id onto per-shard
    /// registries, each with its own worker pool and lock domain.
    pub shards: usize,
    /// Remote peers (`serve --peer host:port`, repeatable) speaking the
    /// same HTTP protocol. Sessions whose ring owner is a peer are
    /// forwarded; on graceful shutdown local sessions drain to the peers.
    pub peers: Vec<String>,
}

/// The I/O model behind [`serve_app`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Thread-per-connection blocking path ([`http`]).
    Blocking,
    /// Epoll reactor with admission control (`viewseeker-net`).
    #[default]
    Event,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(IoModel::Blocking),
            "event" => Ok(IoModel::Event),
            other => Err(format!("unknown io model {other:?} (blocking|event)")),
        }
    }
}

/// A running server on either I/O path; the common `addr`/`shutdown`
/// surface the CLI and tests need.
pub enum AppHandle {
    /// The blocking oracle path.
    Blocking(ServerHandle),
    /// The event reactor.
    Event(viewseeker_net::EventHandle),
    /// A sharded/peered deployment: the inner listener plus the shard
    /// router, which drains local sessions to the peers on shutdown.
    Clustered {
        /// The listener actually serving the shard router.
        inner: Box<AppHandle>,
        /// The consistent-hash front door.
        router: Arc<cluster::ShardRouter>,
    },
}

impl AppHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        match self {
            AppHandle::Blocking(h) => h.addr(),
            AppHandle::Event(h) => h.addr(),
            AppHandle::Clustered { inner, .. } => inner.addr(),
        }
    }

    /// Stops serving, drains in-flight work, and joins every thread. A
    /// clustered handle first migrates local sessions to its peers (the
    /// graceful drain), so a rolling restart loses no session state.
    pub fn shutdown(self) {
        match self {
            AppHandle::Blocking(h) => h.shutdown(),
            AppHandle::Event(h) => h.shutdown(),
            AppHandle::Clustered { inner, router } => {
                router.drain_to_peers();
                inner.shutdown();
            }
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            max_sessions: 32,
            ttl: Duration::from_secs(1_800),
            snapshot_dir: None,
            data_dir: None,
            catalog_mem_budget: 512 << 20,
            log_format: LogFormat::Text,
            log_level: LogLevel::Info,
            default_executor: viewseeker_core::MaterializeStrategy::default(),
            io: IoModel::default(),
            max_inflight: 256,
            queue_deadline_ms: 500,
            tracing: true,
            shards: 1,
            peers: Vec::new(),
        }
    }
}

/// Builds the catalog + registry + router and starts serving on the
/// configured I/O path.
///
/// # Errors
///
/// Propagates catalog-directory, TCP bind, and (event path) epoll setup
/// failures.
pub fn serve_app(config: &ServerConfig) -> std::io::Result<AppHandle> {
    let catalog = Arc::new(match &config.data_dir {
        Some(dir) => viewseeker_catalog::Catalog::open(dir, config.catalog_mem_budget)
            .map_err(|e| std::io::Error::other(format!("opening catalog: {e}")))?,
        None => viewseeker_catalog::Catalog::in_memory(config.catalog_mem_budget),
    });
    let shard_count = config.shards.max(1);
    let max_sessions_per_shard = config.max_sessions.div_ceil(shard_count);
    let make_registry = || {
        let mut registry = SessionRegistry::with_catalog(
            max_sessions_per_shard,
            config.ttl,
            config.snapshot_dir.clone(),
            Arc::clone(&catalog),
        );
        registry.set_default_executor(config.default_executor);
        registry
    };
    let logger = Logger::stderr(config.log_format, config.log_level);
    let mut state0 = AppState::with_logger(make_registry(), logger);
    state0.runtime = api::RuntimeInfo {
        io: match config.io {
            IoModel::Blocking => "blocking".to_owned(),
            IoModel::Event => "event".to_owned(),
        },
        tracing: config.tracing,
        shard_id: 0,
        shard_count,
    };
    let state0 = Arc::new(state0);
    let queue_depth = state0.metrics.counters().queue_depth_handle();
    let net = Arc::clone(&state0.net);
    let sink: Arc<dyn viewseeker_net::TraceSink> = if config.tracing {
        Arc::new(trace::ServerTraceSink::new(Arc::clone(&state0)))
    } else {
        Arc::new(viewseeker_net::NoopTraceSink)
    };
    let mut shard_routers = vec![Arc::new(Router::new(Arc::clone(&state0)))];
    for shard_id in 1..shard_count {
        let state = Arc::new(state0.sibling(make_registry(), shard_id));
        shard_routers.push(Arc::new(Router::new(state)));
    }
    let clustered = shard_count > 1 || !config.peers.is_empty();
    let router = Arc::new(
        cluster::ShardRouter::new(
            shard_routers,
            &config.peers,
            config.workers.div_ceil(shard_count),
        )
        .map_err(|e| std::io::Error::other(format!("building shard router: {e}")))?,
    );
    let handler = Arc::clone(&router);
    let inner = match config.io {
        IoModel::Blocking => http::serve_observed(
            config.addr.as_str(),
            config.workers,
            handler,
            queue_depth,
            sink,
        )
        .map(AppHandle::Blocking)?,
        IoModel::Event => {
            let event_config = viewseeker_net::EventConfig {
                workers: config.workers,
                max_inflight: config.max_inflight,
                queue_deadline: Duration::from_millis(config.queue_deadline_ms),
                ..viewseeker_net::EventConfig::default()
            };
            viewseeker_net::serve_event(
                config.addr.as_str(),
                event_config,
                handler,
                net,
                queue_depth,
                sink,
            )
            .map(AppHandle::Event)?
        }
    };
    Ok(if clustered {
        AppHandle::Clustered {
            inner: Box::new(inner),
            router,
        }
    } else {
        inner
    })
}
