//! Endpoint implementations: JSON request/response types plus the handlers
//! the router dispatches to. Handlers return plain data; HTTP concerns
//! (status codes, serialization) live in [`crate::router`].

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use viewseeker_catalog::{Catalog, DatasetDetail, DatasetSummary};
use viewseeker_core::{SeekerPhase, ViewId};

use crate::error::ServerError;
use crate::log::Logger;
use crate::metrics::{Counters, EndpointReport, Metrics};
use crate::registry::{PersistedSession, SessionEntry, SessionRegistry, SessionSpec};

/// Deployment facts a shard reports on `GET /healthz` — fixed at
/// startup (and by the shard router when it builds shard states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeInfo {
    /// The I/O path serving requests: `"blocking"`, `"event"`, or
    /// `"embedded"` when no listener runs (in-process use, tests).
    pub io: String,
    /// Whether per-request tracing feeds the tail sampler.
    pub tracing: bool,
    /// This shard's index among the process's local shards.
    pub shard_id: usize,
    /// Local shards in this process (`1` = unsharded).
    pub shard_count: usize,
}

impl Default for RuntimeInfo {
    fn default() -> Self {
        Self {
            io: "embedded".to_owned(),
            tracing: false,
            shard_id: 0,
            shard_count: 1,
        }
    }
}

/// Shared state behind every handler.
pub struct AppState {
    /// The session table.
    pub registry: SessionRegistry,
    /// The dataset catalog shared by every session (same instance the
    /// registry resolves specs against).
    pub catalog: Arc<Catalog>,
    /// Request histograms and lifecycle counters. Shared across shard
    /// states so `/metrics` and `/healthz` report process-wide numbers
    /// no matter which shard renders them.
    pub metrics: Arc<Metrics>,
    /// The structured event/access logger.
    pub logger: Arc<Logger>,
    /// Reactor counters behind the `viewseeker_net_*` series. All-zero
    /// under the blocking I/O path (no reactor runs there).
    pub net: Arc<viewseeker_net::NetStats>,
    /// The tail sampler retaining the slowest/errored/shed request
    /// traces, exported by `GET /debug/traces`.
    pub traces: Arc<viewseeker_net::TraceSampler>,
    /// Counters behind the `viewseeker_cluster_*` series, shared with
    /// the shard router (all-zero when no router runs).
    pub cluster: Arc<viewseeker_cluster::ClusterStats>,
    /// Deployment facts for `GET /healthz`.
    pub runtime: RuntimeInfo,
    /// Server start time, for the uptime report.
    pub started: Instant,
}

impl AppState {
    /// Bundles a registry with fresh metrics and a disabled logger (the
    /// embedded/test default; [`crate::serve_app`] wires a real one).
    #[must_use]
    pub fn new(registry: SessionRegistry) -> Self {
        Self::with_logger(registry, Logger::disabled())
    }

    /// Bundles a registry with fresh metrics and the given logger, wiring
    /// the registry's lifecycle events into both.
    #[must_use]
    pub fn with_logger(mut registry: SessionRegistry, logger: Arc<Logger>) -> Self {
        let metrics = Arc::new(Metrics::new());
        registry.attach_observability(Arc::clone(metrics.counters()), Arc::clone(&logger));
        let catalog = Arc::clone(registry.catalog());
        Self {
            registry,
            catalog,
            metrics,
            logger,
            net: Arc::new(viewseeker_net::NetStats::new()),
            traces: Arc::new(viewseeker_net::TraceSampler::default()),
            cluster: Arc::new(viewseeker_cluster::ClusterStats::new()),
            runtime: RuntimeInfo::default(),
            // vslint::allow(wall-clock): process start time, reported only
            // as the /metrics uptime gauge.
            started: Instant::now(),
        }
    }

    /// A sibling shard's state: its own registry and shard identity, but
    /// every process-wide facility — metrics, logger, net stats, trace
    /// sampler, cluster stats, start time — shared with `self`, so any
    /// shard can render the merged `/metrics` and `/healthz` reports.
    /// The registry should already share the catalog.
    #[must_use]
    pub fn sibling(&self, mut registry: SessionRegistry, shard_id: usize) -> Self {
        registry.attach_observability(
            Arc::clone(self.metrics.counters()),
            Arc::clone(&self.logger),
        );
        let catalog = Arc::clone(registry.catalog());
        Self {
            registry,
            catalog,
            metrics: Arc::clone(&self.metrics),
            logger: Arc::clone(&self.logger),
            net: Arc::clone(&self.net),
            traces: Arc::clone(&self.traces),
            cluster: Arc::clone(&self.cluster),
            runtime: RuntimeInfo {
                shard_id,
                ..self.runtime.clone()
            },
            started: self.started,
        }
    }
}

fn phase_name(phase: SeekerPhase) -> &'static str {
    match phase {
        SeekerPhase::ColdStart => "cold_start",
        SeekerPhase::Active => "active",
    }
}

/// One view in a response: definition, SQL rendering, optional score.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ViewInfo {
    /// Index into the session's view space.
    pub id: usize,
    /// Group-by dimension.
    pub dimension: String,
    /// Aggregated measure.
    pub measure: String,
    /// Aggregate function name.
    pub aggregate: String,
    /// Bin count for numeric dimensions.
    pub bins: Option<usize>,
    /// The SQL query this view stands for (over the target subset).
    pub sql: String,
    /// Predicted utility, when the estimator is fitted.
    pub score: Option<f64>,
}

fn view_info(
    entry: &SessionEntry,
    seeker: &viewseeker_core::OwnedSeeker,
    id: ViewId,
    score: Option<f64>,
) -> Result<ViewInfo, ServerError> {
    let def = seeker.view_space().def(id)?;
    let where_clause = entry.spec.query.clone().filter(|q| q.trim() != "*");
    Ok(ViewInfo {
        id: id.index(),
        dimension: def.dimension.clone(),
        measure: def.measure.clone(),
        aggregate: def.aggregate.to_string(),
        bins: def.bins,
        sql: def.to_sql(&entry.spec.dataset, where_clause.as_deref()),
        score,
    })
}

/// Cumulative time spent in one trace phase of a session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseTotalInfo {
    /// Phase name (`"refinement"`, `"estimator_fit"`, ...).
    pub phase: String,
    /// Spans recorded for this phase.
    pub count: u64,
    /// Total microseconds across those spans.
    pub total_us: u64,
}

/// Response of `POST /sessions`, `POST /sessions/:id/restore`, and
/// `GET /sessions/:id`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionInfo {
    /// The session's handle for all later calls.
    pub id: String,
    /// Size of the enumerated view space.
    pub views: usize,
    /// Labels submitted so far.
    pub labels: usize,
    /// `"cold_start"` or `"active"`.
    pub phase: String,
    /// Views whose features are still rough (α-sampling not yet refined).
    pub pending_refinements: usize,
    /// Interactive iterations completed (`next_views` calls).
    pub iterations: u64,
    /// Total wall-clock spent in incremental refinement, microseconds —
    /// the convergence cost the paper hides in user think-time (§3.3).
    pub refinement_time_us: u64,
    /// Cumulative per-phase span totals from the session's tracer, in
    /// phase execution order.
    pub phase_totals: Vec<PhaseTotalInfo>,
}

fn session_info(entry: &SessionEntry) -> Result<SessionInfo, ServerError> {
    let seeker = entry.seeker_lock()?;
    Ok(SessionInfo {
        id: entry.id.clone(),
        views: seeker.view_space().len(),
        labels: seeker.label_count(),
        phase: phase_name(seeker.phase()).to_owned(),
        pending_refinements: seeker.pending_refinements(),
        iterations: seeker.iteration_count(),
        refinement_time_us: u64::try_from(seeker.refinement_time().as_micros()).unwrap_or(u64::MAX),
        phase_totals: entry
            .recorder
            .phase_totals()
            .into_iter()
            .map(|(phase, total)| PhaseTotalInfo {
                phase: phase.name().to_owned(),
                count: total.count,
                total_us: total.total_us,
            })
            .collect(),
    })
}

/// Creates a session from a [`SessionSpec`] body.
///
/// # Errors
///
/// Bad spec, bad query, or seeker initialization failure.
pub fn create_session(state: &AppState, body: &str) -> Result<SessionInfo, ServerError> {
    let spec: SessionSpec = serde_json::from_str(body)
        .map_err(|e| ServerError::BadRequest(format!("bad session spec: {e}")))?;
    let entry = state.registry.create(spec)?;
    session_info(&entry)
}

/// Lists every live session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionListing {
    /// Session id.
    pub id: String,
    /// Labels submitted so far.
    pub labels: usize,
    /// `"cold_start"` or `"active"`.
    pub phase: String,
    /// Seconds since the session was last used.
    pub idle_secs: u64,
}

/// `GET /sessions`.
#[must_use]
pub fn list_sessions(state: &AppState) -> Vec<SessionListing> {
    state
        .registry
        .describe()
        .into_iter()
        .map(|(id, labels, phase, idle)| SessionListing {
            id,
            labels,
            phase: phase.to_owned(),
            idle_secs: idle.as_secs(),
        })
        .collect()
}

/// `GET /sessions/:id`.
///
/// # Errors
///
/// Unknown session.
pub fn get_session(state: &AppState, id: &str) -> Result<SessionInfo, ServerError> {
    let entry = state.registry.get(id)?;
    session_info(&entry)
}

/// `GET /sessions/:id/next?m=` — the next views to label (Algorithm 1,
/// line 6).
///
/// # Errors
///
/// Unknown session or estimator errors.
pub fn next_views(state: &AppState, id: &str, m: usize) -> Result<Vec<ViewInfo>, ServerError> {
    let entry = state.registry.get(id)?;
    let mut seeker = entry.seeker_lock()?;
    crate::trace::tee_seeker(&mut seeker, &entry.recorder);
    let result = seeker.next_views(m);
    crate::trace::untee_seeker(&mut seeker, &entry.recorder);
    let ids = result?;
    ids.into_iter()
        .map(|v| view_info(&entry, &seeker, v, None))
        .collect()
}

/// Body of `POST /sessions/:id/feedback`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackBody {
    /// View index being labeled.
    pub view: usize,
    /// The user's 0–1 utility judgement.
    pub score: f64,
}

/// `POST /sessions/:id/feedback` — label one view and refit.
///
/// # Errors
///
/// Unknown session/view, repeated label, score outside `[0, 1]`.
pub fn feedback(state: &AppState, id: &str, body: &str) -> Result<SessionInfo, ServerError> {
    let parsed: FeedbackBody = serde_json::from_str(body)
        .map_err(|e| ServerError::BadRequest(format!("bad feedback body: {e}")))?;
    let entry = state.registry.get(id)?;
    {
        let mut seeker = entry.seeker_lock()?;
        crate::trace::tee_seeker(&mut seeker, &entry.recorder);
        let result = seeker.submit_feedback(ViewId::from_index(parsed.view), parsed.score);
        crate::trace::untee_seeker(&mut seeker, &entry.recorder);
        result?;
    }
    Counters::bump(&state.metrics.counters().feedback_labels);
    session_info(&entry)
}

/// `GET /sessions/:id/recommend?k=&lambda=` — the current top-k (diverse
/// when `lambda` is given).
///
/// # Errors
///
/// Unknown session, or no labels submitted yet (409).
pub fn recommend(
    state: &AppState,
    id: &str,
    k: usize,
    lambda: Option<f64>,
) -> Result<Vec<ViewInfo>, ServerError> {
    let entry = state.registry.get(id)?;
    let mut seeker = entry.seeker_lock()?;
    crate::trace::tee_seeker(&mut seeker, &entry.recorder);
    let result = match lambda {
        Some(l) => seeker.recommend_diverse(k, l),
        None => seeker.recommend(k),
    };
    crate::trace::untee_seeker(&mut seeker, &entry.recorder);
    let ids = result?;
    let scores = seeker.predicted_scores()?;
    ids.into_iter()
        .map(|v| {
            let score = scores.get(v.index()).copied().ok_or_else(|| {
                ServerError::Internal(format!(
                    "recommended view {} has no predicted score (matrix has {})",
                    v.index(),
                    scores.len()
                ))
            })?;
            view_info(&entry, &seeker, v, Some(score))
        })
        .collect()
}

/// `POST /sessions/:id/snapshot` — snapshot the session (and persist it to
/// the snapshot directory when one is configured). The session stays live.
///
/// # Errors
///
/// Unknown session or persistence failure.
pub fn snapshot(state: &AppState, id: &str) -> Result<PersistedSession, ServerError> {
    let entry = state.registry.get(id)?;
    state.registry.persist(&entry)?;
    let seeker = entry.seeker_lock()?;
    Ok(PersistedSession {
        id: entry.id.clone(),
        spec: entry.spec.clone(),
        snapshot: viewseeker_core::SessionSnapshot::from_seeker(&seeker),
        dataset_name: Some(entry.dataset_name.clone()),
        dataset_checksum: Some(entry.dataset_checksum()),
    })
}

/// `POST /sessions/restore` (body = a [`PersistedSession`]) or
/// `POST /sessions/:id/restore` (reload the evicted session from disk).
///
/// # Errors
///
/// Missing snapshot, id collision with a live session, replay failure.
pub fn restore(state: &AppState, id: Option<&str>, body: &str) -> Result<SessionInfo, ServerError> {
    let entry = match id {
        Some(id) => state.registry.restore_from_disk(id)?,
        None => {
            let persisted: PersistedSession = serde_json::from_str(body)
                .map_err(|e| ServerError::BadRequest(format!("bad snapshot body: {e}")))?;
            state.registry.restore(&persisted)?
        }
    };
    session_info(&entry)
}

/// `DELETE /sessions/:id`.
///
/// # Errors
///
/// Unknown session.
pub fn delete_session(state: &AppState, id: &str) -> Result<(), ServerError> {
    state.registry.remove(id)
}

/// `POST /datasets/:name` — register the raw CSV body as a named dataset
/// in the catalog (persisted to the data directory when one is
/// configured). The whole body is the file; no multipart framing.
///
/// # Errors
///
/// Invalid/reserved name, duplicate name, unparseable CSV, empty table,
/// or storage failure.
pub fn upload_dataset(
    state: &AppState,
    name: &str,
    body: &[u8],
) -> Result<DatasetSummary, ServerError> {
    let entry = state.catalog.import_csv_bytes(name, body)?;
    state.logger.info(
        "dataset_imported",
        &[
            ("dataset", crate::log::s(&entry.name)),
            ("checksum", crate::log::s(&entry.checksum)),
        ],
    );
    summary_of(state, &entry.name)
}

/// `POST /datasets/:name/rows` response: what grew and which live
/// sessions were brought up to date.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppendInfo {
    /// The dataset appended to.
    pub dataset: String,
    /// Rows this request appended.
    pub appended: u64,
    /// Rows in the dataset after the append.
    pub total_rows: u64,
    /// Content digest of the grown table, lowercase hex.
    pub checksum: String,
    /// Live sessions over this dataset that absorbed the new rows.
    pub sessions_updated: usize,
    /// Of those, how many folded the tail into retained fused aggregates
    /// (the rest re-materialized).
    pub sessions_merged: usize,
}

/// `POST /datasets/:name/rows` — append the raw CSV body (header row
/// required, columns matching the dataset's schema) to an existing
/// dataset, durably (atomic manifest swap when the catalog is
/// disk-backed), then fold the new rows into every live session built
/// over the dataset.
///
/// # Errors
///
/// Unknown/reserved name, schema mismatch, unparseable or empty CSV, or
/// storage failure. Per-session absorption failures are logged, not
/// surfaced: the append itself is already durable.
pub fn append_dataset(
    state: &AppState,
    name: &str,
    body: &[u8],
) -> Result<AppendInfo, ServerError> {
    let outcome = state.catalog.append_csv_bytes(name, body)?;
    let updated = state.registry.absorb_append(&outcome.entry);
    let merged = updated.iter().filter(|(_, m)| *m).count();
    state.logger.info(
        "dataset_appended",
        &[
            ("dataset", crate::log::s(&outcome.entry.name)),
            ("appended_rows", crate::log::n(outcome.appended)),
            ("total_rows", crate::log::n(outcome.total_rows)),
            ("sessions_updated", crate::log::n(updated.len() as u64)),
        ],
    );
    Ok(AppendInfo {
        dataset: outcome.entry.name.clone(),
        appended: outcome.appended,
        total_rows: outcome.total_rows,
        checksum: outcome.entry.checksum.clone(),
        sessions_updated: updated.len(),
        sessions_merged: merged,
    })
}

fn summary_of(state: &AppState, name: &str) -> Result<DatasetSummary, ServerError> {
    state
        .catalog
        .list()
        .into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| ServerError::Internal(format!("dataset {name} vanished after import")))
}

/// `GET /datasets` — every dataset the catalog knows, sorted by name.
#[must_use]
pub fn list_datasets(state: &AppState) -> Vec<DatasetSummary> {
    state.catalog.list()
}

/// `GET /datasets/:name` — schema, row count, resident bytes, and
/// per-column cardinality (loads the table if it is not cached).
///
/// # Errors
///
/// Unknown dataset or storage failure.
pub fn get_dataset(state: &AppState, name: &str) -> Result<DatasetDetail, ServerError> {
    Ok(state.catalog.describe(name)?)
}

/// `DELETE /datasets/:name` — drop the dataset from cache and disk.
/// Refuses (409) while any session still holds the table.
///
/// # Errors
///
/// Unknown dataset, live references, or storage failure.
pub fn delete_dataset(state: &AppState, name: &str) -> Result<(), ServerError> {
    state.catalog.delete(name)?;
    state
        .logger
        .info("dataset_deleted", &[("dataset", crate::log::s(name))]);
    Ok(())
}

/// `GET /healthz` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Health {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Seconds since startup.
    pub uptime_secs: u64,
    /// Live session count (after the TTL sweep).
    pub sessions: usize,
    /// Sessions evicted by this probe's TTL sweep.
    pub evicted: Vec<String>,
    /// The I/O path serving requests (`"blocking"` / `"event"` /
    /// `"embedded"`).
    pub io: String,
    /// Whether per-request tracing is on.
    pub tracing: bool,
    /// This shard's index among the process's local shards.
    pub shard_id: usize,
    /// Local shards in this process (`1` = unsharded).
    pub shard_count: usize,
    /// Per-endpoint request counts and latency percentiles (quantiles from
    /// the bucketed histograms behind `GET /metrics`).
    pub endpoints: Vec<EndpointReport>,
}

/// `GET /healthz` — liveness plus metrics; opportunistically sweeps
/// TTL-expired sessions.
///
/// # Errors
///
/// Eviction persistence failure.
pub fn healthz(state: &AppState) -> Result<Health, ServerError> {
    let evicted = state.registry.sweep_expired()?;
    Ok(Health {
        status: "ok".to_owned(),
        uptime_secs: state.started.elapsed().as_secs(),
        sessions: state.registry.len(),
        evicted,
        io: state.runtime.io.clone(),
        tracing: state.runtime.tracing,
        shard_id: state.runtime.shard_id,
        shard_count: state.runtime.shard_count,
        endpoints: state.metrics.report(),
    })
}

/// `GET /metrics` — the whole process state in Prometheus text exposition
/// format (version 0.0.4).
#[must_use]
pub fn metrics_text(state: &AppState) -> String {
    metrics_text_with_sessions(state, state.registry.len())
}

/// [`metrics_text`] with an explicit active-session count — the shard
/// router passes the sum over every local shard so the
/// `viewseeker_active_sessions` gauge stays process-wide.
#[must_use]
pub fn metrics_text_with_sessions(state: &AppState, active_sessions: usize) -> String {
    crate::prometheus::render(
        state.started.elapsed().as_secs_f64(),
        active_sessions,
        state.metrics.counters(),
        &state.metrics.histograms(),
        &state.metrics.stage_histograms(),
        &state.catalog.stats(),
        &state.net,
        &state.cluster,
    )
}

/// `GET /debug/traces?format=chrome|folded&n=N` — the tail-sampled slow/
/// errored/shed request traces, as Chrome trace-event JSON (Perfetto- and
/// `chrome://tracing`-loadable, the default) or folded flamegraph stacks.
/// `n` limits to the N slowest (0 = everything retained).
///
/// # Errors
///
/// Unknown `format` value.
pub fn debug_traces(
    state: &AppState,
    format: &str,
    limit: usize,
) -> Result<crate::http::Response, ServerError> {
    let mut kept = state.traces.snapshot();
    if limit > 0 {
        kept.truncate(limit);
    }
    match format {
        "chrome" => Ok(crate::http::Response::json(
            viewseeker_net::trace::chrome_trace_json(&kept),
        )),
        "folded" => Ok(crate::http::Response::text(
            viewseeker_net::trace::folded_stacks(&kept),
        )),
        other => Err(ServerError::BadRequest(format!(
            "unknown trace format {other:?} (chrome|folded)"
        ))),
    }
}

/// Convenience constructor used by the CLI and tests.
#[must_use]
pub fn shared_state(registry: SessionRegistry) -> Arc<AppState> {
    Arc::new(AppState::new(registry))
}

/// [`shared_state`] with an explicit logger, for [`crate::serve_app`].
#[must_use]
pub fn shared_state_with_logger(registry: SessionRegistry, logger: Arc<Logger>) -> Arc<AppState> {
    Arc::new(AppState::with_logger(registry, logger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn state() -> AppState {
        AppState::new(SessionRegistry::new(4, Duration::from_secs(600), None))
    }

    fn make_session(state: &AppState) -> String {
        create_session(
            state,
            r#"{"dataset": "diab", "rows": 800, "seed": 5, "query": "a0 = 'a0_v0'"}"#,
        )
        .unwrap()
        .id
    }

    #[test]
    fn full_loop_over_the_api_layer() {
        let state = state();
        let id = make_session(&state);
        assert_eq!(get_session(&state, &id).unwrap().labels, 0);

        // recommend before any feedback is a 409, not a 500
        let err = recommend(&state, &id, 5, None).unwrap_err();
        assert_eq!(err.status(), 409);

        for score in [0.9, 0.1, 0.7, 0.4] {
            let next = next_views(&state, &id, 1).unwrap();
            assert_eq!(next.len(), 1);
            assert!(next[0].sql.contains("GROUP BY"));
            let body = format!("{{\"view\": {}, \"score\": {score}}}", next[0].id);
            feedback(&state, &id, &body).unwrap();
        }
        let info = get_session(&state, &id).unwrap();
        assert_eq!(info.labels, 4);

        let top = recommend(&state, &id, 5, None).unwrap();
        assert_eq!(top.len(), 5);
        assert!(top[0].score.unwrap() >= top[4].score.unwrap());
        let diverse = recommend(&state, &id, 5, Some(0.5)).unwrap();
        assert_eq!(diverse.len(), 5);

        let persisted = snapshot(&state, &id).unwrap();
        assert_eq!(persisted.snapshot.labels.len(), 4);
        delete_session(&state, &id).unwrap();
        let restored = restore(&state, None, &serde_json::to_string(&persisted).unwrap()).unwrap();
        assert_eq!(restored.id, id);
        assert_eq!(restored.labels, 4);
    }

    #[test]
    fn bad_bodies_are_400s() {
        let state = state();
        assert_eq!(create_session(&state, "{").unwrap_err().status(), 400);
        assert_eq!(
            create_session(&state, r#"{"dataset": "nope"}"#)
                .unwrap_err()
                .status(),
            400
        );
        let id = make_session(&state);
        assert_eq!(feedback(&state, &id, "nope").unwrap_err().status(), 400);
        assert_eq!(
            feedback(&state, &id, r#"{"view": 0, "score": 7.5}"#)
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            feedback(&state, "ghost", r#"{"view": 0, "score": 0.5}"#)
                .unwrap_err()
                .status(),
            404
        );
    }

    #[test]
    fn session_info_exposes_convergence_cost_and_counters_move() {
        let state = state();
        let id = make_session(&state);
        assert_eq!(
            Counters::read(&state.metrics.counters().sessions_created),
            1
        );

        for score in [0.9, 0.1, 0.8] {
            let next = next_views(&state, &id, 1).unwrap();
            let body = format!("{{\"view\": {}, \"score\": {score}}}", next[0].id);
            feedback(&state, &id, &body).unwrap();
        }
        let info = get_session(&state, &id).unwrap();
        assert_eq!(info.iterations, 3);
        assert_eq!(info.labels, 3);
        // Default spec has alpha = 1.0: no refinement work to account.
        assert_eq!(info.refinement_time_us, 0);
        let fit = info
            .phase_totals
            .iter()
            .find(|p| p.phase == "estimator_fit")
            .unwrap();
        assert!(fit.count >= 3, "{fit:?}");
        assert_eq!(Counters::read(&state.metrics.counters().feedback_labels), 3);

        let text = metrics_text(&state);
        assert!(
            text.contains("viewseeker_feedback_labels_total 3"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_sessions_created_total 1"),
            "{text}"
        );
        assert!(text.contains("viewseeker_active_sessions 1"), "{text}");
    }

    #[test]
    fn debug_traces_renders_both_formats_and_rejects_unknown() {
        use viewseeker_net::trace::{Span, TraceSink};

        let state = state();
        state.traces.record(viewseeker_net::RequestTrace {
            id: "slow-1".into(),
            method: "GET".into(),
            path: "/sessions/s1/next".into(),
            route: "GET /sessions/:id/next",
            status: 200,
            shed: false,
            started: Instant::now(),
            total_us: 900,
            spans: vec![Span {
                name: "handler",
                start_us: 0,
                dur_us: 880,
                parent: None,
            }],
        });
        let chrome = debug_traces(&state, "chrome", 0).unwrap();
        assert_eq!(chrome.status, 200);
        assert!(chrome.body.contains("\"traceEvents\""), "{}", chrome.body);
        assert!(
            chrome.body.contains("\"request_id\":\"slow-1\""),
            "{}",
            chrome.body
        );
        let folded = debug_traces(&state, "folded", 0).unwrap();
        assert!(
            folded.body.contains("GET /sessions/:id/next;handler 880"),
            "{}",
            folded.body
        );
        assert_eq!(folded.content_type, "text/plain; charset=utf-8");
        assert_eq!(debug_traces(&state, "svg", 0).unwrap_err().status(), 400);
    }

    #[test]
    fn healthz_reports_metrics_and_sessions() {
        let state = state();
        let _id = make_session(&state);
        state
            .metrics
            .record("GET /healthz", Duration::from_micros(50));
        let health = healthz(&state).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.sessions, 1);
        assert_eq!(health.endpoints.len(), 1);
        assert_eq!(health.endpoints[0].count, 1);
    }
}
