//! Method + path dispatch with per-endpoint timing.
//!
//! Routes (session-scoped paths normalize the id segment to `:id` for
//! metrics, so a thousand sessions share one counter per endpoint):
//!
//! ```text
//! GET    /healthz
//! POST   /sessions                       body: SessionSpec
//! GET    /sessions
//! POST   /sessions/restore               body: PersistedSession
//! GET    /sessions/:id
//! DELETE /sessions/:id
//! GET    /sessions/:id/next?m=1
//! POST   /sessions/:id/feedback          body: {"view": n, "score": x}
//! GET    /sessions/:id/recommend?k=5[&lambda=0.5]
//! POST   /sessions/:id/snapshot
//! POST   /sessions/:id/restore
//! POST   /datasets/:name                 body: raw CSV
//! POST   /datasets/:name/rows            body: raw CSV (same schema)
//! GET    /datasets
//! GET    /datasets/:name
//! DELETE /datasets/:name
//! GET    /debug/traces?format=chrome|folded&n=N
//! ```

use std::sync::Arc;
use std::time::Duration;

use viewseeker_core::trace::Stopwatch;

use serde::{Serialize, Value};

use crate::api::{self, AppState};
use crate::error::ServerError;
use crate::http::{Handler, Request, Response};
use crate::log::{n, s, LogLevel};

/// The service's request dispatcher.
pub struct Router {
    state: Arc<AppState>,
}

impl Router {
    /// Wraps shared state for serving.
    #[must_use]
    pub fn new(state: Arc<AppState>) -> Self {
        Self { state }
    }

    /// The shared state (tests reach through this).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    fn dispatch(&self, request: &Request) -> (&'static str, Result<Response, ServerError>) {
        let state = self.state.as_ref();
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();

        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => ("GET /healthz", api::healthz(state).map(ok)),
            ("GET", ["metrics"]) => (
                "GET /metrics",
                Ok(Response::prometheus(api::metrics_text(state))),
            ),
            ("POST", ["sessions"]) => (
                "POST /sessions",
                request
                    .body_text()
                    .map_err(ServerError::from)
                    .and_then(|b| api::create_session(state, b))
                    .map(created),
            ),
            ("GET", ["sessions"]) => ("GET /sessions", Ok(ok(api::list_sessions(state)))),
            ("POST", ["sessions", "restore"]) => (
                "POST /sessions/restore",
                request
                    .body_text()
                    .map_err(ServerError::from)
                    .and_then(|b| api::restore(state, None, b))
                    .map(created),
            ),
            ("GET", ["sessions", id]) => ("GET /sessions/:id", api::get_session(state, id).map(ok)),
            ("DELETE", ["sessions", id]) => (
                "DELETE /sessions/:id",
                api::delete_session(state, id)
                    .map(|()| Response::json("{\"deleted\": true}".to_owned())),
            ),
            ("GET", ["sessions", id, "next"]) => (
                "GET /sessions/:id/next",
                request
                    .parsed_param("m", 1usize)
                    .map_err(ServerError::from)
                    .and_then(|m| api::next_views(state, id, m))
                    .map(ok),
            ),
            ("POST", ["sessions", id, "feedback"]) => (
                "POST /sessions/:id/feedback",
                request
                    .body_text()
                    .map_err(ServerError::from)
                    .and_then(|b| api::feedback(state, id, b))
                    .map(ok),
            ),
            ("GET", ["sessions", id, "recommend"]) => (
                "GET /sessions/:id/recommend",
                (|| {
                    let k = request.parsed_param("k", 5usize)?;
                    let lambda = match request.query_param("lambda") {
                        None => None,
                        Some(_) => Some(request.parsed_param("lambda", 0.5f64)?),
                    };
                    api::recommend(state, id, k, lambda)
                })()
                .map(ok),
            ),
            ("POST", ["sessions", id, "snapshot"]) => (
                "POST /sessions/:id/snapshot",
                api::snapshot(state, id).map(ok),
            ),
            ("POST", ["sessions", id, "restore"]) => (
                "POST /sessions/:id/restore",
                api::restore(state, Some(id), "").map(created),
            ),
            ("POST", ["datasets", name]) => (
                "POST /datasets/:name",
                api::upload_dataset(state, name, &request.body).map(created),
            ),
            ("POST", ["datasets", name, "rows"]) => (
                "POST /datasets/:name/rows",
                api::append_dataset(state, name, &request.body).map(ok),
            ),
            ("GET", ["datasets"]) => ("GET /datasets", Ok(ok(api::list_datasets(state)))),
            ("GET", ["datasets", name]) => {
                ("GET /datasets/:name", api::get_dataset(state, name).map(ok))
            }
            ("DELETE", ["datasets", name]) => (
                "DELETE /datasets/:name",
                api::delete_dataset(state, name)
                    .map(|()| Response::json("{\"deleted\": true}".to_owned())),
            ),
            ("GET", ["debug", "traces"]) => (
                "GET /debug/traces",
                (|| {
                    let limit = request.parsed_param("n", 0usize)?;
                    let format = request.query_param("format").unwrap_or("chrome");
                    api::debug_traces(state, format, limit)
                })(),
            ),
            _ => (
                "unmatched",
                Err(ServerError::NotFound(format!(
                    "no route for {method} {}",
                    request.path
                ))),
            ),
        }
    }
}

fn render<T: Serialize>(status: u16, payload: &T) -> Response {
    let started = Stopwatch::start();
    let body = serde_json::to_string(payload);
    crate::trace::record_serialize(started.elapsed());
    match body {
        Ok(body) => Response::with_status(status, body),
        Err(e) => Response::with_status(
            500,
            format!("{{\"error\": {:?}}}", format!("serialization: {e}")),
        ),
    }
}

fn ok<T: Serialize>(payload: T) -> Response {
    render(200, &payload)
}

fn created<T: Serialize>(payload: T) -> Response {
    render(201, &payload)
}

impl Router {
    /// The structured access line: one per request, with the session id and
    /// the session's cumulative trace-phase totals when the route is
    /// session-scoped (read via a non-LRU-touching peek, so logging never
    /// keeps an idle session alive). The `request_id` field is appended by
    /// the logger from the active [`TraceScope`]; `stages_us` carries the
    /// per-stage breakdown recorded up to this point (the trailing `write`
    /// stage has not happened yet — `/debug/traces` has the complete tree).
    fn log_request(
        &self,
        request: &Request,
        route: &str,
        status: u16,
        elapsed: Duration,
        trace: &viewseeker_net::ActiveTrace,
    ) {
        let logger = &self.state.logger;
        let level = if status >= 500 {
            LogLevel::Warn
        } else {
            LogLevel::Info
        };
        if !logger.enabled(level) {
            return;
        }
        let mut fields = vec![
            ("method", s(&request.method)),
            ("path", s(&request.path)),
            ("route", s(route)),
            ("status", n(status.into())),
            (
                "duration_us",
                n(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)),
            ),
        ];
        let stages = trace.stages_us();
        if !stages.is_empty() {
            fields.push((
                "stages_us",
                Value::Object(
                    stages
                        .into_iter()
                        .map(|(name, dur)| (name.to_owned(), n(dur)))
                        .collect(),
                ),
            ));
        }
        let segments: Vec<&str> = request.path.split('/').filter(|p| !p.is_empty()).collect();
        if let ["sessions", id, ..] = segments.as_slice() {
            if *id != "restore" {
                fields.push(("session", s(id)));
                if let Some(entry) = self.state.registry.peek(id) {
                    let totals: Vec<(String, Value)> = entry
                        .recorder
                        .phase_totals()
                        .into_iter()
                        .filter(|(_, total)| total.count > 0)
                        .map(|(phase, total)| (phase.name().to_owned(), n(total.total_us)))
                        .collect();
                    fields.push(("phase_totals_us", Value::Object(totals)));
                }
            }
        }
        logger.log(level, "request", &fields);
    }
}

impl Handler for Router {
    fn handle(&self, request: &Request) -> Response {
        // Callers without a reactor-started trace (tests, embedding code)
        // still get a span tree and a request id — just one that was born
        // at dispatch rather than at the first byte.
        let trace = viewseeker_net::ActiveTrace::detached(&request.method, &request.path);
        self.handle_traced(request, &trace)
    }

    fn handle_traced(&self, request: &Request, trace: &viewseeker_net::ActiveTrace) -> Response {
        let _scope = crate::trace::enter(trace);
        let start = Stopwatch::start();
        let (route, result) = self.dispatch(request);
        let response = result.unwrap_or_else(|e| {
            Response::with_status(e.status(), format!("{{\"error\": {:?}}}", e.message()))
        });
        let elapsed = start.elapsed();
        trace.set_route(route);
        trace.set_status(response.status);
        self.state.metrics.record(route, elapsed);
        self.log_request(request, route, response.status, elapsed, trace);
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SessionRegistry;
    use std::time::Duration;

    fn router() -> Router {
        Router::new(api::shared_state(SessionRegistry::new(
            4,
            Duration::from_secs(600),
            None,
        )))
    }

    fn req(method: &str, path_and_query: &str, body: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (
                p.to_owned(),
                q.split('&')
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                        (k.to_owned(), v.to_owned())
                    })
                    .collect(),
            ),
            None => (path_and_query.to_owned(), Vec::new()),
        };
        Request {
            method: method.to_owned(),
            path,
            query,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn routes_full_loop_and_records_metrics() {
        let r = router();
        let reply = r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5, "query": "a0 = 'a0_v0'"}"#,
        ));
        assert_eq!(reply.status, 201, "{}", reply.body);
        assert!(reply.body.contains("\"id\":\"s1\""), "{}", reply.body);

        let reply = r.handle(&req("GET", "/sessions/s1/next?m=2", ""));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req(
            "POST",
            "/sessions/s1/feedback",
            r#"{"view": 0, "score": 0.8}"#,
        ));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req("GET", "/sessions/s1/recommend?k=3", ""));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req("GET", "/healthz", ""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("POST /sessions"), "{}", reply.body);
        assert!(reply.body.contains("p99_us"), "{}", reply.body);

        let reply = r.handle(&req("GET", "/nope", ""));
        assert_eq!(reply.status, 404);
        let reply = r.handle(&req("PATCH", "/sessions", ""));
        assert_eq!(reply.status, 404);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let r = router();
        r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5, "query": "a0 = 'a0_v0'"}"#,
        ));
        let reply = r.handle(&req("GET", "/metrics", ""));
        assert_eq!(reply.status, 200);
        assert_eq!(
            reply.content_type,
            "text/plain; version=0.0.4; charset=utf-8"
        );
        assert!(
            reply
                .body
                .contains("# TYPE viewseeker_requests_total counter"),
            "{}",
            reply.body
        );
        assert!(
            reply
                .body
                .contains("viewseeker_requests_total{route=\"POST /sessions\"} 1"),
            "{}",
            reply.body
        );
        // The scrape itself was recorded by the next scrape.
        let again = r.handle(&req("GET", "/metrics", ""));
        assert!(
            again
                .body
                .contains("viewseeker_requests_total{route=\"GET /metrics\"} 1"),
            "{}",
            again.body
        );
    }

    #[test]
    fn access_log_emits_one_parseable_json_line_per_request() {
        use crate::log::{LogFormat, Logger};
        use crate::registry::SessionRegistry;
        use std::io::Write;
        use std::sync::Mutex;

        #[derive(Clone, Default)]
        struct Buffer(Arc<Mutex<Vec<u8>>>);
        impl Write for Buffer {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Buffer::default();
        let logger = Arc::new(Logger::to_writer(
            LogFormat::Json,
            LogLevel::Info,
            Box::new(buffer.clone()),
        ));
        let registry = SessionRegistry::new(4, Duration::from_secs(600), None);
        let r = Router::new(Arc::new(AppState::with_logger(registry, logger)));

        r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5, "query": "a0 = 'a0_v0'"}"#,
        ));
        r.handle(&req(
            "POST",
            "/sessions/s1/feedback",
            r#"{"view": 0, "score": 0.8}"#,
        ));
        r.handle(&req("GET", "/sessions/s1", ""));

        let raw = String::from_utf8(buffer.0.lock().unwrap().clone()).unwrap();
        let request_lines: Vec<Value> = raw
            .lines()
            .map(|line| serde_json::parse_value(line).expect(line))
            .filter(|v| v.get("event") == Some(&Value::String("request".into())))
            .collect();
        assert_eq!(request_lines.len(), 3, "{raw}");
        let feedback_line = &request_lines[1];
        assert_eq!(
            feedback_line.get("route"),
            Some(&Value::String("POST /sessions/:id/feedback".into()))
        );
        assert_eq!(
            feedback_line.get("session"),
            Some(&Value::String("s1".into()))
        );
        assert_eq!(feedback_line.get("status"), Some(&n(200)));
        assert!(matches!(
            feedback_line.get("duration_us"),
            Some(Value::Number(_))
        ));
        // Session-scoped lines carry the cumulative trace-phase totals.
        assert!(
            matches!(feedback_line.get("phase_totals_us"), Some(Value::Object(_))),
            "{feedback_line:?}"
        );
        // Lifecycle events from the registry landed in the same stream.
        assert!(raw.contains("\"event\":\"session_created\""), "{raw}");
    }

    #[test]
    fn append_route_grows_dataset_and_updates_live_sessions() {
        let r = router();
        let csv = "city,m_sales\nparis,10.0\nlyon,20.0\nparis,30.0\nlyon,40.0\n";
        let reply = r.handle(&req("POST", "/datasets/tiny", csv));
        assert_eq!(reply.status, 201, "{}", reply.body);

        let reply = r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "tiny", "query": "city = 'paris'"}"#,
        ));
        assert_eq!(reply.status, 201, "{}", reply.body);

        let reply = r.handle(&req(
            "POST",
            "/datasets/tiny/rows",
            "city,m_sales\nparis,50.0\nlyon,60.0\n",
        ));
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(
            reply.body.contains("\"dataset\":\"tiny\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"appended\":2"), "{}", reply.body);
        assert!(reply.body.contains("\"total_rows\":6"), "{}", reply.body);
        assert!(
            reply.body.contains("\"sessions_updated\":1"),
            "{}",
            reply.body
        );

        // The session keeps serving over the grown table.
        let reply = r.handle(&req("GET", "/sessions/s1/next?m=1", ""));
        assert_eq!(reply.status, 200, "{}", reply.body);

        // Schema mismatch is a client error; unknown dataset is 404.
        let reply = r.handle(&req("POST", "/datasets/tiny/rows", "bogus\nx\n"));
        assert_eq!(reply.status, 400, "{}", reply.body);
        let reply = r.handle(&req("POST", "/datasets/ghost/rows", csv));
        assert_eq!(reply.status, 404, "{}", reply.body);
    }

    #[test]
    fn query_parameter_errors_are_400s() {
        let r = router();
        r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5}"#,
        ));
        let reply = r.handle(&req("GET", "/sessions/s1/next?m=many", ""));
        assert_eq!(reply.status, 400, "{}", reply.body);
        let reply = r.handle(&req("GET", "/sessions/s1/recommend?k=0x5", ""));
        assert_eq!(reply.status, 400, "{}", reply.body);
    }
}
