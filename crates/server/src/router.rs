//! Method + path dispatch with per-endpoint timing.
//!
//! Routes (session-scoped paths normalize the id segment to `:id` for
//! metrics, so a thousand sessions share one counter per endpoint):
//!
//! ```text
//! GET    /healthz
//! POST   /sessions                       body: SessionSpec
//! GET    /sessions
//! POST   /sessions/restore               body: PersistedSession
//! GET    /sessions/:id
//! DELETE /sessions/:id
//! GET    /sessions/:id/next?m=1
//! POST   /sessions/:id/feedback          body: {"view": n, "score": x}
//! GET    /sessions/:id/recommend?k=5[&lambda=0.5]
//! POST   /sessions/:id/snapshot
//! POST   /sessions/:id/restore
//! ```

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use crate::api::{self, AppState};
use crate::error::ServerError;
use crate::http::{Handler, Request, Response};

/// The service's request dispatcher.
pub struct Router {
    state: Arc<AppState>,
}

impl Router {
    /// Wraps shared state for serving.
    #[must_use]
    pub fn new(state: Arc<AppState>) -> Self {
        Self { state }
    }

    /// The shared state (tests reach through this).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    fn dispatch(&self, request: &Request) -> (&'static str, Result<Response, ServerError>) {
        let state = self.state.as_ref();
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();

        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => ("GET /healthz", api::healthz(state).map(ok)),
            ("POST", ["sessions"]) => (
                "POST /sessions",
                request
                    .body_text()
                    .and_then(|b| api::create_session(state, b))
                    .map(created),
            ),
            ("GET", ["sessions"]) => ("GET /sessions", Ok(ok(api::list_sessions(state)))),
            ("POST", ["sessions", "restore"]) => (
                "POST /sessions/restore",
                request
                    .body_text()
                    .and_then(|b| api::restore(state, None, b))
                    .map(created),
            ),
            ("GET", ["sessions", id]) => ("GET /sessions/:id", api::get_session(state, id).map(ok)),
            ("DELETE", ["sessions", id]) => (
                "DELETE /sessions/:id",
                api::delete_session(state, id)
                    .map(|()| Response::json("{\"deleted\": true}".to_owned())),
            ),
            ("GET", ["sessions", id, "next"]) => (
                "GET /sessions/:id/next",
                request
                    .parsed_param("m", 1usize)
                    .and_then(|m| api::next_views(state, id, m))
                    .map(ok),
            ),
            ("POST", ["sessions", id, "feedback"]) => (
                "POST /sessions/:id/feedback",
                request
                    .body_text()
                    .and_then(|b| api::feedback(state, id, b))
                    .map(ok),
            ),
            ("GET", ["sessions", id, "recommend"]) => (
                "GET /sessions/:id/recommend",
                (|| {
                    let k = request.parsed_param("k", 5usize)?;
                    let lambda = match request.query_param("lambda") {
                        None => None,
                        Some(_) => Some(request.parsed_param("lambda", 0.5f64)?),
                    };
                    api::recommend(state, id, k, lambda)
                })()
                .map(ok),
            ),
            ("POST", ["sessions", id, "snapshot"]) => (
                "POST /sessions/:id/snapshot",
                api::snapshot(state, id).map(ok),
            ),
            ("POST", ["sessions", id, "restore"]) => (
                "POST /sessions/:id/restore",
                api::restore(state, Some(id), "").map(created),
            ),
            _ => (
                "unmatched",
                Err(ServerError::NotFound(format!(
                    "no route for {method} {}",
                    request.path
                ))),
            ),
        }
    }
}

fn render<T: Serialize>(status: u16, payload: &T) -> Response {
    match serde_json::to_string(payload) {
        Ok(body) => Response::with_status(status, body),
        Err(e) => Response::with_status(
            500,
            format!("{{\"error\": {:?}}}", format!("serialization: {e}")),
        ),
    }
}

fn ok<T: Serialize>(payload: T) -> Response {
    render(200, &payload)
}

fn created<T: Serialize>(payload: T) -> Response {
    render(201, &payload)
}

impl Handler for Router {
    fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let (route, result) = self.dispatch(request);
        let response = result.unwrap_or_else(|e| {
            Response::with_status(e.status(), format!("{{\"error\": {:?}}}", e.message()))
        });
        self.state.metrics.record(route, start.elapsed());
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SessionRegistry;
    use std::time::Duration;

    fn router() -> Router {
        Router::new(api::shared_state(SessionRegistry::new(
            4,
            Duration::from_secs(600),
            None,
        )))
    }

    fn req(method: &str, path_and_query: &str, body: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (
                p.to_owned(),
                q.split('&')
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                        (k.to_owned(), v.to_owned())
                    })
                    .collect(),
            ),
            None => (path_and_query.to_owned(), Vec::new()),
        };
        Request {
            method: method.to_owned(),
            path,
            query,
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn routes_full_loop_and_records_metrics() {
        let r = router();
        let reply = r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5, "query": "a0 = 'a0_v0'"}"#,
        ));
        assert_eq!(reply.status, 201, "{}", reply.body);
        assert!(reply.body.contains("\"id\":\"s1\""), "{}", reply.body);

        let reply = r.handle(&req("GET", "/sessions/s1/next?m=2", ""));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req(
            "POST",
            "/sessions/s1/feedback",
            r#"{"view": 0, "score": 0.8}"#,
        ));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req("GET", "/sessions/s1/recommend?k=3", ""));
        assert_eq!(reply.status, 200, "{}", reply.body);

        let reply = r.handle(&req("GET", "/healthz", ""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("POST /sessions"), "{}", reply.body);
        assert!(reply.body.contains("p99_us"), "{}", reply.body);

        let reply = r.handle(&req("GET", "/nope", ""));
        assert_eq!(reply.status, 404);
        let reply = r.handle(&req("PATCH", "/sessions", ""));
        assert_eq!(reply.status, 404);
    }

    #[test]
    fn query_parameter_errors_are_400s() {
        let r = router();
        r.handle(&req(
            "POST",
            "/sessions",
            r#"{"dataset": "diab", "rows": 800, "seed": 5}"#,
        ));
        let reply = r.handle(&req("GET", "/sessions/s1/next?m=many", ""));
        assert_eq!(reply.status, 400, "{}", reply.body);
        let reply = r.handle(&req("GET", "/sessions/s1/recommend?k=0x5", ""));
        assert_eq!(reply.status, 400, "{}", reply.body);
    }
}
