//! The sharded session tier: a consistent-hash router in front of N
//! [`Router`]s (local shards) and M remote peers speaking the same HTTP
//! protocol.
//!
//! Session ids are placed on a [`HashRing`] whose members are the local
//! shards (`local-0` …) followed by the configured peers (`peer-<addr>`).
//! Because members are keyed by *name*, every process that agrees on the
//! member list computes identical placements with no coordination — a
//! router can sit in front of plain `serve` processes and they will agree
//! on which sessions the router sends them.
//!
//! Three route families exist:
//!
//! * **Intercepted** — `GET /cluster`, `POST /cluster/rebalance`, and (in
//!   sharded mode) the merged `GET /healthz` / `GET /metrics` /
//!   `GET /sessions`, answered here from all shards' state.
//! * **Session-scoped** — routed by the id's ring owner: executed on the
//!   owning shard's worker pool, or forwarded to the owning peer over the
//!   pooled [`Peer`] client. A down peer answers `503 + Retry-After`,
//!   never a connection error.
//! * **Everything else** (datasets, debug, 404s) — delegated inline to
//!   shard 0, whose catalog and trace sampler are shared by all shards.
//!
//! `POST /cluster/rebalance {"shards": M}` shrinks or grows the *active*
//! local shard set (within the count built at startup) and live-migrates
//! misplaced sessions through the existing snapshot→restore→delete path.
//! During the move the router answers session traffic with
//! `503 + Retry-After: 1` — a client that retries never sees an error or
//! a wrong-session answer, and snapshot/restore replay makes the migrated
//! estimator weights bit-identical.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread;
use std::time::Duration;

use crossbeam::channel;
use serde::Serialize;
use viewseeker_cluster::{ClusterStats, HashRing, Peer};
use viewseeker_core::trace::Stopwatch;

use crate::api::{self, AppState};
use crate::error::ServerError;
use crate::http::{Handler, Request, Response};
use crate::registry::{PersistedSession, SessionSpec};
use crate::router::Router;

/// How long a forwarded request may take end to end (connect + write +
/// read) before the peer is declared unreachable for this request.
const FORWARD_TIMEOUT: Duration = Duration::from_secs(30);

/// `Retry-After` seconds for responses shed during rebalance or when the
/// owning peer is down.
const RETRY_AFTER_SECS: u32 = 1;

/// Where a ring member lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Index into the local shard list.
    Local(usize),
    /// Index into the peer list.
    Peer(usize),
}

/// The ring plus the facts needed to translate a member index into a
/// [`Target`]. Swapped atomically on rebalance.
struct RingState {
    ring: HashRing,
    /// Member names in ring order: `local-0..local-{active-1}` then
    /// `peer-<addr>` per peer.
    names: Vec<String>,
    /// Active local shards (`<=` the shard count built at startup).
    active: usize,
}

impl RingState {
    fn build(active: usize, peers: &[Peer]) -> Self {
        let mut names: Vec<String> = (0..active).map(|i| format!("local-{i}")).collect();
        names.extend(peers.iter().map(|p| format!("peer-{}", p.addr())));
        Self {
            ring: HashRing::new(&names),
            names,
            active,
        }
    }

    fn target_for(&self, key: &str) -> (usize, Target) {
        let member = self.ring.shard_for(key);
        let target = if member < self.active {
            Target::Local(member)
        } else {
            Target::Peer(member - self.active)
        };
        (member, target)
    }

    fn members(&self) -> Vec<(String, bool)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i < self.active))
            .collect()
    }
}

/// One shard's worker pool: a fixed thread set draining a channel of
/// owned requests. The pool is the shard's lock domain — every handler
/// that touches the shard's registry runs on these threads, so one
/// shard's slow materialization cannot occupy another shard's workers.
struct ShardPool {
    tx: Option<channel::Sender<Job>>,
    /// Jobs accepted into the channel (monotonic).
    submitted: AtomicU64,
    /// Jobs whose handler completed, paired with a condvar for
    /// [`ShardPool::settle`].
    finished: Arc<(Mutex<u64>, Condvar)>,
    threads: Vec<thread::JoinHandle<()>>,
}

struct Job {
    request: Request,
    reply: channel::Sender<Response>,
}

impl ShardPool {
    fn new(router: Arc<Router>, workers: usize) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let finished = Arc::new((Mutex::new(0u64), Condvar::new()));
        let threads = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let finished = Arc::clone(&finished);
                thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let response = router.handle(&job.request);
                        let (count, signal) = &*finished;
                        {
                            let mut done = count.lock().unwrap_or_else(PoisonError::into_inner);
                            *done += 1;
                            signal.notify_all();
                        }
                        let _ = job.reply.send(response);
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            submitted: AtomicU64::new(0),
            finished,
            threads,
        }
    }

    /// Queues `request` on the shard's pool, returning the channel the
    /// response will arrive on. Splitting submission from the blocking
    /// receive lets the caller submit while holding the ring read lock
    /// (so a rebalance's [`ShardPool::settle`] sees the job) without
    /// holding that lock for the request's whole lifetime.
    fn submit(&self, request: Request) -> Option<channel::Receiver<Response>> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        let tx = self.tx.as_ref()?;
        tx.send(Job {
            request,
            reply: reply_tx,
        })
        .ok()?;
        self.submitted.fetch_add(1, Ordering::SeqCst);
        Some(reply_rx)
    }

    /// Runs `request` on the shard's pool and blocks for the response.
    fn execute(&self, request: Request) -> Response {
        match self.submit(request) {
            Some(reply_rx) => reply_rx
                .recv()
                .unwrap_or_else(|_| Response::unavailable(RETRY_AFTER_SECS)),
            None => Response::unavailable(RETRY_AFTER_SECS),
        }
    }

    /// Blocks until every job submitted before this call has completed.
    /// Jobs submitted afterwards are not waited for, so a busy shard
    /// cannot stall a rebalance indefinitely.
    fn settle(&self) {
        let goal = self.submitted.load(Ordering::SeqCst);
        let (count, signal) = &*self.finished;
        let mut done = count.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < goal {
            let (next, _) = signal
                .wait_timeout(done, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            done = next;
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.tx.take();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// `GET /cluster` response body.
#[derive(Debug, Clone, Serialize)]
struct ClusterStatus {
    members: Vec<MemberStatus>,
    local_shards: usize,
    peers: Vec<String>,
    forwarded: u64,
    forward_errors: u64,
    migrated_ok: u64,
    migrated_err: u64,
    rebalancing: bool,
}

/// One ring member in the `GET /cluster` report.
#[derive(Debug, Clone, Serialize)]
struct MemberStatus {
    name: String,
    local: bool,
    routed: u64,
    sessions: u64,
    /// `false` for a peer whose `/healthz` probe failed just now; always
    /// `true` for local shards.
    up: bool,
}

/// The consistent-hash front door. Implements [`Handler`], so either I/O
/// path serves it exactly like a plain [`Router`].
pub struct ShardRouter {
    shards: Vec<Arc<Router>>,
    pools: Vec<ShardPool>,
    peers: Vec<Peer>,
    state0: Arc<AppState>,
    stats: Arc<ClusterStats>,
    ring: RwLock<RingState>,
    /// Serializes rebalance/drain; session traffic answers 503 while set.
    rebalancing: AtomicBool,
    rebalance_lock: Mutex<()>,
    next_id: AtomicU64,
    /// Single local shard and no peers: delegate everything inline with
    /// full trace fidelity; no pools, no forwarding, no id injection.
    thin: bool,
}

impl ShardRouter {
    /// Builds the router over `shards` (all active initially) and
    /// `peer_addrs`. `workers_per_shard` sizes each shard's pool in
    /// sharded mode.
    ///
    /// # Errors
    ///
    /// `shards` must be non-empty.
    pub fn new(
        shards: Vec<Arc<Router>>,
        peer_addrs: &[String],
        workers_per_shard: usize,
    ) -> Result<Self, ServerError> {
        let state0 = shards
            .first()
            .map(|r| Arc::clone(r.state()))
            .ok_or_else(|| ServerError::Internal("shard router needs >= 1 shard".into()))?;
        let peers: Vec<Peer> = peer_addrs.iter().map(|a| Peer::new(a.clone())).collect();
        let thin = shards.len() == 1 && peers.is_empty();
        let pools = if thin {
            Vec::new()
        } else {
            shards
                .iter()
                .map(|r| ShardPool::new(Arc::clone(r), workers_per_shard))
                .collect()
        };
        let ring = RingState::build(shards.len(), &peers);
        let stats = Arc::clone(&state0.cluster);
        stats.set_members(&ring.members());
        Ok(Self {
            shards,
            pools,
            peers,
            state0,
            stats,
            ring: RwLock::new(ring),
            rebalancing: AtomicBool::new(false),
            rebalance_lock: Mutex::new(()),
            next_id: AtomicU64::new(1),
            thin,
        })
    }

    /// The cluster counters (shared with every shard's [`AppState`]).
    #[must_use]
    pub fn stats(&self) -> &Arc<ClusterStats> {
        &self.stats
    }

    /// The local shard routers, for tests and embedding code.
    #[must_use]
    pub fn shards(&self) -> &[Arc<Router>] {
        &self.shards
    }

    fn ring_read(&self) -> std::sync::RwLockReadGuard<'_, RingState> {
        self.ring.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refreshes the per-local-shard session gauges.
    fn refresh_session_gauges(&self) -> usize {
        let active = self.ring_read().active;
        let mut total = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let n = shard.state().registry.len();
            total += n;
            if i < active {
                self.stats.set_sessions(i, n as u64);
            }
        }
        total
    }

    /// Wraps an intercepted route: times it, records the route histogram,
    /// and stamps the trace (delegated routes get all three from the
    /// inner [`Router`] instead).
    fn observe(
        &self,
        route: &'static str,
        trace: &viewseeker_net::ActiveTrace,
        body: impl FnOnce() -> Response,
    ) -> Response {
        let start = Stopwatch::start();
        let response = body();
        trace.set_route(route);
        trace.set_status(response.status);
        self.state0.metrics.record(route, start.elapsed());
        response
    }

    fn error_response(error: &ServerError) -> Response {
        Response::with_status(
            error.status(),
            format!("{{\"error\": {:?}}}", error.message()),
        )
    }

    // ---- intercepted routes ------------------------------------------

    fn cluster_status(&self) -> Response {
        self.refresh_session_gauges();
        let active = self.ring_read().active;
        let mut members: Vec<MemberStatus> = self
            .stats
            .members_snapshot()
            .into_iter()
            .map(|m| MemberStatus {
                name: m.name,
                local: m.local,
                routed: m.routed,
                sessions: m.sessions,
                up: true,
            })
            .collect();
        // Probe each peer's /healthz for its live session count; a failed
        // probe marks the member down but never fails the status call.
        for (offset, peer) in self.peers.iter().enumerate() {
            let Some(member) = members.get_mut(active + offset) else {
                continue;
            };
            match peer.request("GET", "/healthz", b"", None, Duration::from_secs(2)) {
                Ok(reply) if reply.status == 200 => {
                    let body = String::from_utf8_lossy(&reply.body).into_owned();
                    let sessions = serde_json::parse_value(&body)
                        .ok()
                        .and_then(|v| v.get("sessions").and_then(serde::Value::as_u64));
                    if let Some(n) = sessions {
                        member.sessions = n;
                        self.stats.set_sessions(active + offset, n);
                    }
                }
                _ => member.up = false,
            }
        }
        let status = ClusterStatus {
            members,
            local_shards: active,
            peers: self.peers.iter().map(|p| p.addr().to_owned()).collect(),
            forwarded: ClusterStats::get(&self.stats.forwarded),
            forward_errors: ClusterStats::get(&self.stats.forward_errors),
            migrated_ok: ClusterStats::get(&self.stats.migrated_ok),
            migrated_err: ClusterStats::get(&self.stats.migrated_err),
            rebalancing: self.rebalancing.load(Ordering::SeqCst),
        };
        match serde_json::to_string(&status) {
            Ok(body) => Response::json(body),
            Err(e) => Self::error_response(&ServerError::Internal(format!(
                "serializing cluster status: {e}"
            ))),
        }
    }

    fn merged_healthz(&self) -> Response {
        let mut sessions = 0usize;
        let mut evicted = Vec::new();
        for shard in &self.shards {
            match shard.state().registry.sweep_expired() {
                Ok(ids) => evicted.extend(ids),
                Err(e) => return Self::error_response(&e),
            }
            sessions += shard.state().registry.len();
        }
        let state = self.state0.as_ref();
        let health = api::Health {
            status: "ok".to_owned(),
            uptime_secs: state.started.elapsed().as_secs(),
            sessions,
            evicted,
            io: state.runtime.io.clone(),
            tracing: state.runtime.tracing,
            shard_id: state.runtime.shard_id,
            shard_count: state.runtime.shard_count,
            endpoints: state.metrics.report(),
        };
        match serde_json::to_string(&health) {
            Ok(body) => Response::json(body),
            Err(e) => {
                Self::error_response(&ServerError::Internal(format!("serializing health: {e}")))
            }
        }
    }

    fn merged_metrics(&self) -> Response {
        let total = self.refresh_session_gauges();
        Response::prometheus(api::metrics_text_with_sessions(&self.state0, total))
    }

    fn merged_sessions(&self) -> Response {
        let mut listings = Vec::new();
        for shard in &self.shards {
            listings.extend(api::list_sessions(shard.state()));
        }
        let mut items = match serde_json::to_value(&listings) {
            serde::Value::Array(items) => items,
            other => vec![other],
        };
        // Peers list their own sessions; an unreachable peer's sessions
        // are simply absent from the merged view (GET /cluster marks it
        // down).
        for peer in &self.peers {
            let Ok(reply) = peer.request("GET", "/sessions", b"", None, Duration::from_secs(5))
            else {
                continue;
            };
            if reply.status != 200 {
                continue;
            }
            let body = String::from_utf8_lossy(&reply.body).into_owned();
            if let Ok(serde::Value::Array(remote)) = serde_json::parse_value(&body) {
                items.extend(remote);
            }
        }
        Response::json(serde_json::render_compact(&serde::Value::Array(items)))
    }

    // ---- rebalance and migration -------------------------------------

    fn rebalance(&self, request: &Request) -> Response {
        let body = match request.body_text() {
            Ok(b) => b,
            Err(e) => return Self::error_response(&ServerError::from(e)),
        };
        let shards = serde_json::parse_value(body)
            .ok()
            .and_then(|v| v.get("shards").and_then(serde::Value::as_u64));
        let Some(shards) = shards else {
            return Self::error_response(&ServerError::BadRequest(
                "rebalance body must be {\"shards\": N}".into(),
            ));
        };
        let want = usize::try_from(shards).unwrap_or(usize::MAX);
        if want < 1 || want > self.shards.len() {
            return Self::error_response(&ServerError::BadRequest(format!(
                "shards must be 1..={} (built at startup), got {want}",
                self.shards.len()
            )));
        }
        let _serial = self
            .rebalance_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Flag and swap under the ring write lock: a session request
        // either saw the old ring and already queued its job (it checks
        // the flag and submits under the read lock), or acquires the read
        // lock after this block and sheds. No request can read one ring
        // and execute against the other.
        {
            // vslint::allow(lock-order): rebalance_lock is the outer lock by
            // design — it serializes whole rebalances, and `ring` is only ever
            // taken inside it (or alone, by readers); the order is acyclic.
            let mut ring = self.ring.write().unwrap_or_else(PoisonError::into_inner);
            self.rebalancing.store(true, Ordering::SeqCst);
            *ring = RingState::build(want, &self.peers);
            self.stats.set_members(&ring.members());
        }
        // Wait out every already-queued request so snapshots observe
        // settled sessions.
        for pool in &self.pools {
            pool.settle();
        }
        let (ok, err) = self.migrate_misplaced();
        self.rebalancing.store(false, Ordering::SeqCst);
        self.refresh_session_gauges();
        Response::json(format!(
            "{{\"shards\": {want}, \"migrated\": {ok}, \"errors\": {err}}}"
        ))
    }

    /// Moves every local session whose ring owner is not the shard it
    /// lives on. Returns `(moved, errors)`.
    fn migrate_misplaced(&self) -> (u64, u64) {
        let mut moves: Vec<(String, usize, Target)> = Vec::new();
        {
            let ring = self.ring_read();
            for (i, shard) in self.shards.iter().enumerate() {
                for (id, _, _, _) in shard.state().registry.describe() {
                    let (_, target) = ring.target_for(&id);
                    if target != Target::Local(i) {
                        moves.push((id, i, target));
                    }
                }
            }
        }
        let (mut ok, mut err) = (0u64, 0u64);
        for (id, from, target) in moves {
            match self.migrate_one(&id, from, target) {
                Ok(()) => {
                    ok += 1;
                    self.stats.migrated_ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    err += 1;
                    self.stats.migrated_err.fetch_add(1, Ordering::Relaxed);
                    self.state0.logger.error(
                        "session_migration_failed",
                        &[
                            ("session", crate::log::s(&id)),
                            ("error", crate::log::s(e.message())),
                        ],
                    );
                }
            }
        }
        (ok, err)
    }

    /// Snapshot → restore → delete for one session. Estimators are a pure
    /// function of the replayed labels, so the restored weights are
    /// bit-identical to the source (the registry's restore tests pin
    /// this).
    fn migrate_one(&self, id: &str, from: usize, target: Target) -> Result<(), ServerError> {
        let source = self
            .shards
            .get(from)
            .ok_or_else(|| ServerError::Internal(format!("no shard {from}")))?
            .state();
        let entry = source
            .registry
            .peek(id)
            .ok_or_else(|| ServerError::NotFound(format!("session {id} vanished mid-move")))?;
        let persisted = {
            let seeker = entry.seeker_lock()?;
            PersistedSession {
                id: entry.id.clone(),
                spec: entry.spec.clone(),
                snapshot: viewseeker_core::SessionSnapshot::from_seeker(&seeker),
                dataset_name: Some(entry.dataset_name.clone()),
                dataset_checksum: Some(entry.dataset_checksum()),
            }
        };
        drop(entry);
        match target {
            Target::Local(to) => {
                let destination = self
                    .shards
                    .get(to)
                    .ok_or_else(|| ServerError::Internal(format!("no shard {to}")))?
                    .state();
                destination.registry.restore(&persisted)?;
            }
            Target::Peer(p) => {
                let peer = self
                    .peers
                    .get(p)
                    .ok_or_else(|| ServerError::Internal(format!("no peer {p}")))?;
                let body = serde_json::to_string(&persisted)
                    .map_err(|e| ServerError::Internal(format!("serializing snapshot: {e}")))?;
                let reply = peer
                    .request(
                        "POST",
                        "/sessions/restore",
                        body.as_bytes(),
                        None,
                        FORWARD_TIMEOUT,
                    )
                    .map_err(|e| ServerError::Io(format!("peer {}: {e}", peer.addr())))?;
                if reply.status != 201 {
                    return Err(ServerError::Internal(format!(
                        "peer {} refused session {id}: {} {}",
                        peer.addr(),
                        reply.status,
                        String::from_utf8_lossy(&reply.body)
                    )));
                }
            }
        }
        source.registry.remove(id)
    }

    /// Pushes every local session onto the peer ring — the graceful-
    /// shutdown drain. No-op without peers. Returns `(moved, errors)`.
    pub fn drain_to_peers(&self) -> (u64, u64) {
        if self.peers.is_empty() {
            return (0, 0);
        }
        let _serial = self
            .rebalance_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            // vslint::allow(lock-order): same acyclic rebalance_lock → ring
            // order as `rebalance` above.
            let mut ring = self.ring.write().unwrap_or_else(PoisonError::into_inner);
            self.rebalancing.store(true, Ordering::SeqCst);
            *ring = RingState::build(0, &self.peers);
            self.stats.set_members(&ring.members());
        }
        for pool in &self.pools {
            pool.settle();
        }
        let moved = self.migrate_misplaced();
        self.rebalancing.store(false, Ordering::SeqCst);
        moved
    }

    // ---- session routing ---------------------------------------------

    fn mint_id(&self) -> String {
        format!("cs{}", self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    fn shedding(&self) -> bool {
        self.rebalancing.load(Ordering::SeqCst)
    }

    fn shed(&self, route: &'static str, trace: &viewseeker_net::ActiveTrace) -> Response {
        self.observe(route, trace, || Response::unavailable(RETRY_AFTER_SECS))
    }

    /// Executes `request` on the owning local shard's pool, stamping the
    /// outer trace (the inner router records metrics and the access log
    /// on the pool thread).
    fn dispatch_local(
        &self,
        shard: usize,
        request: Request,
        route: &'static str,
        trace: &viewseeker_net::ActiveTrace,
    ) -> Response {
        let response = match self.pools.get(shard) {
            Some(pool) => pool.execute(request),
            None => match self.shards.get(shard) {
                Some(router) => router.handle(&request),
                None => Self::error_response(&ServerError::Internal(format!("no shard {shard}"))),
            },
        };
        trace.set_route(route);
        trace.set_status(response.status);
        response
    }

    /// Forwards `request` to peer `p`, translating transport failure into
    /// `503 + Retry-After` (the client retries; it never sees a broken
    /// connection because of a dead peer).
    fn forward(
        &self,
        p: usize,
        request: &Request,
        body: &[u8],
        route: &'static str,
        trace: &viewseeker_net::ActiveTrace,
    ) -> Response {
        let Some(peer) = self.peers.get(p) else {
            return self.observe(route, trace, || {
                Self::error_response(&ServerError::Internal(format!("no peer {p}")))
            });
        };
        let start = Stopwatch::start();
        let target = encode_target(&request.path, &request.query);
        let result = peer.request(
            &request.method,
            &target,
            body,
            request.header("x-request-id"),
            FORWARD_TIMEOUT,
        );
        let elapsed = start.elapsed();
        let response = match result {
            Ok(reply) => {
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .record_forward(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
                Response {
                    status: reply.status,
                    body: String::from_utf8_lossy(&reply.body).into_owned(),
                    content_type: "application/json",
                    retry_after: reply.retry_after,
                    request_id: None,
                }
            }
            Err(e) => {
                self.stats.forward_errors.fetch_add(1, Ordering::Relaxed);
                self.state0.logger.warn(
                    "peer_forward_failed",
                    &[
                        ("peer", crate::log::s(peer.addr())),
                        ("error", crate::log::s(&e.to_string())),
                    ],
                );
                Response::unavailable(RETRY_AFTER_SECS)
            }
        };
        trace.set_route(route);
        trace.set_status(response.status);
        response
    }

    /// Routes a request owning session id `key` to its ring member. The
    /// rebalance-shed check, the ring lookup, and (for local targets) the
    /// pool submission all happen under one ring read guard: a request
    /// either queues against the ring it read — and a rebalance's
    /// `settle()` waits it out before migrating — or it observes the
    /// rebalance flag and sheds. It can never read one ring and execute
    /// against another.
    fn route_by_id(
        &self,
        key: &str,
        request: Request,
        route: &'static str,
        trace: &viewseeker_net::ActiveTrace,
    ) -> Response {
        enum Dispatch {
            /// Queued on a local pool; block for the reply without the lock.
            Queued(channel::Receiver<Response>),
            /// Answered inline (no pool for the shard — the fallback path).
            Done(Response),
            /// Owned by a peer; forward without the lock (blocking I/O).
            Forward(usize, Request),
        }
        let dispatch = {
            let ring = self.ring_read();
            if self.shedding() {
                return self.shed(route, trace);
            }
            let (member, target) = ring.target_for(key);
            self.stats.bump_routed(member);
            match target {
                Target::Local(shard) => match self.pools.get(shard) {
                    Some(pool) => match pool.submit(request) {
                        Some(reply_rx) => Dispatch::Queued(reply_rx),
                        None => Dispatch::Done(Response::unavailable(RETRY_AFTER_SECS)),
                    },
                    None => Dispatch::Done(match self.shards.get(shard) {
                        Some(router) => router.handle(&request),
                        None => Self::error_response(&ServerError::Internal(format!(
                            "no shard {shard}"
                        ))),
                    }),
                },
                Target::Peer(p) => Dispatch::Forward(p, request),
            }
        };
        match dispatch {
            Dispatch::Queued(reply_rx) => {
                let response = reply_rx
                    .recv()
                    .unwrap_or_else(|_| Response::unavailable(RETRY_AFTER_SECS));
                trace.set_route(route);
                trace.set_status(response.status);
                response
            }
            Dispatch::Done(response) => {
                trace.set_route(route);
                trace.set_status(response.status);
                response
            }
            Dispatch::Forward(p, request) => {
                let body = request.body.clone();
                self.forward(p, &request, &body, route, trace)
            }
        }
    }

    /// `POST /sessions`: mint an id (honoring one the client set), inject
    /// it into the spec, and route by it — so the session is born on its
    /// ring owner and every later request for the id lands there.
    fn route_create(&self, request: &Request, trace: &viewseeker_net::ActiveTrace) -> Response {
        const ROUTE: &str = "POST /sessions";
        if self.shedding() {
            return self.shed(ROUTE, trace);
        }
        let spec: Option<SessionSpec> = request
            .body_text()
            .ok()
            .and_then(|b| serde_json::from_str(b).ok());
        let Some(mut spec) = spec else {
            // Unparseable spec: let shard 0 produce the canonical 400.
            return self.dispatch_local(0, request.clone(), ROUTE, trace);
        };
        let id = spec.id.clone().unwrap_or_else(|| self.mint_id());
        spec.id = Some(id.clone());
        let Ok(body) = serde_json::to_string(&spec) else {
            return self.dispatch_local(0, request.clone(), ROUTE, trace);
        };
        let mut rewritten = request.clone();
        rewritten.body = body.into_bytes();
        self.route_by_id(&id, rewritten, ROUTE, trace)
    }

    /// `POST /sessions/restore`: route by the persisted id so the session
    /// revives on its ring owner.
    fn route_restore(&self, request: &Request, trace: &viewseeker_net::ActiveTrace) -> Response {
        const ROUTE: &str = "POST /sessions/restore";
        if self.shedding() {
            return self.shed(ROUTE, trace);
        }
        let id = request
            .body_text()
            .ok()
            .and_then(|b| serde_json::parse_value(b).ok())
            .and_then(|v| {
                v.get("id")
                    .and_then(serde::Value::as_str)
                    .map(str::to_owned)
            });
        let Some(id) = id else {
            return self.dispatch_local(0, request.clone(), ROUTE, trace);
        };
        self.route_by_id(&id, request.clone(), ROUTE, trace)
    }
}

/// The metrics label for a session-scoped route, mirroring
/// [`Router`]'s labels (the id segment normalizes to `:id`).
fn session_route_label(method: &str, tail: &[&str]) -> &'static str {
    match (method, tail) {
        ("GET", []) => "GET /sessions/:id",
        ("DELETE", []) => "DELETE /sessions/:id",
        ("GET", ["next"]) => "GET /sessions/:id/next",
        ("POST", ["feedback"]) => "POST /sessions/:id/feedback",
        ("GET", ["recommend"]) => "GET /sessions/:id/recommend",
        ("POST", ["snapshot"]) => "POST /sessions/:id/snapshot",
        ("POST", ["restore"]) => "POST /sessions/:id/restore",
        _ => "unmatched",
    }
}

/// Percent-encodes one path segment or query component (the parser
/// decoded them; the forwarded wire form must round-trip).
fn encode_component(out: &mut String, raw: &str) {
    for byte in raw.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(char::from(byte));
            }
            other => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("%{other:02X}"));
            }
        }
    }
}

/// Rebuilds the request target (`/path?k=v`) from the decoded path and
/// query pairs.
fn encode_target(path: &str, query: &[(String, String)]) -> String {
    let mut out = String::with_capacity(path.len() + 16);
    for segment in path.split('/') {
        if segment.is_empty() {
            continue;
        }
        out.push('/');
        encode_component(&mut out, segment);
    }
    if out.is_empty() {
        out.push('/');
    }
    for (i, (key, value)) in query.iter().enumerate() {
        out.push(if i == 0 { '?' } else { '&' });
        encode_component(&mut out, key);
        out.push('=');
        encode_component(&mut out, value);
    }
    out
}

impl Handler for ShardRouter {
    fn handle(&self, request: &Request) -> Response {
        let trace = viewseeker_net::ActiveTrace::detached(&request.method, &request.path);
        self.handle_traced(request, &trace)
    }

    fn handle_traced(&self, request: &Request, trace: &viewseeker_net::ActiveTrace) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match (method, segments.as_slice()) {
            ("GET", ["cluster"]) => self.observe("GET /cluster", trace, || self.cluster_status()),
            ("POST", ["cluster", "rebalance"]) => {
                self.observe("POST /cluster/rebalance", trace, || self.rebalance(request))
            }
            _ if self.thin => {
                if let (_, ["sessions", ..]) = (method, segments.as_slice()) {
                    self.stats.bump_routed(0);
                }
                if let ("GET", ["metrics"]) = (method, segments.as_slice()) {
                    self.refresh_session_gauges();
                }
                match self.shards.first() {
                    Some(router) => router.handle_traced(request, trace),
                    None => Self::error_response(&ServerError::Internal("no shards".into())),
                }
            }
            ("GET", ["healthz"]) => self.observe("GET /healthz", trace, || self.merged_healthz()),
            ("GET", ["metrics"]) => self.observe("GET /metrics", trace, || self.merged_metrics()),
            ("GET", ["sessions"]) => {
                self.observe("GET /sessions", trace, || self.merged_sessions())
            }
            ("POST", ["sessions"]) => self.route_create(request, trace),
            ("POST", ["sessions", "restore"]) => self.route_restore(request, trace),
            (_, ["sessions", id, tail @ ..]) => {
                let route = session_route_label(method, tail);
                if self.shedding() {
                    return self.shed(route, trace);
                }
                let key = (*id).to_owned();
                self.route_by_id(&key, request.clone(), route, trace)
            }
            // Datasets, debug, and unmatched paths: shard 0 shares the
            // catalog and trace sampler with every local shard, so it
            // answers for the whole process.
            _ => match self.shards.first() {
                Some(router) => router.handle_traced(request, trace),
                None => Self::error_response(&ServerError::Internal("no shards".into())),
            },
        }
    }
}
