//! Process-wide observability state: per-route latency histograms plus the
//! lifecycle counters and gauges scraped by `GET /metrics` and summarized
//! by `/healthz`.
//!
//! Latencies go into fixed-layout log-linear histograms
//! ([`crate::hist::Histogram`]) — bounded memory per route, mergeable
//! across scrapes, and quantiles within 12.5% of exact — replacing the old
//! 2,048-sample ring whose percentiles degraded under bursty traffic and
//! whose samples could not be aggregated without a sort.
//!
//! Every lock acquisition recovers from poisoning: a panicking handler
//! thread must not take `/healthz` and `/metrics` down with it (the worst
//! case is one lost observation from the panicking thread).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use serde::Serialize;

use crate::hist::Histogram;

/// Monotonic lifecycle counters and gauges, shared between the registry
/// (which increments them), the HTTP layer (queue depth), and the exporters
/// (which read them). All relaxed atomics — these are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Sessions created via `POST /sessions`.
    pub sessions_created: AtomicU64,
    /// Sessions evicted (LRU capacity or TTL sweep).
    pub sessions_evicted: AtomicU64,
    /// Snapshots successfully written to disk.
    pub snapshots_ok: AtomicU64,
    /// Snapshot attempts that failed.
    pub snapshots_failed: AtomicU64,
    /// Sessions successfully restored (from a request body or disk).
    pub restores_ok: AtomicU64,
    /// Restore attempts that failed.
    pub restores_failed: AtomicU64,
    /// Feedback labels ingested across all sessions.
    pub feedback_labels: AtomicU64,
    /// Logical scans issued by offline view materialization, summed over
    /// every session built (created or restored). The fused executor makes
    /// this grow by 1–2 per session; naive grows it by ~3·|views|.
    pub materialize_scans: AtomicU64,
    /// Rows read by offline view materialization, summed over sessions.
    pub materialize_rows: AtomicU64,
    /// Wall-clock microseconds spent in offline view materialization,
    /// summed over sessions.
    pub materialize_us: AtomicU64,
    /// Row groups visited while evaluating session `DQ` predicates through
    /// zone maps, summed over session builds and append absorptions.
    pub rowgroups_scanned: AtomicU64,
    /// Row groups the zone maps excluded from those evaluations without
    /// reading a value.
    pub rowgroups_pruned: AtomicU64,
    /// Gauge: connections accepted but not yet picked up by a worker.
    queue_depth: Arc<AtomicU64>,
}

impl Counters {
    /// Relaxed-increments `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed-increments `counter` by `n` (for quantities like scan and
    /// row totals that grow by more than one per event).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read of `counter`.
    #[must_use]
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// The shared worker-queue-depth gauge, for handing to the HTTP accept
    /// loop (which increments it per queued connection; workers decrement).
    #[must_use]
    pub fn queue_depth_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.queue_depth)
    }

    /// Current worker-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }
}

/// A point-in-time summary of one endpoint, as reported by `/healthz`.
/// Percentiles come from the route's bucketed histogram (within one bucket
/// width — ≤ 12.5% — of exact); `count` and `max_us` are exact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EndpointReport {
    /// Normalized route label, e.g. `"GET /sessions/:id/next"`.
    pub route: String,
    /// Total requests handled since startup.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum latency since startup, microseconds.
    pub max_us: u64,
}

/// Thread-safe request metrics keyed by normalized route, plus the shared
/// process counters.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<HashMap<&'static str, Histogram>>,
    /// Per-`(route, stage)` pipeline-stage latencies, fed by the trace
    /// sink behind `viewseeker_request_stage_seconds`.
    stages: Mutex<HashMap<(&'static str, &'static str), Histogram>>,
    counters: Arc<Counters>,
}

impl Metrics {
    /// Creates an empty metrics table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared lifecycle counters.
    #[must_use]
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, Histogram>> {
        // Recover from poison: a handler panic must not break /healthz.
        self.endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one request against `route`.
    pub fn record(&self, route: &'static str, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.lock().entry(route).or_default().record(us);
    }

    /// Summarizes every endpoint seen so far, sorted by route label.
    #[must_use]
    pub fn report(&self) -> Vec<EndpointReport> {
        let endpoints = self.lock();
        let mut out: Vec<EndpointReport> = endpoints
            .iter()
            .map(|(route, hist)| EndpointReport {
                route: (*route).to_owned(),
                count: hist.count(),
                p50_us: hist.quantile(0.50),
                p90_us: hist.quantile(0.90),
                p99_us: hist.quantile(0.99),
                max_us: hist.max_us(),
            })
            .collect();
        out.sort_by(|a, b| a.route.cmp(&b.route));
        out
    }

    /// A snapshot of every route's histogram, sorted by route label, for
    /// the Prometheus exporter.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let endpoints = self.lock();
        let mut out: Vec<(String, Histogram)> = endpoints
            .iter()
            .map(|(route, hist)| ((*route).to_owned(), hist.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn stages_lock(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<(&'static str, &'static str), Histogram>> {
        self.stages.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one pipeline-stage duration against `(route, stage)`.
    /// Both labels come from static registries (route table, `SPANS`,
    /// `TracePhase`), so cardinality stays bounded.
    pub fn record_stage(&self, route: &'static str, stage: &'static str, us: u64) {
        self.stages_lock()
            .entry((route, stage))
            .or_default()
            .record(us);
    }

    /// A snapshot of every `(route, stage)` histogram, sorted by route
    /// then stage, for the Prometheus exporter.
    #[must_use]
    pub fn stage_histograms(&self) -> Vec<(String, String, Histogram)> {
        let stages = self.stages_lock();
        let mut out: Vec<(String, String, Histogram)> = stages
            .iter()
            .map(|((route, stage), hist)| ((*route).to_owned(), (*stage).to_owned(), hist.clone()))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }
}

impl Serialize for Metrics {
    fn to_value(&self) -> serde::Value {
        self.report().to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_per_route() {
        let m = Metrics::new();
        for i in 0..10 {
            m.record("GET /healthz", Duration::from_micros(100 + i));
        }
        m.record("POST /sessions", Duration::from_millis(5));
        let report = m.report();
        assert_eq!(report.len(), 2);
        let health = report.iter().find(|r| r.route == "GET /healthz").unwrap();
        assert_eq!(health.count, 10);
        // Bucketed quantiles: within one bucket width above the exact
        // values, which all land in [96, 112) at this magnitude.
        assert!(health.p50_us >= 100 && health.p50_us <= 112, "{health:?}");
        assert_eq!(health.max_us, 109);
        let create = report.iter().find(|r| r.route == "POST /sessions").unwrap();
        assert_eq!(create.count, 1);
        assert!(create.p50_us >= 5_000 && create.p50_us < 5_000 + 5_000 / 8);
    }

    #[test]
    fn memory_is_bounded_regardless_of_observations() {
        let m = Metrics::new();
        for i in 0..10_000u64 {
            m.record("r", Duration::from_micros(i));
        }
        let report = m.report();
        assert_eq!(report[0].count, 10_000);
        assert_eq!(report[0].max_us, 9_999);
        let hists = m.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].1.count(), 10_000);
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let m = Arc::new(Metrics::new());
        m.record("r", Duration::from_micros(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.endpoints.lock().unwrap();
            panic!("poison the metrics lock");
        })
        .join();
        // The satellite fix: record/report recover instead of panicking.
        m.record("r", Duration::from_micros(7));
        let report = m.report();
        assert_eq!(report[0].count, 2);
    }

    #[test]
    fn stage_histograms_key_on_route_and_stage() {
        let m = Metrics::new();
        m.record_stage("GET /sessions/:id/next", "handler", 900);
        m.record_stage("GET /sessions/:id/next", "parse", 12);
        m.record_stage("shed", "queue_wait", 450);
        let stages = m.stage_histograms();
        let keys: Vec<(&str, &str)> = stages
            .iter()
            .map(|(route, stage, _)| (route.as_str(), stage.as_str()))
            .collect();
        assert_eq!(
            keys,
            [
                ("GET /sessions/:id/next", "handler"),
                ("GET /sessions/:id/next", "parse"),
                ("shed", "queue_wait"),
            ]
        );
        assert_eq!(stages[0].2.count(), 1);
        assert_eq!(stages[0].2.max_us(), 900);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        Counters::bump(&c.sessions_created);
        Counters::bump(&c.sessions_created);
        Counters::bump(&c.feedback_labels);
        Counters::add(&c.materialize_rows, 3_000);
        Counters::add(&c.materialize_rows, 800);
        assert_eq!(Counters::read(&c.sessions_created), 2);
        assert_eq!(Counters::read(&c.feedback_labels), 1);
        assert_eq!(Counters::read(&c.materialize_rows), 3_800);
        let depth = c.queue_depth_handle();
        depth.fetch_add(3, Ordering::Relaxed);
        assert_eq!(c.queue_depth(), 3);
    }
}
