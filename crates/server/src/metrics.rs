//! Per-endpoint request counters and latency percentiles for `/healthz`.
//!
//! Latencies are kept in a bounded ring per endpoint (the most recent
//! [`RESERVOIR`] observations), which bounds memory while keeping the
//! percentiles representative of *current* behaviour — exactly what a
//! health probe wants from a long-lived service.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use serde::Serialize;

/// Observations retained per endpoint for percentile estimation.
const RESERVOIR: usize = 2_048;

#[derive(Debug, Default)]
struct EndpointStats {
    count: u64,
    /// Ring buffer of recent latencies in microseconds.
    recent_us: Vec<u64>,
    /// Next write position once `recent_us` is full.
    cursor: usize,
}

impl EndpointStats {
    fn record(&mut self, us: u64) {
        self.count += 1;
        if self.recent_us.len() < RESERVOIR {
            self.recent_us.push(us);
        } else {
            self.recent_us[self.cursor] = us;
            self.cursor = (self.cursor + 1) % RESERVOIR;
        }
    }
}

/// A point-in-time summary of one endpoint, as reported by `/healthz`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EndpointReport {
    /// Normalized route label, e.g. `"GET /sessions/:id/next"`.
    pub route: String,
    /// Total requests handled since startup.
    pub count: u64,
    /// Median latency over the recent window, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum latency in the recent window, microseconds.
    pub max_us: u64,
}

/// Thread-safe request metrics keyed by normalized route.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<HashMap<&'static str, EndpointStats>>,
}

impl Metrics {
    /// Creates an empty metrics table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request against `route`.
    pub fn record(&self, route: &'static str, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.endpoints
            .lock()
            .expect("metrics lock")
            .entry(route)
            .or_default()
            .record(us);
    }

    /// Summarizes every endpoint seen so far, sorted by route label.
    #[must_use]
    pub fn report(&self) -> Vec<EndpointReport> {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        let mut out: Vec<EndpointReport> = endpoints
            .iter()
            .map(|(route, stats)| {
                let mut sorted = stats.recent_us.clone();
                sorted.sort_unstable();
                EndpointReport {
                    route: (*route).to_owned(),
                    count: stats.count,
                    p50_us: percentile(&sorted, 50),
                    p90_us: percentile(&sorted, 90),
                    p99_us: percentile(&sorted, 99),
                    max_us: sorted.last().copied().unwrap_or(0),
                }
            })
            .collect();
        out.sort_by(|a, b| a.route.cmp(&b.route));
        out
    }
}

impl Serialize for Metrics {
    fn to_value(&self) -> serde::Value {
        self.report().to_value()
    }
}

/// Nearest-rank percentile over an already-sorted slice.
fn percentile(sorted_us: &[u64], pct: u64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (pct * sorted_us.len() as u64).div_ceil(100);
    let index = (rank.max(1) - 1) as usize;
    sorted_us[index.min(sorted_us.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_follow_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 90), 90);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn records_and_reports_per_route() {
        let m = Metrics::new();
        for i in 0..10 {
            m.record("GET /healthz", Duration::from_micros(100 + i));
        }
        m.record("POST /sessions", Duration::from_millis(5));
        let report = m.report();
        assert_eq!(report.len(), 2);
        let health = report.iter().find(|r| r.route == "GET /healthz").unwrap();
        assert_eq!(health.count, 10);
        assert!(health.p50_us >= 100 && health.max_us <= 109);
        let create = report.iter().find(|r| r.route == "POST /sessions").unwrap();
        assert_eq!(create.count, 1);
        assert_eq!(create.p50_us, 5_000);
    }

    #[test]
    fn reservoir_is_bounded() {
        let m = Metrics::new();
        for i in 0..(RESERVOIR as u64 + 500) {
            m.record("r", Duration::from_micros(i));
        }
        let r = &m.report()[0];
        assert_eq!(r.count, RESERVOIR as u64 + 500);
        // Old observations were overwritten, so the window max is recent.
        assert_eq!(r.max_us, RESERVOIR as u64 + 499);
    }
}
