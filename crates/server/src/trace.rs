//! Server-side request-tracing glue: the thread-local current-trace
//! scope, the tee that forwards the seeker's `core::trace` phases into
//! the active request's span tree, and the [`ServerTraceSink`] that fans
//! finished traces out to the tail sampler, the per-stage latency
//! histograms, and (for requests the router never saw) the access log.
//!
//! The split of responsibilities: `viewseeker-net` owns ids, span
//! mechanics, sampling, and export formats; this module owns everything
//! that needs the server's shared state — metrics, logging, and the
//! session recorder tee. The router enters a [`TraceScope`] per request
//! so handler-layer code (serialization, the seeker tee) can reach the
//! active trace without threading it through every signature.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

use viewseeker_core::trace::{IterationTrace, Recorder, TracePhase, Tracer};
use viewseeker_core::OwnedSeeker;
use viewseeker_net::trace::{ActiveTrace, RequestTrace, TraceSink};

use crate::api::AppState;
use crate::log::{n, s, LogLevel};

thread_local! {
    /// The request trace the current thread is handling, if any. Set by
    /// [`enter`] for the duration of a handler call.
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Guard marking `trace` as the thread's current request trace until
/// dropped.
pub struct TraceScope(());

/// Installs `trace` as the thread-local current trace; the returned
/// guard clears it on drop (handler calls never nest on one thread, so
/// plain set/clear suffices).
#[must_use]
pub fn enter(trace: &ActiveTrace) -> TraceScope {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(trace.clone());
    });
    TraceScope(())
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            current.borrow_mut().take();
        });
    }
}

/// The thread's current request trace, if a [`TraceScope`] is active.
#[must_use]
pub fn current() -> Option<ActiveTrace> {
    CURRENT.with(|current| current.borrow().clone())
}

/// The current request id, for stamping log lines emitted anywhere under
/// a handler (the logger appends it automatically).
#[must_use]
pub fn current_id() -> Option<String> {
    current().map(|t| t.id())
}

/// Records the response-body serialization time as a `serialize` span
/// nested under `handler` on the current trace, when one is active.
pub fn record_serialize(duration: Duration) {
    if let Some(trace) = current() {
        trace.record_nested("serialize", duration);
    }
}

/// A [`Tracer`] that forwards every seeker phase report to the session's
/// long-lived [`Recorder`] *and* stamps it as a nested span on the
/// active request trace — so `/debug/traces` shows where inside the
/// handler a slow `next`/`feedback`/`recommend` call actually went.
#[derive(Debug)]
pub struct TeeTracer {
    recorder: Arc<Recorder>,
    trace: ActiveTrace,
}

impl Tracer for TeeTracer {
    fn record_span(&self, phase: TracePhase, duration: Duration) {
        self.recorder.record_span(phase, duration);
        self.trace.record_nested(phase.name(), duration);
    }

    fn record_iteration(&self, trace: IterationTrace) {
        self.recorder.record_iteration(trace);
    }
}

/// Points the seeker's tracer at a [`TeeTracer`] for the duration of one
/// handler call, when a request trace is active. Callers pair this with
/// [`untee_seeker`] after the seeker operation (error paths included).
pub fn tee_seeker(seeker: &mut OwnedSeeker, recorder: &Arc<Recorder>) {
    if let Some(trace) = current() {
        seeker.set_tracer(Arc::new(TeeTracer {
            recorder: Arc::clone(recorder),
            trace,
        }));
    }
}

/// Restores the seeker's tracer to the session's plain recorder.
pub fn untee_seeker(seeker: &mut OwnedSeeker, recorder: &Arc<Recorder>) {
    seeker.set_tracer(Arc::clone(recorder) as Arc<dyn Tracer>);
}

/// The production [`TraceSink`]: feeds the tail sampler behind
/// `GET /debug/traces`, records every span into the
/// `viewseeker_request_stage_seconds` histograms, and emits the access
/// line for requests that never reached the router (admission-control
/// sheds and parse rejections), correlated by `request_id`.
pub struct ServerTraceSink {
    state: Arc<AppState>,
}

impl std::fmt::Debug for ServerTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTraceSink").finish_non_exhaustive()
    }
}

impl ServerTraceSink {
    /// A sink recording into `state`'s sampler, metrics, and logger.
    #[must_use]
    pub fn new(state: Arc<AppState>) -> Self {
        Self { state }
    }
}

impl TraceSink for ServerTraceSink {
    fn record(&self, trace: RequestTrace) {
        let route = trace.route_label();
        for span in &trace.spans {
            self.state
                .metrics
                .record_stage(route, span.name, span.dur_us);
        }
        if trace.route.is_empty() {
            // The router never saw this request (shed or rejected during
            // parse), so its access line is emitted here. Routed requests
            // already logged from inside the handler.
            let level = if trace.status >= 500 {
                LogLevel::Warn
            } else {
                LogLevel::Info
            };
            let mut fields = vec![
                ("method", s(&trace.method)),
                ("path", s(&trace.path)),
                ("route", s(route)),
                ("status", n(trace.status.into())),
                ("duration_us", n(trace.total_us)),
                ("request_id", s(&trace.id)),
            ];
            if trace.shed {
                fields.push(("shed", serde::Value::Bool(true)));
            }
            self.state.logger.log(level, "request", &fields);
        }
        self.state.traces.record(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SessionRegistry;
    use viewseeker_net::trace::Span;

    fn state() -> Arc<AppState> {
        Arc::new(AppState::new(SessionRegistry::new(
            2,
            Duration::from_secs(600),
            None,
        )))
    }

    #[test]
    fn scope_sets_and_clears_the_current_trace() {
        assert!(current().is_none());
        let trace = ActiveTrace::detached("GET", "/x");
        {
            let _scope = enter(&trace);
            assert_eq!(current_id(), Some(trace.id()));
            record_serialize(Duration::from_micros(7));
        }
        assert!(current().is_none());
        record_serialize(Duration::from_micros(9)); // no scope: ignored
        let done = trace.finish();
        assert_eq!(done.spans.len(), 1);
        assert_eq!(done.spans.first().map(|s| s.name), Some("serialize"));
        assert_eq!(done.spans.first().and_then(|s| s.parent), Some("handler"));
    }

    #[test]
    fn tee_tracer_feeds_recorder_and_trace() {
        let recorder = Recorder::shared();
        let trace = ActiveTrace::detached("GET", "/x");
        let tee = TeeTracer {
            recorder: Arc::clone(&recorder),
            trace: trace.clone(),
        };
        tee.record_span(TracePhase::EstimatorFit, Duration::from_micros(40));
        let totals = recorder.phase_totals();
        let fit = totals
            .iter()
            .find(|(phase, _)| *phase == TracePhase::EstimatorFit)
            .map(|(_, total)| total.total_us);
        assert_eq!(fit, Some(40));
        let done = trace.finish();
        assert_eq!(done.spans.first().map(|s| s.name), Some("estimator_fit"));
        assert_eq!(done.spans.first().and_then(|s| s.parent), Some("handler"));
    }

    #[test]
    fn sink_records_stages_and_samples_the_trace() {
        let state = state();
        let sink = ServerTraceSink::new(Arc::clone(&state));
        let trace = RequestTrace {
            id: "req-1".into(),
            method: "GET".into(),
            path: "/sessions/s1/next".into(),
            route: "GET /sessions/:id/next",
            status: 200,
            shed: false,
            started: std::time::Instant::now(),
            total_us: 120,
            spans: vec![
                Span {
                    name: "parse",
                    start_us: 0,
                    dur_us: 10,
                    parent: None,
                },
                Span {
                    name: "handler",
                    start_us: 10,
                    dur_us: 100,
                    parent: None,
                },
            ],
        };
        sink.record(trace);
        assert_eq!(state.traces.recorded(), 1);
        let stages = state.metrics.stage_histograms();
        let names: Vec<&str> = stages.iter().map(|(_, stage, _)| stage.as_str()).collect();
        assert_eq!(names, ["handler", "parse"]);
        assert!(stages
            .iter()
            .all(|(route, _, _)| route == "GET /sessions/:id/next"));
    }

    #[test]
    fn sink_logs_unrouted_requests_with_their_id() {
        use crate::log::{LogFormat, Logger};
        use std::io::Write;
        use std::sync::Mutex;

        #[derive(Clone, Default)]
        struct Buffer(Arc<Mutex<Vec<u8>>>);
        impl Write for Buffer {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Buffer::default();
        let logger = Arc::new(Logger::to_writer(
            LogFormat::Json,
            LogLevel::Info,
            Box::new(buffer.clone()),
        ));
        let registry = SessionRegistry::new(2, Duration::from_secs(600), None);
        let state = Arc::new(AppState::with_logger(registry, logger));
        let sink = ServerTraceSink::new(Arc::clone(&state));
        sink.record(RequestTrace {
            id: "shed-9".into(),
            method: "GET".into(),
            path: "/sessions".into(),
            route: "",
            status: 503,
            shed: true,
            started: std::time::Instant::now(),
            total_us: 42,
            spans: vec![Span {
                name: "queue_wait",
                start_us: 0,
                dur_us: 42,
                parent: None,
            }],
        });
        let raw = String::from_utf8(buffer.0.lock().unwrap().clone()).unwrap();
        assert!(raw.contains("\"request_id\":\"shed-9\""), "{raw}");
        assert!(raw.contains("\"route\":\"shed\""), "{raw}");
        assert!(raw.contains("\"status\":503"), "{raw}");
        assert!(raw.contains("\"shed\":true"), "{raw}");
    }
}
