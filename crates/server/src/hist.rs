//! Log-linear bucketed latency histograms — re-exported from
//! [`viewseeker_net::hist`], where the implementation moved so the
//! reactor's loop-tick timing and `viewseeker-loadgen`'s client-side
//! latencies share the same mergeable layout as the server's per-route
//! metrics. The API here is unchanged: `Histogram`, `BUCKETS`,
//! `bucket_index`, `bucket_range`.

pub use viewseeker_net::hist::{bucket_index, bucket_range, Histogram, BUCKETS};
