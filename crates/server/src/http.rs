//! The blocking HTTP/1.1 path: accept loop feeding a fixed-size worker
//! pool through a crossbeam MPMC channel, one thread per in-flight
//! connection.
//!
//! Parsing and encoding are shared with the event reactor via
//! [`viewseeker_net::http1`] — partial reads, split CRLFs, pipelining,
//! oversized-header (`431`) and oversized-body (`413`) rejection behave
//! bit-identically on both paths, which is what makes this path usable as
//! a differential oracle for `serve --io event`. Connections are reused
//! per HTTP/1.1 keep-alive semantics (a worker stays pinned to its
//! connection until it closes, so `workers` bounds concurrent
//! *connections* here, not requests); `Connection: close` — including on
//! error responses — is honored by closing after the response.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;

pub use viewseeker_net::http1::{Handler, Request, Response};

use viewseeker_net::http1;
use viewseeker_net::trace::{ActiveTrace, TraceSink};

/// The one wall-clock seam on this path.
fn now() -> Instant {
    // vslint::allow(wall-clock): per-request trace timestamps are
    // observability metadata, never inputs to recommendation decisions.
    Instant::now()
}

/// How long an idle keep-alive connection may sit between requests before
/// the worker reclaims itself.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// A running server: accept thread + worker pool, stoppable.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves `handler` on `workers` pool threads until
/// [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<H: Handler>(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<H>,
) -> std::io::Result<ServerHandle> {
    serve_observed(
        addr,
        workers,
        handler,
        Arc::new(AtomicU64::new(0)),
        Arc::new(viewseeker_net::NoopTraceSink),
    )
}

/// [`serve`] with a shared queue-depth gauge and a [`TraceSink`]: the
/// accept loop increments the gauge for every connection handed to the
/// channel and a worker decrements it on pickup, so the gauge reads the
/// number of accepted-but-unserved connections. (The vendored channel has
/// no `len()`; this external counter is the observable substitute.) Every
/// request — parse rejections included — produces a finished
/// [`viewseeker_net::RequestTrace`] delivered to `sink`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_observed<H: Handler>(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<H>,
    queue_depth: Arc<AtomicU64>,
    sink: Arc<dyn TraceSink>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::unbounded::<TcpStream>();

    let worker_count = workers.max(1);
    let mut pool = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let depth = Arc::clone(&queue_depth);
        let sink = Arc::clone(&sink);
        pool.push(
            std::thread::Builder::new()
                .name(format!("vs-worker-{i}"))
                .spawn(move || {
                    // recv() errors once every sender is gone — clean exit.
                    while let Ok(mut stream) = rx.recv() {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        handle_connection(&mut stream, handler.as_ref(), sink.as_ref());
                    }
                })?,
        );
    }
    drop(rx);

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("vs-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    queue_depth.fetch_add(1, Ordering::Relaxed);
                    // Send fails only when every worker exited; stop then.
                    if tx.send(stream).is_err() {
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            // Dropping tx disconnects the channel and retires the workers.
        })?;

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept_thread: Some(accept_thread),
        workers: pool,
    })
}

/// Writes `response` with the right `Connection:` header; `false` means
/// the socket is done (peer gone or close requested).
fn send_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    use std::io::Write;
    let mut out = Vec::with_capacity(256 + response.body.len());
    http1::encode_response(response, keep_alive, &mut out);
    stream.write_all(&out).is_ok() && stream.flush().is_ok() && keep_alive
}

/// Serves one connection until it closes: read → parse (incrementally,
/// tolerating partial reads and pipelining) → handle → respond →
/// keep-alive loop. Parse errors answer with their mapped status (`400`/
/// `431`/`413`) and close; `Connection:` headers are honored on every
/// response, errors included.
///
/// Every request gets a span tree: `parse` runs from the first byte of
/// the request to a complete parse, `handler` wraps the dispatch, and
/// `write` covers encoding plus the blocking socket write. There is no
/// `queue_wait`/`dispatch` here — a worker owns its connection outright,
/// so those stages exist only on the event path. Parse rejections trace
/// too (with `-`/`-` placeholders for the request line the parser never
/// produced), so 400/431/413 lines still carry a `request_id`.
fn handle_connection(stream: &mut TcpStream, handler: &dyn Handler, sink: &dyn TraceSink) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_IDLE));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // The arrival time of the first byte of the *next* request on this
    // connection: set on the read that starts a request, consumed when
    // that request parses (or fails to).
    let mut first_byte: Option<Instant> = None;
    loop {
        match http1::parse_request(&buf) {
            Ok(Some(parsed)) => {
                buf.drain(..parsed.consumed);
                let started = first_byte.take().unwrap_or_else(now);
                let trace = ActiveTrace::start(
                    parsed.request.header("x-request-id"),
                    &parsed.request.method,
                    &parsed.request.path,
                    started,
                );
                trace.record("parse", started);
                if !buf.is_empty() {
                    // A pipelined successor is already buffered; its parse
                    // clock starts now, not at its own (long-gone) bytes.
                    first_byte = Some(now());
                }
                let handler_start = now();
                let mut response = handler.handle_traced(&parsed.request, &trace);
                trace.record("handler", handler_start);
                trace.set_status(response.status);
                response.request_id = Some(trace.id());
                let write_start = now();
                let alive = send_response(stream, &response, parsed.keep_alive);
                trace.record("write", write_start);
                sink.record(trace.finish());
                if !alive {
                    return;
                }
                continue; // drain pipelined requests before reading again
            }
            Ok(None) => {}
            Err(e) => {
                let started = first_byte.take().unwrap_or_else(now);
                let trace = ActiveTrace::start(None, "-", "-", started);
                trace.record("parse", started);
                let mut response = e.to_response();
                trace.set_status(response.status);
                response.request_id = Some(trace.id());
                let write_start = now();
                let _ = send_response(stream, &response, false);
                trace.record("write", write_start);
                sink.record(trace.finish());
                return;
            }
        }
        match stream.read(&mut chunk) {
            // Peer closed; anything short of a full request is abandoned.
            Ok(0) => return,
            Ok(n) => {
                if first_byte.is_none() {
                    first_byte = Some(now());
                }
                buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return; // idle keep-alive expired
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            Response::json(format!(
                "{{\"method\": {:?}, \"path\": {:?}, \"m\": {:?}, \"body_len\": {}}}",
                request.method,
                request.path,
                request.query_param("m").unwrap_or(""),
                request.body.len(),
            ))
        }
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String, Vec<String>) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).unwrap();
            let h = h.trim_end().to_owned();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            headers.push(h);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap(), headers)
    }

    #[test]
    fn serves_parses_and_shuts_down() {
        let handle = serve("127.0.0.1:0", 2, Arc::new(Echo)).unwrap();
        let addr = handle.addr();

        let reply = raw_roundtrip(
            addr,
            "GET /sessions/s1/next?m=3 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"m\": \"3\""), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");

        let reply = raw_roundtrip(
            addr,
            "POST /sessions HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"\"}",
        );
        assert!(reply.contains("\"body_len\": 4"), "{reply}");

        let reply = raw_roundtrip(addr, "garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(
            reply.contains("Connection: close"),
            "errors honor Connection too: {reply}"
        );

        handle.shutdown();
    }

    #[test]
    fn keep_alive_reuses_the_connection() {
        let handle = serve("127.0.0.1:0", 2, Arc::new(Echo)).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            (&stream)
                .write_all(format!("GET /r{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body, headers) = read_one_response(&mut reader);
            assert_eq!(status, 200);
            assert!(body.contains(&format!("/r{i}")), "{body}");
            assert!(
                headers.iter().any(|h| h == "Connection: keep-alive"),
                "{headers:?}"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_are_all_answered() {
        let handle = serve("127.0.0.1:0", 2, Arc::new(Echo)).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        (&stream)
            .write_all(b"GET /p1 HTTP/1.1\r\n\r\nGET /p2 HTTP/1.1\r\n\r\nGET /p3 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for expected in ["/p1", "/p2", "/p3"] {
            let (status, body, _) = read_one_response(&mut reader);
            assert_eq!(status, 200);
            assert!(body.contains(expected), "{body}");
        }
        handle.shutdown();
    }

    #[test]
    fn split_reads_and_oversized_headers() {
        let handle = serve("127.0.0.1:0", 2, Arc::new(Echo)).unwrap();

        // Byte-at-a-time delivery of a whole request still parses.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        for &b in b"GET /slowly HTTP/1.1\r\nConnection: close\r\n\r\n" {
            (&stream).write_all(&[b]).unwrap();
        }
        let mut out = String::new();
        (&stream).read_to_string(&mut out).unwrap();
        assert!(out.contains("/slowly"), "{out}");

        // An unbounded header block is rejected with 431, not buffered.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(
            b'a',
            viewseeker_net::http1::MAX_HEADER_BYTES + 10,
        ));
        raw.extend_from_slice(b"\r\n\r\n");
        stream.write_all(&raw).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");

        handle.shutdown();
    }

    #[test]
    fn traces_echo_ids_and_reach_the_sink_on_both_outcomes() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Capture(Mutex<Vec<viewseeker_net::RequestTrace>>);
        impl TraceSink for Capture {
            fn record(&self, trace: viewseeker_net::RequestTrace) {
                self.0.lock().unwrap().push(trace);
            }
        }

        let sink = Arc::new(Capture::default());
        let handle = serve_observed(
            "127.0.0.1:0",
            2,
            Arc::new(Echo),
            Arc::new(AtomicU64::new(0)),
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        )
        .unwrap();
        let addr = handle.addr();

        // A client-supplied id is honored and echoed back.
        let reply = raw_roundtrip(
            addr,
            "GET /ping HTTP/1.1\r\nX-Request-Id: client-77\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("X-Request-Id: client-77"), "{reply}");

        // A generated id appears even on parse rejections.
        let reply = raw_roundtrip(addr, "garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(reply.contains("X-Request-Id: r-"), "{reply}");

        handle.shutdown();
        let traces = sink.0.lock().unwrap();
        assert_eq!(traces.len(), 2, "{traces:?}");
        let ok = traces.iter().find(|t| t.id == "client-77").unwrap();
        assert_eq!(ok.status, 200);
        let names: Vec<&str> = ok.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["parse", "handler", "write"]);
        assert!(ok.stage_sum_us() <= ok.total_us, "{ok:?}");
        let bad = traces.iter().find(|t| t.id != "client-77").unwrap();
        assert_eq!(bad.status, 400);
        assert_eq!(bad.method, "-");
        assert!(bad.route.is_empty());
    }

    #[test]
    fn concurrent_requests_across_the_pool() {
        let handle = serve("127.0.0.1:0", 4, Arc::new(Echo)).unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_roundtrip(
                        addr,
                        &format!("GET /ping/{i} HTTP/1.1\r\nConnection: close\r\n\r\n"),
                    )
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let reply = t.join().unwrap();
            assert!(reply.contains(&format!("/ping/{i}")), "{reply}");
        }
        handle.shutdown();
    }
}
