//! A deliberately small HTTP/1.1 server on `std::net`: blocking accept loop
//! feeding a fixed-size worker pool through a crossbeam MPMC channel.
//!
//! Scope: exactly what the ViewSeeker API needs. One request per connection
//! (every response carries `Connection: close`), `Content-Length` framing
//! only (no chunked bodies), JSON in and out. No TLS, no routing here —
//! [`crate::router`] owns dispatch.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel;

use crate::error::ServerError;

/// Largest accepted request body, a backstop against hostile clients.
/// Sized for CSV dataset uploads (`POST /datasets/:name`), not just JSON.
const MAX_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of query parameter `key`, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a query parameter, defaulting when absent.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] when present but unparseable.
    pub fn parsed_param<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ServerError> {
        match self.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ServerError::BadRequest(format!("bad query parameter {key}={raw:?}"))),
        }
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] on invalid UTF-8.
    pub fn body_text(&self) -> Result<&str, ServerError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServerError::BadRequest("body is not UTF-8".into()))
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON everywhere except `GET /metrics`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Self::with_status(200, body)
    }

    /// A JSON response with an explicit status.
    #[must_use]
    pub fn with_status(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
        }
    }

    /// A `200 OK` plain-text response in the Prometheus exposition
    /// content type.
    #[must_use]
    pub fn prometheus(body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a URL component.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                if let Some(b) = hex {
                    out.push(b);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and parses one request from `stream`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending a
/// request line (a health-checker poke, or the shutdown self-connection).
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, ServerError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(ServerError::BadRequest("malformed request line".into()));
    };
    let method = method.to_ascii_uppercase();
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();

    // Headers: only Content-Length matters to this service.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServerError::BadRequest("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ServerError::BadRequest(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

/// Serializes `response` onto `stream`.
pub(crate) fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Request dispatch, implemented by [`crate::router::Router`].
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, request: &Request) -> Response;
}

/// A running server: accept thread + worker pool, stoppable.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves `handler` on `workers` pool threads until
/// [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<H: Handler>(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<H>,
) -> std::io::Result<ServerHandle> {
    serve_observed(addr, workers, handler, Arc::new(AtomicU64::new(0)))
}

/// [`serve`] with a shared queue-depth gauge: the accept loop increments it
/// for every connection handed to the channel and a worker decrements it on
/// pickup, so the gauge reads the number of accepted-but-unserved
/// connections. (The vendored channel has no `len()`; this external counter
/// is the observable substitute.)
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_observed<H: Handler>(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<H>,
    queue_depth: Arc<AtomicU64>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::unbounded::<TcpStream>();

    let worker_count = workers.max(1);
    let mut pool = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let depth = Arc::clone(&queue_depth);
        pool.push(
            std::thread::Builder::new()
                .name(format!("vs-worker-{i}"))
                .spawn(move || {
                    // recv() errors once every sender is gone — clean exit.
                    while let Ok(mut stream) = rx.recv() {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        handle_connection(&mut stream, handler.as_ref());
                    }
                })?,
        );
    }
    drop(rx);

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("vs-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    queue_depth.fetch_add(1, Ordering::Relaxed);
                    // Send fails only when every worker exited; stop then.
                    if tx.send(stream).is_err() {
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            // Dropping tx disconnects the channel and retires the workers.
        })?;

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept_thread: Some(accept_thread),
        workers: pool,
    })
}

fn handle_connection(stream: &mut TcpStream, handler: &dyn Handler) {
    let response = match read_request(stream) {
        Ok(Some(request)) => handler.handle(&request),
        Ok(None) => return, // peer closed without a request
        Err(e) => Response::with_status(e.status(), format!("{{\"error\": {:?}}}", e.message())),
    };
    let _ = write_response(stream, &response);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a0%20%3D%20'v'"), "a0 = 'v'");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%2"), "bad%2");
    }

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            Response::json(format!(
                "{{\"method\": {:?}, \"path\": {:?}, \"m\": {:?}, \"body_len\": {}}}",
                request.method,
                request.path,
                request.query_param("m").unwrap_or(""),
                request.body.len(),
            ))
        }
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_parses_and_shuts_down() {
        let handle = serve("127.0.0.1:0", 2, Arc::new(Echo)).unwrap();
        let addr = handle.addr();

        let reply = raw_roundtrip(
            addr,
            "GET /sessions/s1/next?m=3 HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"m\": \"3\""), "{reply}");

        let reply = raw_roundtrip(
            addr,
            "POST /sessions HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"\"}",
        );
        assert!(reply.contains("\"body_len\": 4"), "{reply}");

        let reply = raw_roundtrip(addr, "garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        handle.shutdown();
    }

    #[test]
    fn concurrent_requests_across_the_pool() {
        let handle = serve("127.0.0.1:0", 4, Arc::new(Echo)).unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    raw_roundtrip(addr, &format!("GET /ping/{i} HTTP/1.1\r\n\r\n"))
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let reply = t.join().unwrap();
            assert!(reply.contains(&format!("/ping/{i}")), "{reply}");
        }
        handle.shutdown();
    }
}
