//! Structured access/event logging: one line per request and per registry
//! lifecycle event, in machine-parseable JSON or human-oriented text,
//! behind `viewseeker serve --log-format json|text --log-level <level>`.
//!
//! Kept deliberately small: a level filter, a format switch, and a
//! `Mutex<Write>` sink (whole lines under one lock, so concurrent workers
//! never interleave mid-line). Fields are [`serde::Value`]s, so JSON mode
//! gets correct escaping for free and text mode renders the same values
//! compactly.

use std::io::Write;
use std::str::FromStr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Number, Value};

/// Output shape of each log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `key=value` pairs, for humans watching the terminal (the default).
    #[default]
    Text,
    /// One JSON object per line, for collectors.
    Json,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (text|json)")),
        }
    }
}

/// Minimum severity that gets written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Everything, including per-request access lines' debug detail.
    Debug,
    /// Normal operation (the default): requests and lifecycle events.
    #[default]
    Info,
    /// Unexpected-but-handled conditions (failed restores, 5xx responses).
    Warn,
    /// Failures that lost work.
    Error,
    /// Nothing at all.
    Off,
}

impl LogLevel {
    fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
            LogLevel::Off => "off",
        }
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Ok(LogLevel::Debug),
            "info" => Ok(LogLevel::Info),
            "warn" => Ok(LogLevel::Warn),
            "error" => Ok(LogLevel::Error),
            "off" => Ok(LogLevel::Off),
            other => Err(format!(
                "unknown log level {other:?} (debug|info|warn|error|off)"
            )),
        }
    }
}

/// A line-oriented structured logger shared by the router and registry.
pub struct Logger {
    format: LogFormat,
    level: LogLevel,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("format", &self.format)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

impl Logger {
    /// A logger writing to the given sink.
    #[must_use]
    pub fn to_writer(format: LogFormat, level: LogLevel, sink: Box<dyn Write + Send>) -> Self {
        Self {
            format,
            level,
            sink: Mutex::new(sink),
        }
    }

    /// The production logger: stderr, behind an `Arc` for sharing across
    /// the router and registry.
    #[must_use]
    pub fn stderr(format: LogFormat, level: LogLevel) -> Arc<Self> {
        Arc::new(Self::to_writer(format, level, Box::new(std::io::stderr())))
    }

    /// A logger that drops everything — the default for embedded/test use.
    #[must_use]
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self::to_writer(
            LogFormat::Text,
            LogLevel::Off,
            Box::new(std::io::sink()),
        ))
    }

    /// Whether a line at `level` would be written (lets callers skip
    /// building expensive fields).
    #[must_use]
    pub fn enabled(&self, level: LogLevel) -> bool {
        self.level != LogLevel::Off && level >= self.level
    }

    /// Writes one structured line. `fields` are appended after the
    /// timestamp, level, and event name, in order. When the calling thread
    /// is inside a request's [`crate::trace::TraceScope`] and `fields` has
    /// no `request_id` of its own, the active request's id is appended —
    /// so lifecycle events (session creation, eviction, snapshots) emitted
    /// mid-handler correlate with the access line and `/debug/traces`.
    pub fn log(&self, level: LogLevel, event: &str, fields: &[(&'static str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let request_id = if fields.iter().any(|(k, _)| *k == "request_id") {
            None
        } else {
            crate::trace::current_id()
        };
        // vslint::allow(wall-clock): log lines carry a real wall-clock
        // timestamp by design; it is presentation metadata, never an
        // input to recommendation or ordering decisions.
        #[allow(clippy::disallowed_methods)]
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        let line = match self.format {
            LogFormat::Json => {
                let mut object = vec![
                    ("ts".to_owned(), Value::Number(Number::Float(ts))),
                    ("level".to_owned(), Value::String(level.name().to_owned())),
                    ("event".to_owned(), Value::String(event.to_owned())),
                ];
                object.extend(fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())));
                if let Some(id) = request_id {
                    object.push(("request_id".to_owned(), Value::String(id)));
                }
                serde_json::render_compact(&Value::Object(object))
            }
            LogFormat::Text => {
                let mut line = format!("ts={ts:.3} level={} event={event}", level.name());
                for (key, value) in fields {
                    line.push(' ');
                    line.push_str(key);
                    line.push('=');
                    match value {
                        // Bare strings read better than quoted JSON in text
                        // mode unless they contain spaces.
                        Value::String(s) if !s.contains(' ') => line.push_str(s),
                        other => line.push_str(&serde_json::render_compact(other)),
                    }
                }
                if let Some(id) = request_id {
                    line.push_str(" request_id=");
                    line.push_str(&id);
                }
                line
            }
        };
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(sink, "{line}");
    }

    /// [`Logger::log`] at [`LogLevel::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&'static str, Value)]) {
        self.log(LogLevel::Debug, event, fields);
    }

    /// [`Logger::log`] at [`LogLevel::Info`].
    pub fn info(&self, event: &str, fields: &[(&'static str, Value)]) {
        self.log(LogLevel::Info, event, fields);
    }

    /// [`Logger::log`] at [`LogLevel::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&'static str, Value)]) {
        self.log(LogLevel::Warn, event, fields);
    }

    /// [`Logger::log`] at [`LogLevel::Error`].
    pub fn error(&self, event: &str, fields: &[(&'static str, Value)]) {
        self.log(LogLevel::Error, event, fields);
    }
}

/// Shorthand for a string field value.
#[must_use]
pub fn s(value: &str) -> Value {
    Value::String(value.to_owned())
}

/// Shorthand for an unsigned-integer field value.
#[must_use]
pub fn n(value: u64) -> Value {
    Value::Number(Number::PosInt(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink the test can read back.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Buffer {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn json_lines_parse_back() {
        let buffer = Buffer::default();
        let logger = Logger::to_writer(LogFormat::Json, LogLevel::Info, Box::new(buffer.clone()));
        logger.info(
            "request",
            &[
                ("route", s("GET /sessions/:id")),
                ("status", n(200)),
                ("note", s("has \"quotes\" and spaces")),
            ],
        );
        logger.debug("dropped", &[]); // below the level
        let out = buffer.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1);
        let parsed: Value = serde_json::parse_value(lines[0]).unwrap();
        assert_eq!(parsed.get("event"), Some(&s("request")));
        assert_eq!(parsed.get("status"), Some(&n(200)));
        assert_eq!(parsed.get("note"), Some(&s("has \"quotes\" and spaces")));
        assert!(matches!(parsed.get("ts"), Some(Value::Number(_))));
    }

    #[test]
    fn text_lines_are_single_and_readable() {
        let buffer = Buffer::default();
        let logger = Logger::to_writer(LogFormat::Text, LogLevel::Debug, Box::new(buffer.clone()));
        logger.warn("session_evicted", &[("session", s("s7")), ("labels", n(3))]);
        let out = buffer.contents();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("level=warn"), "{out}");
        assert!(out.contains("event=session_evicted"), "{out}");
        assert!(out.contains("session=s7"), "{out}");
        assert!(out.contains("labels=3"), "{out}");
    }

    #[test]
    fn levels_filter_and_off_drops_everything() {
        let buffer = Buffer::default();
        let logger = Logger::to_writer(LogFormat::Text, LogLevel::Warn, Box::new(buffer.clone()));
        assert!(!logger.enabled(LogLevel::Info));
        assert!(logger.enabled(LogLevel::Error));
        logger.info("nope", &[]);
        logger.error("yes", &[]);
        assert_eq!(buffer.contents().lines().count(), 1);

        let disabled = Logger::disabled();
        assert!(!disabled.enabled(LogLevel::Error));
    }

    #[test]
    fn lines_under_a_trace_scope_carry_the_request_id() {
        let buffer = Buffer::default();
        let logger = Logger::to_writer(LogFormat::Json, LogLevel::Info, Box::new(buffer.clone()));
        let trace = viewseeker_net::ActiveTrace::detached("GET", "/x");
        {
            let _scope = crate::trace::enter(&trace);
            logger.info("session_created", &[("session", s("s1"))]);
            // An explicit request_id is never overridden or duplicated.
            logger.info("request", &[("request_id", s("explicit-1"))]);
        }
        logger.info("sweep", &[]); // outside any scope: no id
        let out = buffer.contents();
        let lines: Vec<Value> = out
            .lines()
            .map(|l| serde_json::parse_value(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("request_id"), Some(&s(&trace.id())));
        assert_eq!(lines[1].get("request_id"), Some(&s("explicit-1")));
        assert_eq!(lines[2].get("request_id"), None);

        let text_buffer = Buffer::default();
        let text_logger = Logger::to_writer(
            LogFormat::Text,
            LogLevel::Info,
            Box::new(text_buffer.clone()),
        );
        {
            let _scope = crate::trace::enter(&trace);
            text_logger.info("session_created", &[]);
        }
        let text = text_buffer.contents();
        assert!(
            text.contains(&format!("request_id={}", trace.id())),
            "{text}"
        );
    }

    #[test]
    fn format_and_level_parse_from_flags() {
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert_eq!("TEXT".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert!("xml".parse::<LogFormat>().is_err());
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert_eq!("OFF".parse::<LogLevel>().unwrap(), LogLevel::Off);
        assert!("verbose".parse::<LogLevel>().is_err());
    }
}
