//! Prometheus text exposition (format version 0.0.4) for `GET /metrics`.
//!
//! Durations are exported in seconds, as the Prometheus convention
//! requires; the underlying histograms store microseconds, so bucket
//! bounds convert as `(inclusive_µs) × 1e-6`. Only buckets that have
//! observations are emitted (plus the mandatory `+Inf` bucket) — with the
//! fixed log-linear layout, omitted buckets are unambiguously zero, and
//! the cumulative-count contract still holds.

use viewseeker_catalog::CatalogStats;

use crate::hist::Histogram;
use crate::metrics::Counters;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders integer microseconds as an exact decimal-seconds string
/// (`5 → "0.000005"`, `1_500_000 → "1.5"`), sidestepping the float
/// imprecision of `us as f64 * 1e-6`.
fn seconds(us: u64) -> String {
    let whole = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        return format!("{whole}");
    }
    let mut out = format!("{whole}.{frac:06}");
    while out.ends_with('0') {
        out.pop();
    }
    out
}

/// Renders the whole scrape payload.
#[must_use]
pub fn render(
    uptime_secs: f64,
    active_sessions: usize,
    counters: &Counters,
    histograms: &[(String, Histogram)],
    catalog: &CatalogStats,
) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str("# HELP viewseeker_uptime_seconds Seconds since the server started.\n");
    out.push_str("# TYPE viewseeker_uptime_seconds gauge\n");
    out.push_str(&format!("viewseeker_uptime_seconds {uptime_secs}\n"));

    out.push_str("# HELP viewseeker_active_sessions Live sessions in the registry.\n");
    out.push_str("# TYPE viewseeker_active_sessions gauge\n");
    out.push_str(&format!("viewseeker_active_sessions {active_sessions}\n"));

    out.push_str("# HELP viewseeker_worker_queue_depth Accepted connections awaiting a worker.\n");
    out.push_str("# TYPE viewseeker_worker_queue_depth gauge\n");
    out.push_str(&format!(
        "viewseeker_worker_queue_depth {}\n",
        counters.queue_depth()
    ));

    out.push_str("# HELP viewseeker_sessions_created_total Sessions created.\n");
    out.push_str("# TYPE viewseeker_sessions_created_total counter\n");
    out.push_str(&format!(
        "viewseeker_sessions_created_total {}\n",
        Counters::read(&counters.sessions_created)
    ));

    out.push_str("# HELP viewseeker_sessions_evicted_total Sessions evicted (LRU or TTL).\n");
    out.push_str("# TYPE viewseeker_sessions_evicted_total counter\n");
    out.push_str(&format!(
        "viewseeker_sessions_evicted_total {}\n",
        Counters::read(&counters.sessions_evicted)
    ));

    out.push_str("# HELP viewseeker_snapshots_total Session snapshots written, by outcome.\n");
    out.push_str("# TYPE viewseeker_snapshots_total counter\n");
    out.push_str(&format!(
        "viewseeker_snapshots_total{{outcome=\"ok\"}} {}\n",
        Counters::read(&counters.snapshots_ok)
    ));
    out.push_str(&format!(
        "viewseeker_snapshots_total{{outcome=\"error\"}} {}\n",
        Counters::read(&counters.snapshots_failed)
    ));

    out.push_str("# HELP viewseeker_restores_total Session restores, by outcome.\n");
    out.push_str("# TYPE viewseeker_restores_total counter\n");
    out.push_str(&format!(
        "viewseeker_restores_total{{outcome=\"ok\"}} {}\n",
        Counters::read(&counters.restores_ok)
    ));
    out.push_str(&format!(
        "viewseeker_restores_total{{outcome=\"error\"}} {}\n",
        Counters::read(&counters.restores_failed)
    ));

    out.push_str("# HELP viewseeker_feedback_labels_total Feedback labels ingested.\n");
    out.push_str("# TYPE viewseeker_feedback_labels_total counter\n");
    out.push_str(&format!(
        "viewseeker_feedback_labels_total {}\n",
        Counters::read(&counters.feedback_labels)
    ));

    out.push_str(
        "# HELP viewseeker_materialize_scans_total Logical scans issued by offline view \
         materialization across session builds.\n",
    );
    out.push_str("# TYPE viewseeker_materialize_scans_total counter\n");
    out.push_str(&format!(
        "viewseeker_materialize_scans_total {}\n",
        Counters::read(&counters.materialize_scans)
    ));

    out.push_str(
        "# HELP viewseeker_materialize_rows_total Rows read by offline view materialization \
         across session builds.\n",
    );
    out.push_str("# TYPE viewseeker_materialize_rows_total counter\n");
    out.push_str(&format!(
        "viewseeker_materialize_rows_total {}\n",
        Counters::read(&counters.materialize_rows)
    ));

    out.push_str(
        "# HELP viewseeker_materialize_seconds_total Wall-clock seconds spent in offline view \
         materialization across session builds.\n",
    );
    out.push_str("# TYPE viewseeker_materialize_seconds_total counter\n");
    out.push_str(&format!(
        "viewseeker_materialize_seconds_total {}\n",
        seconds(Counters::read(&counters.materialize_us))
    ));

    out.push_str("# HELP viewseeker_catalog_hits_total Dataset resolutions served from memory.\n");
    out.push_str("# TYPE viewseeker_catalog_hits_total counter\n");
    out.push_str(&format!("viewseeker_catalog_hits_total {}\n", catalog.hits));

    out.push_str(
        "# HELP viewseeker_catalog_misses_total Dataset resolutions that loaded from disk.\n",
    );
    out.push_str("# TYPE viewseeker_catalog_misses_total counter\n");
    out.push_str(&format!(
        "viewseeker_catalog_misses_total {}\n",
        catalog.misses
    ));

    out.push_str(
        "# HELP viewseeker_catalog_evictions_total Tables evicted from the catalog cache.\n",
    );
    out.push_str("# TYPE viewseeker_catalog_evictions_total counter\n");
    out.push_str(&format!(
        "viewseeker_catalog_evictions_total {}\n",
        catalog.evictions
    ));

    out.push_str(
        "# HELP viewseeker_catalog_resident_bytes Estimated bytes of tables held in memory.\n",
    );
    out.push_str("# TYPE viewseeker_catalog_resident_bytes gauge\n");
    out.push_str(&format!(
        "viewseeker_catalog_resident_bytes {}\n",
        catalog.resident_bytes
    ));

    out.push_str(
        "# HELP viewseeker_catalog_datasets Datasets known to the catalog, by residency.\n",
    );
    out.push_str("# TYPE viewseeker_catalog_datasets gauge\n");
    out.push_str(&format!(
        "viewseeker_catalog_datasets{{state=\"cached\"}} {}\n",
        catalog.cached_datasets
    ));
    out.push_str(&format!(
        "viewseeker_catalog_datasets{{state=\"known\"}} {}\n",
        catalog.known_datasets
    ));

    out.push_str("# HELP viewseeker_requests_total Requests handled, by route.\n");
    out.push_str("# TYPE viewseeker_requests_total counter\n");
    for (route, hist) in histograms {
        out.push_str(&format!(
            "viewseeker_requests_total{{route=\"{}\"}} {}\n",
            escape_label(route),
            hist.count()
        ));
    }

    out.push_str("# HELP viewseeker_request_duration_seconds Request latency, by route.\n");
    out.push_str("# TYPE viewseeker_request_duration_seconds histogram\n");
    for (route, hist) in histograms {
        let route = escape_label(route);
        let mut cumulative = 0u64;
        for (bound_us, count) in hist.nonzero_buckets() {
            cumulative += count;
            out.push_str(&format!(
                "viewseeker_request_duration_seconds_bucket{{route=\"{route}\",le=\"{}\"}} {cumulative}\n",
                seconds(bound_us)
            ));
        }
        out.push_str(&format!(
            "viewseeker_request_duration_seconds_bucket{{route=\"{route}\",le=\"+Inf\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!(
            "viewseeker_request_duration_seconds_sum{{route=\"{route}\"}} {}\n",
            seconds(hist.sum_us())
        ));
        out.push_str(&format!(
            "viewseeker_request_duration_seconds_count{{route=\"{route}\"}} {}\n",
            hist.count()
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape() -> String {
        let counters = Counters::default();
        Counters::bump(&counters.sessions_created);
        Counters::bump(&counters.feedback_labels);
        Counters::bump(&counters.feedback_labels);
        Counters::add(&counters.materialize_scans, 2);
        Counters::add(&counters.materialize_rows, 6_000);
        Counters::add(&counters.materialize_us, 2_500);
        let mut hist = Histogram::new();
        hist.record(5);
        hist.record(150);
        hist.record(150);
        let catalog = CatalogStats {
            hits: 7,
            misses: 2,
            evictions: 1,
            resident_bytes: 4096,
            cached_datasets: 2,
            known_datasets: 3,
        };
        render(
            12.5,
            3,
            &counters,
            &[("GET /sessions/:id".to_owned(), hist)],
            &catalog,
        )
    }

    /// Golden test for the exposition format: every line is either a
    /// comment or `name[{labels}] value`, and the series the scrape
    /// promises are all present with the right values.
    #[test]
    fn text_format_is_well_formed() {
        let text = scrape();
        for line in text.lines() {
            assert!(!line.is_empty(), "blank line in scrape");
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect(line);
            assert!(
                series.starts_with("viewseeker_"),
                "unprefixed series: {line}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value: {line}"
            );
            // No scientific notation: Prometheus accepts it, but fixed
            // decimals keep the golden expectations simple and diffable.
            assert!(!value.contains('e') && !value.contains('E'), "{line}");
        }
    }

    #[test]
    fn golden_series_and_values() {
        let text = scrape();
        assert!(text.contains("viewseeker_uptime_seconds 12.5\n"), "{text}");
        assert!(text.contains("viewseeker_active_sessions 3\n"), "{text}");
        assert!(text.contains("viewseeker_worker_queue_depth 0\n"), "{text}");
        assert!(
            text.contains("viewseeker_sessions_created_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_feedback_labels_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_snapshots_total{outcome=\"ok\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_scans_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_rows_total 6000\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_seconds_total 0.0025\n"),
            "{text}"
        );
        assert!(text.contains("viewseeker_catalog_hits_total 7\n"), "{text}");
        assert!(
            text.contains("viewseeker_catalog_misses_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_evictions_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_resident_bytes 4096\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_datasets{state=\"cached\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_datasets{state=\"known\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_requests_total{route=\"GET /sessions/:id\"} 3\n"),
            "{text}"
        );
        // 5 µs lands in the unit bucket [5,6) → le 0.000005; the two
        // 150 µs observations share [144,160) → le 0.000159.
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"0.000005\"} 1\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"0.000159\"} 3\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"+Inf\"} 3\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_sum{route=\"GET /sessions/:id\"} 0.000305\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_count{route=\"GET /sessions/:id\"} 3\n"
            ),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let escaped = escape_label("a\"b\\c\nd");
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn cumulative_bucket_counts_are_monotonic() {
        let mut hist = Histogram::new();
        for v in [1u64, 9, 70, 900, 12_000, 150_000] {
            hist.record(v);
        }
        let counters = Counters::default();
        let text = render(
            1.0,
            0,
            &counters,
            &[("r".to_owned(), hist)],
            &CatalogStats::default(),
        );
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("viewseeker_request_duration_seconds_bucket") {
                let value: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(value >= last, "{line}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, 7); // 6 distinct buckets + +Inf
        assert_eq!(last, 6);
    }
}
