//! Prometheus text exposition (format version 0.0.4) for `GET /metrics`.
//!
//! Every series the server can ever emit is declared once in the
//! `SERIES` table — name, TYPE, and HELP. [`render`] goes through an
//! `Exposition` writer that looks each family up in the table before
//! emitting its header, and `debug_assert!`s that a name is defined
//! exactly once and opened at most once per scrape. The `vslint`
//! metric-registry rule enforces the same contract statically: a series
//! in the table must be emitted somewhere and documented in DESIGN.md
//! and README.md, and no `viewseeker_*` literal may bypass the table.
//!
//! Durations are exported in seconds, as the Prometheus convention
//! requires; the underlying histograms store microseconds, so bucket
//! bounds convert as `(inclusive_µs) × 1e-6`. Only buckets that have
//! observations are emitted (plus the mandatory `+Inf` bucket) — with the
//! fixed log-linear layout, omitted buckets are unambiguously zero, and
//! the cumulative-count contract still holds.

use std::fmt::Write as _;

use viewseeker_catalog::CatalogStats;
use viewseeker_net::NetStats;

use crate::hist::Histogram;
use crate::metrics::Counters;

/// One exported series family: its name, exposition TYPE, and HELP text.
struct SeriesDef {
    name: &'static str,
    kind: &'static str,
    help: &'static str,
}

/// The single source of truth for the scrape surface. Checked at runtime
/// by [`Exposition`] debug assertions and statically by the vslint
/// metric-registry rule.
static SERIES: &[SeriesDef] = &[
    SeriesDef {
        name: "viewseeker_uptime_seconds",
        kind: "gauge",
        help: "Seconds since the server started.",
    },
    SeriesDef {
        name: "viewseeker_active_sessions",
        kind: "gauge",
        help: "Live sessions in the registry.",
    },
    SeriesDef {
        name: "viewseeker_worker_queue_depth",
        kind: "gauge",
        help: "Requests awaiting dispatch to a worker (event path: admission-queue length; blocking path: accepted connections not yet picked up).",
    },
    SeriesDef {
        name: "viewseeker_net_accepted_total",
        kind: "counter",
        help: "Connections accepted by the event reactor.",
    },
    SeriesDef {
        name: "viewseeker_net_shed_total",
        kind: "counter",
        help: "Requests shed with 503 by admission control.",
    },
    SeriesDef {
        name: "viewseeker_net_active_connections",
        kind: "gauge",
        help: "Connections currently open on the event reactor.",
    },
    SeriesDef {
        name: "viewseeker_net_read_stalls_total",
        kind: "counter",
        help: "Reads that drained the socket mid-request (request split across reads).",
    },
    SeriesDef {
        name: "viewseeker_net_write_stalls_total",
        kind: "counter",
        help: "Writes cut short by socket backpressure or the per-tick budget.",
    },
    SeriesDef {
        name: "viewseeker_net_loop_tick_seconds",
        kind: "histogram",
        help: "Busy reactor loop-tick duration.",
    },
    SeriesDef {
        name: "viewseeker_sessions_created_total",
        kind: "counter",
        help: "Sessions created.",
    },
    SeriesDef {
        name: "viewseeker_sessions_evicted_total",
        kind: "counter",
        help: "Sessions evicted (LRU or TTL).",
    },
    SeriesDef {
        name: "viewseeker_snapshots_total",
        kind: "counter",
        help: "Session snapshots written, by outcome.",
    },
    SeriesDef {
        name: "viewseeker_restores_total",
        kind: "counter",
        help: "Session restores, by outcome.",
    },
    SeriesDef {
        name: "viewseeker_feedback_labels_total",
        kind: "counter",
        help: "Feedback labels ingested.",
    },
    SeriesDef {
        name: "viewseeker_materialize_scans_total",
        kind: "counter",
        help: "Logical scans issued by offline view materialization across session builds.",
    },
    SeriesDef {
        name: "viewseeker_materialize_rows_total",
        kind: "counter",
        help: "Rows read by offline view materialization across session builds.",
    },
    SeriesDef {
        name: "viewseeker_materialize_seconds_total",
        kind: "counter",
        help: "Wall-clock seconds spent in offline view materialization across session builds.",
    },
    SeriesDef {
        name: "viewseeker_catalog_hits_total",
        kind: "counter",
        help: "Dataset resolutions served from memory.",
    },
    SeriesDef {
        name: "viewseeker_catalog_misses_total",
        kind: "counter",
        help: "Dataset resolutions that loaded from disk.",
    },
    SeriesDef {
        name: "viewseeker_catalog_evictions_total",
        kind: "counter",
        help: "Tables evicted from the catalog cache.",
    },
    SeriesDef {
        name: "viewseeker_catalog_resident_bytes",
        kind: "gauge",
        help: "Estimated bytes of tables held in memory.",
    },
    SeriesDef {
        name: "viewseeker_catalog_datasets",
        kind: "gauge",
        help: "Datasets known to the catalog, by residency.",
    },
    SeriesDef {
        name: "viewseeker_catalog_rowgroups_scanned_total",
        kind: "counter",
        help: "Row groups visited while evaluating session DQ predicates through zone maps.",
    },
    SeriesDef {
        name: "viewseeker_catalog_rowgroups_pruned_total",
        kind: "counter",
        help: "Row groups excluded by zone maps without reading a value.",
    },
    SeriesDef {
        name: "viewseeker_append_rows_total",
        kind: "counter",
        help: "Rows appended to catalog datasets.",
    },
    SeriesDef {
        name: "viewseeker_cluster_routed_total",
        kind: "counter",
        help: "Requests routed by the shard router, by ring member.",
    },
    SeriesDef {
        name: "viewseeker_cluster_forwarded_total",
        kind: "counter",
        help: "Requests forwarded to remote peers.",
    },
    SeriesDef {
        name: "viewseeker_cluster_forward_errors_total",
        kind: "counter",
        help: "Forwards that failed (peer down or timed out) and were answered with 503.",
    },
    SeriesDef {
        name: "viewseeker_cluster_migrated_sessions_total",
        kind: "counter",
        help: "Sessions moved between ring members by rebalance or drain, by outcome.",
    },
    SeriesDef {
        name: "viewseeker_cluster_shard_sessions",
        kind: "gauge",
        help: "Sessions resident on each local shard.",
    },
    SeriesDef {
        name: "viewseeker_cluster_forward_seconds",
        kind: "histogram",
        help: "Round-trip latency of requests forwarded to remote peers.",
    },
    SeriesDef {
        name: "viewseeker_requests_total",
        kind: "counter",
        help: "Requests handled, by route.",
    },
    SeriesDef {
        name: "viewseeker_request_duration_seconds",
        kind: "histogram",
        help: "Request latency, by route.",
    },
    SeriesDef {
        name: "viewseeker_request_stage_seconds",
        kind: "histogram",
        help: "Request latency broken down by pipeline stage (parse, queue_wait, dispatch, handler, serialize, write, and nested seeker phases), by route.",
    },
];

/// Incremental exposition writer. [`Exposition::series`] opens a family
/// (validating it against [`SERIES`] and emitting its HELP/TYPE header);
/// [`Exposition::sample`] appends one sample line to the open family.
///
/// In debug builds (and therefore in every test run) the writer fails a
/// `debug_assert!` on: a family missing from the table, a name defined
/// more than once in the table, a family opened twice in one scrape, or
/// a sample emitted before any header.
struct Exposition {
    out: String,
    open: Option<&'static str>,
    emitted: Vec<&'static str>,
}

impl Exposition {
    fn new() -> Self {
        Self {
            out: String::with_capacity(4096),
            open: None,
            emitted: Vec::with_capacity(SERIES.len()),
        }
    }

    /// Opens the family `name`: emits its `# HELP` / `# TYPE` header and
    /// makes it the target of subsequent [`Self::sample`] calls.
    fn series(&mut self, name: &'static str) {
        let mut defs = SERIES.iter().filter(|d| d.name == name);
        let def = defs.next();
        debug_assert!(def.is_some(), "series `{name}` is not defined in SERIES");
        debug_assert!(
            defs.next().is_none(),
            "series `{name}` defined more than once in SERIES"
        );
        debug_assert!(
            !self.emitted.contains(&name),
            "series `{name}` opened twice in one scrape"
        );
        self.emitted.push(name);
        self.open = Some(name);
        if let Some(def) = def {
            let _ = writeln!(self.out, "# HELP {} {}", def.name, def.help);
            let _ = writeln!(self.out, "# TYPE {} {}", def.name, def.kind);
        }
    }

    /// Appends `"<family><suffix><labels> <value>"` for the open family.
    /// `suffix` is `""` for plain samples or `"_bucket"` / `"_sum"` /
    /// `"_count"` for histogram sub-series; `labels` is either `""` or a
    /// pre-rendered `{key="value",..}` block.
    fn sample(&mut self, suffix: &str, labels: &str, value: impl std::fmt::Display) {
        debug_assert!(
            self.open.is_some(),
            "sample emitted before any series() header"
        );
        if let Some(name) = self.open {
            let _ = writeln!(self.out, "{name}{suffix}{labels} {value}");
        }
    }

    fn finish(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders integer microseconds as an exact decimal-seconds string
/// (`5 → "0.000005"`, `1_500_000 → "1.5"`), sidestepping the float
/// imprecision of `us as f64 * 1e-6`.
fn seconds(us: u64) -> String {
    let whole = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        return format!("{whole}");
    }
    let mut out = format!("{whole}.{frac:06}");
    while out.ends_with('0') {
        out.pop();
    }
    out
}

/// Renders the whole scrape payload.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn render(
    uptime_secs: f64,
    active_sessions: usize,
    counters: &Counters,
    histograms: &[(String, Histogram)],
    stages: &[(String, String, Histogram)],
    catalog: &CatalogStats,
    net: &NetStats,
    cluster: &viewseeker_cluster::ClusterStats,
) -> String {
    let mut exp = Exposition::new();

    exp.series("viewseeker_uptime_seconds");
    exp.sample("", "", uptime_secs);

    exp.series("viewseeker_active_sessions");
    exp.sample("", "", active_sessions);

    exp.series("viewseeker_worker_queue_depth");
    exp.sample("", "", counters.queue_depth());

    exp.series("viewseeker_net_accepted_total");
    exp.sample("", "", NetStats::get(&net.accepted));

    exp.series("viewseeker_net_shed_total");
    exp.sample("", "", NetStats::get(&net.shed));

    exp.series("viewseeker_net_active_connections");
    exp.sample("", "", NetStats::get(&net.active));

    exp.series("viewseeker_net_read_stalls_total");
    exp.sample("", "", NetStats::get(&net.read_stalls));

    exp.series("viewseeker_net_write_stalls_total");
    exp.sample("", "", NetStats::get(&net.write_stalls));

    exp.series("viewseeker_net_loop_tick_seconds");
    let ticks = net.tick_histogram();
    let mut cumulative = 0u64;
    for (bound_us, count) in ticks.nonzero_buckets() {
        cumulative += count;
        let labels = format!("{{le=\"{}\"}}", seconds(bound_us));
        exp.sample("_bucket", &labels, cumulative);
    }
    exp.sample("_bucket", "{le=\"+Inf\"}", ticks.count());
    exp.sample("_sum", "", seconds(ticks.sum_us()));
    exp.sample("_count", "", ticks.count());

    exp.series("viewseeker_sessions_created_total");
    exp.sample("", "", Counters::read(&counters.sessions_created));

    exp.series("viewseeker_sessions_evicted_total");
    exp.sample("", "", Counters::read(&counters.sessions_evicted));

    exp.series("viewseeker_snapshots_total");
    exp.sample(
        "",
        "{outcome=\"ok\"}",
        Counters::read(&counters.snapshots_ok),
    );
    exp.sample(
        "",
        "{outcome=\"error\"}",
        Counters::read(&counters.snapshots_failed),
    );

    exp.series("viewseeker_restores_total");
    exp.sample(
        "",
        "{outcome=\"ok\"}",
        Counters::read(&counters.restores_ok),
    );
    exp.sample(
        "",
        "{outcome=\"error\"}",
        Counters::read(&counters.restores_failed),
    );

    exp.series("viewseeker_feedback_labels_total");
    exp.sample("", "", Counters::read(&counters.feedback_labels));

    exp.series("viewseeker_materialize_scans_total");
    exp.sample("", "", Counters::read(&counters.materialize_scans));

    exp.series("viewseeker_materialize_rows_total");
    exp.sample("", "", Counters::read(&counters.materialize_rows));

    exp.series("viewseeker_materialize_seconds_total");
    exp.sample("", "", seconds(Counters::read(&counters.materialize_us)));

    exp.series("viewseeker_catalog_hits_total");
    exp.sample("", "", catalog.hits);

    exp.series("viewseeker_catalog_misses_total");
    exp.sample("", "", catalog.misses);

    exp.series("viewseeker_catalog_evictions_total");
    exp.sample("", "", catalog.evictions);

    exp.series("viewseeker_catalog_resident_bytes");
    exp.sample("", "", catalog.resident_bytes);

    exp.series("viewseeker_catalog_datasets");
    exp.sample("", "{state=\"cached\"}", catalog.cached_datasets);
    exp.sample("", "{state=\"known\"}", catalog.known_datasets);

    exp.series("viewseeker_catalog_rowgroups_scanned_total");
    exp.sample("", "", Counters::read(&counters.rowgroups_scanned));

    exp.series("viewseeker_catalog_rowgroups_pruned_total");
    exp.sample("", "", Counters::read(&counters.rowgroups_pruned));

    exp.series("viewseeker_append_rows_total");
    exp.sample("", "", catalog.append_rows);

    use viewseeker_cluster::ClusterStats;
    let members = cluster.members_snapshot();

    exp.series("viewseeker_cluster_routed_total");
    for member in &members {
        let labels = format!("{{shard=\"{}\"}}", escape_label(&member.name));
        exp.sample("", &labels, member.routed);
    }

    exp.series("viewseeker_cluster_forwarded_total");
    exp.sample("", "", ClusterStats::get(&cluster.forwarded));

    exp.series("viewseeker_cluster_forward_errors_total");
    exp.sample("", "", ClusterStats::get(&cluster.forward_errors));

    exp.series("viewseeker_cluster_migrated_sessions_total");
    exp.sample(
        "",
        "{outcome=\"ok\"}",
        ClusterStats::get(&cluster.migrated_ok),
    );
    exp.sample(
        "",
        "{outcome=\"error\"}",
        ClusterStats::get(&cluster.migrated_err),
    );

    exp.series("viewseeker_cluster_shard_sessions");
    for member in members.iter().filter(|m| m.local) {
        let labels = format!("{{shard=\"{}\"}}", escape_label(&member.name));
        exp.sample("", &labels, member.sessions);
    }

    exp.series("viewseeker_cluster_forward_seconds");
    let forwards = cluster.forward_histogram();
    let mut cumulative = 0u64;
    for (bound_us, count) in forwards.nonzero_buckets() {
        cumulative += count;
        let labels = format!("{{le=\"{}\"}}", seconds(bound_us));
        exp.sample("_bucket", &labels, cumulative);
    }
    exp.sample("_bucket", "{le=\"+Inf\"}", forwards.count());
    exp.sample("_sum", "", seconds(forwards.sum_us()));
    exp.sample("_count", "", forwards.count());

    exp.series("viewseeker_requests_total");
    for (route, hist) in histograms {
        let labels = format!("{{route=\"{}\"}}", escape_label(route));
        exp.sample("", &labels, hist.count());
    }

    exp.series("viewseeker_request_duration_seconds");
    for (route, hist) in histograms {
        let route = escape_label(route);
        let mut cumulative = 0u64;
        for (bound_us, count) in hist.nonzero_buckets() {
            cumulative += count;
            let labels = format!("{{route=\"{route}\",le=\"{}\"}}", seconds(bound_us));
            exp.sample("_bucket", &labels, cumulative);
        }
        let labels = format!("{{route=\"{route}\",le=\"+Inf\"}}");
        exp.sample("_bucket", &labels, hist.count());
        let labels = format!("{{route=\"{route}\"}}");
        exp.sample("_sum", &labels, seconds(hist.sum_us()));
        exp.sample("_count", &labels, hist.count());
    }

    exp.series("viewseeker_request_stage_seconds");
    for (route, stage, hist) in stages {
        let route = escape_label(route);
        let stage = escape_label(stage);
        let mut cumulative = 0u64;
        for (bound_us, count) in hist.nonzero_buckets() {
            cumulative += count;
            let labels = format!(
                "{{route=\"{route}\",stage=\"{stage}\",le=\"{}\"}}",
                seconds(bound_us)
            );
            exp.sample("_bucket", &labels, cumulative);
        }
        let labels = format!("{{route=\"{route}\",stage=\"{stage}\",le=\"+Inf\"}}");
        exp.sample("_bucket", &labels, hist.count());
        let labels = format!("{{route=\"{route}\",stage=\"{stage}\"}}");
        exp.sample("_sum", &labels, seconds(hist.sum_us()));
        exp.sample("_count", &labels, hist.count());
    }

    exp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape() -> String {
        let counters = Counters::default();
        Counters::bump(&counters.sessions_created);
        Counters::bump(&counters.feedback_labels);
        Counters::bump(&counters.feedback_labels);
        Counters::add(&counters.materialize_scans, 2);
        Counters::add(&counters.materialize_rows, 6_000);
        Counters::add(&counters.materialize_us, 2_500);
        Counters::add(&counters.rowgroups_scanned, 14);
        Counters::add(&counters.rowgroups_pruned, 50);
        let mut hist = Histogram::new();
        hist.record(5);
        hist.record(150);
        hist.record(150);
        let catalog = CatalogStats {
            hits: 7,
            misses: 2,
            evictions: 1,
            resident_bytes: 4096,
            cached_datasets: 2,
            known_datasets: 3,
            append_rows: 1_200,
        };
        let net = NetStats::new();
        net.accepted.store(9, std::sync::atomic::Ordering::Relaxed);
        net.shed.store(4, std::sync::atomic::Ordering::Relaxed);
        net.active.store(2, std::sync::atomic::Ordering::Relaxed);
        net.record_tick(50);
        net.record_tick(50);
        let mut stage_hist = Histogram::new();
        stage_hist.record(100);
        let cluster = viewseeker_cluster::ClusterStats::new();
        cluster.set_members(&[("local-0".to_owned(), true), ("peer-x:1".to_owned(), false)]);
        cluster.bump_routed(0);
        cluster.bump_routed(1);
        cluster.bump_routed(1);
        cluster.set_sessions(0, 3);
        cluster
            .forwarded
            .store(2, std::sync::atomic::Ordering::Relaxed);
        cluster
            .migrated_ok
            .store(1, std::sync::atomic::Ordering::Relaxed);
        cluster.record_forward(150);
        render(
            12.5,
            3,
            &counters,
            &[("GET /sessions/:id".to_owned(), hist)],
            &[(
                "GET /sessions/:id".to_owned(),
                "handler".to_owned(),
                stage_hist,
            )],
            &catalog,
            &net,
            &cluster,
        )
    }

    /// Golden test for the exposition format: every line is either a
    /// comment or `name[{labels}] value`, and the series the scrape
    /// promises are all present with the right values.
    #[test]
    fn text_format_is_well_formed() {
        let text = scrape();
        for line in text.lines() {
            assert!(!line.is_empty(), "blank line in scrape");
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect(line);
            assert!(
                series.starts_with("viewseeker_"),
                "unprefixed series: {line}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value: {line}"
            );
            // No scientific notation: Prometheus accepts it, but fixed
            // decimals keep the golden expectations simple and diffable.
            assert!(!value.contains('e') && !value.contains('E'), "{line}");
        }
    }

    #[test]
    fn golden_series_and_values() {
        let text = scrape();
        assert!(text.contains("viewseeker_uptime_seconds 12.5\n"), "{text}");
        assert!(text.contains("viewseeker_active_sessions 3\n"), "{text}");
        assert!(text.contains("viewseeker_worker_queue_depth 0\n"), "{text}");
        assert!(
            text.contains("viewseeker_sessions_created_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_feedback_labels_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_snapshots_total{outcome=\"ok\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_scans_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_rows_total 6000\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_materialize_seconds_total 0.0025\n"),
            "{text}"
        );
        assert!(text.contains("viewseeker_net_accepted_total 9\n"), "{text}");
        assert!(text.contains("viewseeker_net_shed_total 4\n"), "{text}");
        assert!(
            text.contains("viewseeker_net_active_connections 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_net_read_stalls_total 0\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_net_write_stalls_total 0\n"),
            "{text}"
        );
        // Two 50 µs ticks share the [48,52) bucket → le 0.000051.
        assert!(
            text.contains("viewseeker_net_loop_tick_seconds_bucket{le=\"0.000051\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_net_loop_tick_seconds_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_net_loop_tick_seconds_count 2\n"),
            "{text}"
        );
        assert!(text.contains("viewseeker_catalog_hits_total 7\n"), "{text}");
        assert!(
            text.contains("viewseeker_catalog_misses_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_evictions_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_resident_bytes 4096\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_datasets{state=\"cached\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_datasets{state=\"known\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_rowgroups_scanned_total 14\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_catalog_rowgroups_pruned_total 50\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_append_rows_total 1200\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_routed_total{shard=\"local-0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_routed_total{shard=\"peer-x:1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_forwarded_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_forward_errors_total 0\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_migrated_sessions_total{outcome=\"ok\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_migrated_sessions_total{outcome=\"error\"} 0\n"),
            "{text}"
        );
        // Only the local member has a session gauge.
        assert!(
            text.contains("viewseeker_cluster_shard_sessions{shard=\"local-0\"} 3\n"),
            "{text}"
        );
        assert!(
            !text.contains("viewseeker_cluster_shard_sessions{shard=\"peer-x:1\"}"),
            "{text}"
        );
        // The single 150 µs forward lands in [144,160) → le 0.000159.
        assert!(
            text.contains("viewseeker_cluster_forward_seconds_bucket{le=\"0.000159\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_cluster_forward_seconds_count 1\n"),
            "{text}"
        );
        assert!(
            text.contains("viewseeker_requests_total{route=\"GET /sessions/:id\"} 3\n"),
            "{text}"
        );
        // 5 µs lands in the unit bucket [5,6) → le 0.000005; the two
        // 150 µs observations share [144,160) → le 0.000159.
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"0.000005\"} 1\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"0.000159\"} 3\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_bucket{route=\"GET /sessions/:id\",le=\"+Inf\"} 3\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_sum{route=\"GET /sessions/:id\"} 0.000305\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_duration_seconds_count{route=\"GET /sessions/:id\"} 3\n"
            ),
            "{text}"
        );
        // The 100 µs stage observation lands in [96,104) → le 0.000103.
        assert!(
            text.contains(
                "viewseeker_request_stage_seconds_bucket{route=\"GET /sessions/:id\",stage=\"handler\",le=\"+Inf\"} 1\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "viewseeker_request_stage_seconds_count{route=\"GET /sessions/:id\",stage=\"handler\"} 1\n"
            ),
            "{text}"
        );
    }

    /// Every family the table promises appears in a scrape with a header,
    /// so the table can never accumulate dead entries unnoticed.
    #[test]
    fn every_table_entry_is_scraped() {
        let text = scrape();
        for def in SERIES {
            assert!(
                text.contains(&format!("# TYPE {} {}\n", def.name, def.kind)),
                "series `{}` defined but absent from the scrape",
                def.name
            );
        }
    }

    #[test]
    fn series_table_has_unique_names() {
        let mut names: Vec<&str> = SERIES.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let total = names.len();
        names.dedup();
        assert_eq!(total, names.len(), "duplicate name in SERIES");
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn duplicate_family_emission_fails_debug_assert() {
        let mut exp = Exposition::new();
        exp.series("viewseeker_uptime_seconds");
        exp.series("viewseeker_uptime_seconds");
    }

    #[test]
    #[should_panic(expected = "not defined in SERIES")]
    fn unregistered_family_fails_debug_assert() {
        let mut exp = Exposition::new();
        exp.series("viewseeker_rogue_total");
    }

    #[test]
    fn label_values_are_escaped() {
        let escaped = escape_label("a\"b\\c\nd");
        assert_eq!(escaped, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn cumulative_bucket_counts_are_monotonic() {
        let mut hist = Histogram::new();
        for v in [1u64, 9, 70, 900, 12_000, 150_000] {
            hist.record(v);
        }
        let counters = Counters::default();
        let text = render(
            1.0,
            0,
            &counters,
            &[("r".to_owned(), hist)],
            &[],
            &CatalogStats::default(),
            &NetStats::new(),
            &viewseeker_cluster::ClusterStats::new(),
        );
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("viewseeker_request_duration_seconds_bucket") {
                let value: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(value >= last, "{line}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, 7); // 6 distinct buckets + +Inf
        assert_eq!(last, 6);
    }
}
