//! End-to-end test for the dataset catalog over real HTTP: upload a CSV,
//! run the full interactive loop against it, verify the delete-with-live-
//! sessions refcount guard, and check the catalog series in the
//! Prometheus scrape. A second server over the same `--data-dir` proves
//! the VSC1 store survives restarts.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use viewseeker_server::{serve_app, LogFormat, LogLevel, ServerConfig};

/// Minimal HTTP/1.1 client: one connection per request, returns
/// `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// Pulls `"key":<value>` out of a flat JSON object without a parser.
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| (*c == ',' || *c == '}' || *c == ']') && !rest[..*i].ends_with('\\'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].trim_matches('"')
}

fn scrape_value(scrape: &str, series: &str) -> f64 {
    scrape
        .lines()
        .find_map(|line| line.strip_prefix(series)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no series {series:?} in scrape:\n{scrape}"))
}

/// A small sales table with enough structure for views to differ: three
/// categorical regions, three products, a numeric-dimension age, and a
/// measure whose distribution shifts with the region.
fn sales_csv(rows: usize) -> String {
    let mut csv = String::from("region,product,n_age,m_sales\n");
    for i in 0..rows {
        let region = ["west", "east", "north"][i % 3];
        let product = ["widget", "gadget"][i % 2];
        let age = 20 + (i * 7) % 50;
        let sales = match region {
            "west" => 100.0 + (i % 13) as f64 * 9.0,
            "east" => 40.0 + (i % 7) as f64 * 2.0,
            _ => 70.0 + (i % 5) as f64 * 4.0,
        };
        csv.push_str(&format!("{region},{product},{age},{sales:.1}\n"));
    }
    csv
}

fn server(data_dir: &std::path::Path) -> viewseeker_server::AppHandle {
    serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        snapshot_dir: None,
        data_dir: Some(data_dir.to_path_buf()),
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        ..Default::default()
    })
    .expect("bind")
}

/// The append path end-to-end: rows appended under live sessions are
/// folded into their aggregates (the absorbed session agrees with a fresh
/// session built over the grown table), the append is durable as VSC2,
/// and a restart cold-starts from the mapped store with identical bodies.
#[test]
fn append_under_live_sessions_and_mmap_cold_start() {
    let dir = std::env::temp_dir().join(format!("vs-e2e-append-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = server(&dir);
    let addr = handle.addr();

    let csv = sales_csv(240);
    let (status, _) = call(addr, "POST", "/datasets/sales", &csv);
    assert_eq!(status, 201);

    // A live session built before the append, with no feedback yet.
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "sales", "query": "region = 'west'"}"#,
    );
    assert_eq!(status, 201, "{body}");
    let live = json_field(&body, "id").to_owned();

    // Append 12 fresh rows (header required, same schema).
    let mut tail = String::from("region,product,n_age,m_sales\n");
    for i in 0..12 {
        let region = ["west", "east"][i % 2];
        tail.push_str(&format!(
            "{region},widget,{},{:.1}\n",
            30 + i,
            500.0 + i as f64
        ));
    }
    let (status, body) = call(addr, "POST", "/datasets/sales/rows", &tail);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "appended"), "12");
    assert_eq!(json_field(&body, "total_rows"), "252");
    assert_eq!(json_field(&body, "sessions_updated"), "1");
    let (status, body) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "rows"), "252");

    // Appending a schema mismatch is a client error and changes nothing.
    let (status, _) = call(addr, "POST", "/datasets/sales/rows", "bogus\n1\n");
    assert_eq!(status, 400);

    // The live session absorbed the new rows: with no labels on either
    // side, its next-view ranking must agree with a session built from
    // scratch over the grown table.
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "sales", "query": "region = 'west'"}"#,
    );
    assert_eq!(status, 201, "{body}");
    let fresh = json_field(&body, "id").to_owned();
    let (status, live_next) = call(addr, "GET", &format!("/sessions/{live}/next?m=1"), "");
    assert_eq!(status, 200, "{live_next}");
    let (status, fresh_next) = call(addr, "GET", &format!("/sessions/{fresh}/next?m=1"), "");
    assert_eq!(status, 200, "{fresh_next}");
    assert_eq!(
        json_field(&live_next, "id"),
        json_field(&fresh_next, "id"),
        "absorbed session ranks differently than a fresh session over the grown table"
    );
    // Feedback and recommend both run over the absorbed (grown) table.
    for score in [0.9, 0.2, 0.7] {
        let (status, body) = call(addr, "GET", &format!("/sessions/{live}/next?m=1"), "");
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        let (status, body) = call(
            addr,
            "POST",
            &format!("/sessions/{live}/feedback"),
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = call(addr, "GET", &format!("/sessions/{live}/recommend?k=2"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("FROM sales"), "{body}");

    // Appends upgraded the store to VSC2 on disk, and the scrape carries
    // the append/pruning counters.
    let manifest = std::fs::read_to_string(dir.join("sales").join("manifest.json")).unwrap();
    assert!(manifest.contains("\"format\": \"VSC2\""), "{manifest}");
    let (status, scrape) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(scrape_value(&scrape, "viewseeker_append_rows_total "), 12.0);
    assert!(
        scrape.contains("viewseeker_catalog_rowgroups_scanned_total "),
        "{scrape}"
    );

    // Restart over the same directory: the VSC2 store cold-starts (numeric
    // columns mapped, not decoded) and serves byte-identical dataset
    // bodies and a working session.
    let (status, before) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 200);
    handle.shutdown();
    let handle = server(&dir);
    let addr = handle.addr();
    let (status, after) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 200);
    assert_eq!(before, after, "cold start changed the dataset body");
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "sales", "query": "region = 'west'"}"#,
    );
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();
    let (status, body) = call(addr, "GET", &format!("/sessions/{id}/next?m=1"), "");
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csv_upload_session_loop_delete_guard_and_metrics() {
    let dir = std::env::temp_dir().join(format!("vs-e2e-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = server(&dir);
    let addr = handle.addr();

    // --- Upload: raw CSV body, no multipart. ---
    let csv = sales_csv(240);
    let (status, body) = call(addr, "POST", "/datasets/sales", &csv);
    assert_eq!(status, 201, "{body}");
    assert_eq!(json_field(&body, "name"), "sales");
    assert_eq!(json_field(&body, "rows"), "240");
    let checksum = json_field(&body, "checksum").to_owned();
    assert_eq!(checksum.len(), 16, "{checksum}");

    // Duplicate name is a conflict; bad names are client errors.
    let (status, body) = call(addr, "POST", "/datasets/sales", &csv);
    assert_eq!(status, 409, "{body}");
    let (status, _) = call(addr, "POST", "/datasets/bad%20name", &csv);
    assert_eq!(status, 400);
    let (status, _) = call(addr, "POST", "/datasets/diab", &csv);
    assert_eq!(status, 400, "reserved generator name must be rejected");

    // --- Listing and detail. ---
    let (status, body) = call(addr, "GET", "/datasets", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"name\":\"sales\""), "{body}");
    let (status, body) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"resident_bytes\":"), "{body}");
    // region has 3 distinct values; the schema convention mapped the
    // columns as promised.
    assert!(
        body.contains(
            r#"{"name":"region","kind":"categorical","role":"dimension","cardinality":3}"#
        ),
        "{body}"
    );
    assert!(
        body.contains(r#"{"name":"m_sales","kind":"numeric","role":"measure""#),
        "{body}"
    );
    let (status, _) = call(addr, "GET", "/datasets/ghost", "");
    assert_eq!(status, 404);

    // --- Two sessions over the uploaded dataset drive the full loop. ---
    let mut sessions = Vec::new();
    for _ in 0..2 {
        let (status, body) = call(
            addr,
            "POST",
            "/sessions",
            r#"{"dataset": "sales", "query": "region = 'west'"}"#,
        );
        assert_eq!(status, 201, "{body}");
        sessions.push(json_field(&body, "id").to_owned());
    }
    for id in &sessions {
        for score in [0.9, 0.2, 0.7] {
            let (status, body) = call(addr, "GET", &format!("/sessions/{id}/next?m=1"), "");
            assert_eq!(status, 200, "{body}");
            let view = json_field(&body, "id").to_owned();
            let (status, body) = call(
                addr,
                "POST",
                &format!("/sessions/{id}/feedback"),
                &format!("{{\"view\": {view}, \"score\": {score}}}"),
            );
            assert_eq!(status, 200, "{body}");
        }
        let (status, body) = call(addr, "GET", &format!("/sessions/{id}/recommend?k=3"), "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"sql\":"), "{body}");
        assert!(body.contains("FROM sales"), "{body}");
    }

    // Asking a stored dataset for generator parameters is a client error.
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "sales", "rows": 100}"#,
    );
    assert_eq!(status, 400, "{body}");

    // --- Refcount guard: live sessions hold the table. ---
    let (status, body) = call(addr, "DELETE", "/datasets/sales", "");
    assert_eq!(status, 409, "{body}");
    for id in &sessions {
        let (status, _) = call(addr, "DELETE", &format!("/sessions/{id}"), "");
        assert_eq!(status, 200);
    }

    // --- Catalog series in the Prometheus scrape. ---
    let (status, scrape) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // Both session creates resolved "sales" from memory.
    assert!(
        scrape_value(&scrape, "viewseeker_catalog_hits_total ") >= 2.0,
        "{scrape}"
    );
    assert!(
        scrape.contains("viewseeker_catalog_misses_total "),
        "{scrape}"
    );
    assert!(
        scrape_value(&scrape, "viewseeker_catalog_resident_bytes ") > 0.0,
        "{scrape}"
    );
    assert_eq!(
        scrape_value(&scrape, "viewseeker_catalog_datasets{state=\"known\"} "),
        1.0,
        "{scrape}"
    );

    // --- Restart over the same data dir: the VSC1 store survives. ---
    handle.shutdown();
    let handle = server(&dir);
    let addr = handle.addr();
    let (status, body) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "checksum"), checksum);
    // A fresh session works straight from the reloaded store.
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "sales", "query": "region = 'west'"}"#,
    );
    assert_eq!(status, 201, "{body}");

    // --- With no live sessions holding it, delete now succeeds. ---
    let id = json_field(&body, "id").to_owned();
    let (status, _) = call(addr, "DELETE", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200);
    let (status, body) = call(addr, "DELETE", "/datasets/sales", "");
    assert_eq!(status, 200, "{body}");
    let (status, _) = call(addr, "GET", "/datasets/sales", "");
    assert_eq!(status, 404);
    assert!(
        !dir.join("sales").exists(),
        "dataset directory must be removed from disk"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
