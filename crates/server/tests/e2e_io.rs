//! Differential end-to-end test between the two I/O paths: the blocking
//! pool (`--io blocking`, the oracle) and the epoll reactor
//! (`--io event`). The same deterministic session script must produce
//! bit-identical response bodies on both — recommendation payloads
//! included — because sessions are seeded and the handler stack above the
//! I/O layer is shared.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use viewseeker_server::{serve_app, AppHandle, IoModel, LogFormat, LogLevel, ServerConfig};

fn server(io: IoModel) -> AppHandle {
    serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        snapshot_dir: None,
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        io,
        ..Default::default()
    })
    .expect("bind")
}

/// Content-Length-framed client call over a persistent connection.
fn call(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    (&*stream).write_all(request.as_bytes()).expect("send");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| *c == ',' || *c == '}' || *c == ']' && !rest[..*i].ends_with('\\'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].trim_matches('"')
}

/// Zeroes the wall-clock microsecond fields (`*_us`), the only
/// legitimately nondeterministic bytes in a response body; everything
/// else — ids, view sets, scores, recommendation order — must match
/// exactly between the two I/O paths.
fn zero_timings(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(pos) = rest.find("_us\":") {
        let keep = pos + "_us\":".len();
        out.push_str(&rest[..keep]);
        out.push('0');
        rest = &rest[keep..];
        let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

/// Runs the deterministic interactive loop against `addr` over ONE
/// keep-alive connection and returns every response body, in order.
fn drive(addr: SocketAddr) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut transcript = Vec::new();

    let spec = "{\"dataset\": \"diab\", \"rows\": 600, \"seed\": 7, \"query\": \"a0 = 'a0_v0'\"}";
    let (status, body) = call(&stream, &mut reader, "POST", "/sessions", spec);
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();
    transcript.push(body);

    for score in [0.9, 0.1, 0.7] {
        let (status, body) = call(
            &stream,
            &mut reader,
            "GET",
            &format!("/sessions/{id}/next?m=1"),
            "",
        );
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        transcript.push(body);
        let (status, body) = call(
            &stream,
            &mut reader,
            "POST",
            &format!("/sessions/{id}/feedback"),
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
        transcript.push(body);
    }

    let (status, body) = call(
        &stream,
        &mut reader,
        "GET",
        &format!("/sessions/{id}/recommend?k=3"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    transcript.push(body);

    let (status, body) = call(
        &stream,
        &mut reader,
        "DELETE",
        &format!("/sessions/{id}"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    transcript.push(body);
    transcript
}

#[test]
fn blocking_and_event_paths_serve_bit_identical_bodies() {
    let blocking = server(IoModel::Blocking);
    let event = server(IoModel::Event);

    let oracle = drive(blocking.addr());
    let candidate = drive(event.addr());

    assert_eq!(
        oracle.len(),
        candidate.len(),
        "transcript lengths differ between I/O paths"
    );
    for (i, (a, b)) in oracle.iter().zip(&candidate).enumerate() {
        assert_eq!(
            zero_timings(a),
            zero_timings(b),
            "response {i} differs between blocking and event"
        );
    }

    blocking.shutdown();
    event.shutdown();
}

#[test]
fn both_paths_honor_connection_close_on_errors() {
    for io in [IoModel::Blocking, IoModel::Event] {
        let handle = server(io);
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read to EOF");
        assert!(raw.starts_with("HTTP/1.1 404"), "{io:?}: {raw}");
        assert!(
            raw.contains("Connection: close"),
            "{io:?} must echo close on errors: {raw}"
        );
        handle.shutdown();
    }
}
