//! End-to-end tests for the sharded session tier: deterministic
//! consistent-hash routing over real HTTP, live migration on
//! `POST /cluster/rebalance` with bit-identical snapshots, the merged
//! `GET /cluster` status, and peer forwarding (including the
//! peer-down → `503 + Retry-After` contract).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use viewseeker_server::{serve_app, LogFormat, LogLevel, ServerConfig};

/// Minimal HTTP/1.1 client: one connection per request, returns
/// `(status, headers, body)`.
fn call_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or_default();
    (status, head, payload)
}

fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = call_full(addr, method, path, body);
    (status, payload)
}

/// Pulls `"key":<value>` out of a flat JSON object without a parser.
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let rest = body[start..].trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| matches!(c, ',' | '}' | ']'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].trim().trim_matches('"')
}

fn spec(seed: u64) -> String {
    format!(
        "{{\"dataset\": \"diab\", \"rows\": 300, \"seed\": {seed}, \"query\": \"a0 = 'a0_v0'\"}}"
    )
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        max_sessions: 64,
        ttl: Duration::from_secs(600),
        snapshot_dir: None,
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        ..Default::default()
    }
}

/// Creates a session through `addr` and gives it `labels` rounds of
/// feedback; returns the session id.
fn seed_session(addr: SocketAddr, seed: u64, labels: &[f64]) -> String {
    let (status, body) = call(addr, "POST", "/sessions", &spec(seed));
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();
    for score in labels {
        let (status, body) = call(addr, "GET", &format!("/sessions/{id}/next?m=1"), "");
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        let (status, body) = call(
            addr,
            "POST",
            &format!("/sessions/{id}/feedback"),
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
    }
    id
}

#[test]
fn sharded_routing_is_deterministic_and_rebalance_migrates_live_sessions() {
    let handle = serve_app(&ServerConfig {
        shards: 2,
        ..config()
    })
    .expect("bind");
    let addr = handle.addr();

    // The merged /healthz reports the cluster shape.
    let (status, health) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    assert_eq!(json_field(&health, "shard_count"), "2", "{health}");
    assert_eq!(json_field(&health, "shard_id"), "0", "{health}");
    assert_eq!(json_field(&health, "io"), "event", "{health}");
    assert_eq!(json_field(&health, "tracing"), "true", "{health}");

    // Seed live sessions with real feedback so migration carries learned
    // estimator state, not blank sessions.
    let ids: Vec<String> = (0..6u64)
        .map(|i| seed_session(addr, i % 3, &[0.9, 0.2, 0.7]))
        .collect();

    // Deterministic routing: the same id answers correctly on every
    // request. A misroute would land on the shard that doesn't own the
    // session and 404.
    for id in &ids {
        for _ in 0..3 {
            let (status, body) = call(addr, "GET", &format!("/sessions/{id}"), "");
            assert_eq!(status, 200, "{body}");
            assert_eq!(json_field(&body, "id"), id, "{body}");
        }
    }

    // /cluster sees both local members and all sessions.
    let (status, cluster) = call(addr, "GET", "/cluster", "");
    assert_eq!(status, 200, "{cluster}");
    assert!(cluster.contains("\"local-0\""), "{cluster}");
    assert!(cluster.contains("\"local-1\""), "{cluster}");
    assert_eq!(json_field(&cluster, "local_shards"), "2", "{cluster}");
    assert_eq!(json_field(&cluster, "rebalancing"), "false", "{cluster}");

    // Capture each session's snapshot before the move; the restored
    // session must reproduce it bit for bit (estimators are a pure
    // function of the replayed labels).
    let before: Vec<String> = ids
        .iter()
        .map(|id| {
            let (status, body) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();

    // Hammer one session while the rebalance runs: every answer must be
    // a correct 200 or a retryable 503, never an error or a
    // wrong-session body.
    let probe_id = ids.first().expect("ids").clone();
    let (shed_seen, rebalance_body) = std::thread::scope(|s| {
        let probe = s.spawn({
            let probe_id = probe_id.clone();
            move || {
                let mut shed = 0u32;
                for _ in 0..60 {
                    let (status, head, body) =
                        call_full(addr, "GET", &format!("/sessions/{probe_id}"), "");
                    match status {
                        200 => assert_eq!(json_field(&body, "id"), probe_id, "{body}"),
                        503 => {
                            assert!(head.contains("Retry-After:"), "{head}");
                            shed += 1;
                        }
                        other => panic!("dropped request: {other} {body}"),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                shed
            }
        });
        let (status, body) = call(addr, "POST", "/cluster/rebalance", "{\"shards\": 1}");
        assert_eq!(status, 200, "{body}");
        (probe.join().expect("probe thread"), body)
    });
    // Sessions that lived on local-1 moved to local-0 (how many is up to
    // the ring, but a 6-session spread landing all on one member is
    // vanishingly unlikely).
    let migrated: u64 = json_field(&rebalance_body, "migrated")
        .parse()
        .expect("count");
    assert!(migrated >= 1, "{rebalance_body}");
    assert_eq!(
        json_field(&rebalance_body, "errors"),
        "0",
        "{rebalance_body}"
    );
    // The probe may or may not have overlapped the shed window; either
    // way it never saw a dropped request (the panic above).
    let _ = shed_seen;

    // Every session survived the move with bit-identical snapshots.
    for (id, old) in ids.iter().zip(&before) {
        let (status, body) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, old, "snapshot changed across migration for {id}");
    }

    // /cluster reflects the new shape and the migration counters.
    let (status, cluster) = call(addr, "GET", "/cluster", "");
    assert_eq!(status, 200, "{cluster}");
    assert_eq!(json_field(&cluster, "local_shards"), "1", "{cluster}");
    let migrated_ok: u64 = json_field(&cluster, "migrated_ok").parse().expect("count");
    assert_eq!(migrated_ok, migrated, "{cluster}");
    assert_eq!(json_field(&cluster, "migrated_err"), "0", "{cluster}");

    // Growing back redistributes onto both shards and stays lossless.
    let (status, body) = call(addr, "POST", "/cluster/rebalance", "{\"shards\": 2}");
    assert_eq!(status, 200, "{body}");
    for (id, old) in ids.iter().zip(&before) {
        let (status, body) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, old, "snapshot changed across re-grow for {id}");
    }

    // Out-of-range targets are rejected without touching anything.
    let (status, body) = call(addr, "POST", "/cluster/rebalance", "{\"shards\": 9}");
    assert_eq!(status, 400, "{body}");
    let (status, body) = call(addr, "POST", "/cluster/rebalance", "{}");
    assert_eq!(status, 400, "{body}");

    handle.shutdown();
}

#[test]
fn peer_topology_forwards_by_ring_owner_and_sheds_when_the_peer_dies() {
    // B: a plain single-shard server; A: fronts the ring {local-0, B}.
    let peer_handle = serve_app(&config()).expect("bind peer");
    let peer_addr = peer_handle.addr();
    let handle = serve_app(&ServerConfig {
        peers: vec![peer_addr.to_string()],
        ..config()
    })
    .expect("bind router");
    let addr = handle.addr();

    let (status, cluster) = call(addr, "GET", "/cluster", "");
    assert_eq!(status, 200, "{cluster}");
    assert!(cluster.contains("\"local-0\""), "{cluster}");
    assert!(
        cluster.contains(&format!("\"peer-{peer_addr}\"")),
        "{cluster}"
    );

    // Create sessions through A until the ring has placed at least one
    // on each member (20 tries make an all-on-one-member spread
    // astronomically unlikely).
    let mut ids = Vec::new();
    for i in 0..20u64 {
        ids.push(seed_session(addr, i % 3, &[0.8]));
        let (_, sessions) = call(peer_addr, "GET", "/sessions", "");
        if sessions.contains("\"id\"") && ids.iter().any(|id| sessions.contains(id.as_str())) {
            break;
        }
    }
    let (_, peer_sessions) = call(peer_addr, "GET", "/sessions", "");
    let remote_id = ids
        .iter()
        .find(|id| peer_sessions.contains(id.as_str()))
        .expect("no session landed on the peer")
        .clone();

    // The peer-owned session answers through A (forwarded), and the
    // merged /sessions view includes it.
    let (status, body) = call(addr, "GET", &format!("/sessions/{remote_id}"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "id"), remote_id, "{body}");
    let (status, merged) = call(addr, "GET", "/sessions", "");
    assert_eq!(status, 200, "{merged}");
    assert!(merged.contains(remote_id.as_str()), "{merged}");

    let (status, cluster) = call(addr, "GET", "/cluster", "");
    assert_eq!(status, 200, "{cluster}");
    let forwarded: u64 = json_field(&cluster, "forwarded").parse().expect("count");
    assert!(forwarded >= 1, "{cluster}");

    // Kill the peer: its sessions now answer 503 + Retry-After through
    // A — a retryable shed, never a connection error — and /cluster
    // marks the member down.
    peer_handle.shutdown();
    let (status, head, _) = call_full(addr, "GET", &format!("/sessions/{remote_id}"), "");
    assert_eq!(status, 503, "{head}");
    assert!(head.contains("Retry-After:"), "{head}");
    let (status, cluster) = call(addr, "GET", "/cluster", "");
    assert_eq!(status, 200, "{cluster}");
    assert!(cluster.contains("\"up\":false"), "{cluster}");

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_local_sessions_to_the_peers() {
    let peer_handle = serve_app(&config()).expect("bind peer");
    let peer_addr = peer_handle.addr();
    let handle = serve_app(&ServerConfig {
        peers: vec![peer_addr.to_string()],
        ..config()
    })
    .expect("bind router");
    let addr = handle.addr();

    // Place sessions through A; at least one stays local over 8 tries.
    let ids: Vec<String> = (0..8u64)
        .map(|i| seed_session(addr, i % 3, &[0.6]))
        .collect();
    let snapshots: Vec<(String, String)> = ids
        .iter()
        .map(|id| {
            let (status, body) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
            assert_eq!(status, 200, "{body}");
            (id.clone(), body)
        })
        .collect();

    // Graceful shutdown migrates every local session to the peer ring.
    handle.shutdown();

    // All sessions — wherever they lived — are now on B, states intact.
    for (id, old) in &snapshots {
        let (status, body) = call(peer_addr, "POST", &format!("/sessions/{id}/snapshot"), "");
        assert_eq!(status, 200, "session {id} lost in drain: {body}");
        assert_eq!(&body, old, "snapshot changed across drain for {id}");
    }

    peer_handle.shutdown();
}
