//! End-to-end test over real HTTP: one server, many concurrent client
//! threads, each driving the full interactive loop (create → next-views →
//! feedback ×n → recommend → snapshot → restore) through actual TCP
//! sockets. Verifies session isolation, eviction-snapshot fidelity, and the
//! `/healthz` metrics contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use viewseeker_server::{serve_app, LogFormat, LogLevel, ServerConfig};

/// Minimal HTTP/1.1 client: one connection per request, returns
/// `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// Pulls `"key":<value>` out of a flat JSON object without a parser
/// (values this test reads are numbers and simple strings).
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| (*c == ',' || *c == '}' || *c == ']') && !rest[..*i].ends_with('\\'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].trim_matches('"')
}

fn spec(seed: u64) -> String {
    format!(
        "{{\"dataset\": \"diab\", \"rows\": 800, \"seed\": {seed}, \"query\": \"a0 = 'a0_v0'\"}}"
    )
}

/// One client's full interactive loop; returns `(session_id, top1_view)`.
fn drive_session(addr: SocketAddr, seed: u64, labels: &[f64]) -> (String, String) {
    let (status, body) = call(addr, "POST", "/sessions", &spec(seed));
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();

    for score in labels {
        let (status, body) = call(addr, "GET", &format!("/sessions/{id}/next?m=1"), "");
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        let (status, body) = call(
            addr,
            "POST",
            &format!("/sessions/{id}/feedback"),
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
    }

    let (status, body) = call(addr, "GET", &format!("/sessions/{id}/recommend?k=3"), "");
    assert_eq!(status, 200, "{body}");
    let top1 = json_field(&body, "id").to_owned();
    (id, top1)
}

#[test]
fn concurrent_sessions_full_loop_over_http() {
    let dir = std::env::temp_dir().join(format!("vs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        max_sessions: 32,
        ttl: Duration::from_secs(600),
        snapshot_dir: Some(dir.clone()),
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        ..Default::default()
    })
    .expect("bind");
    let addr = handle.addr();

    // --- 8 concurrent clients, each with its own session and distinct
    // feedback; all drive the loop at the same time over real sockets. ---
    let outcomes: Vec<(u64, String, String)> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..8u64)
            .map(|client| {
                s.spawn(move || {
                    // Distinct label sequences per client.
                    let labels: Vec<f64> = (0..4)
                        .map(|i| ((client + 1) as f64 * (i + 1) as f64 * 0.031) % 1.0)
                        .collect();
                    let (id, top1) = drive_session(addr, client % 3, &labels);
                    (client, id, top1)
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client"))
            .collect()
    });

    // Sessions are isolated: every client got a distinct id...
    let mut ids: Vec<&str> = outcomes.iter().map(|(_, id, _)| id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8, "expected 8 distinct sessions: {outcomes:?}");
    // ...and each holds exactly its own 4 labels.
    for (_, id, _) in &outcomes {
        let (status, body) = call(addr, "GET", &format!("/sessions/{id}"), "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(json_field(&body, "labels"), "4", "{body}");
    }

    // --- snapshot → delete → restore round trip over HTTP ---
    let (_, id, top1) = &outcomes[0];
    let (status, snapshot_body) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
    assert_eq!(status, 200, "{snapshot_body}");
    let (status, _) = call(addr, "DELETE", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200);
    let (status, body) = call(addr, "POST", "/sessions/restore", &snapshot_body);
    assert_eq!(status, 201, "{body}");
    assert_eq!(json_field(&body, "id"), id, "{body}");
    assert_eq!(json_field(&body, "labels"), "4", "{body}");
    // The restored session ranks views exactly as the original did.
    let (status, body) = call(addr, "GET", &format!("/sessions/{id}/recommend?k=3"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(&json_field(&body, "id").to_owned(), top1, "{body}");

    // --- healthz: per-endpoint counts and latency percentiles ---
    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    for route in [
        "POST /sessions",
        "GET /sessions/:id/next",
        "POST /sessions/:id/feedback",
        "GET /sessions/:id/recommend",
    ] {
        assert!(body.contains(route), "missing {route} in {body}");
    }
    for field in ["\"count\":", "\"p50_us\":", "\"p90_us\":", "\"p99_us\":"] {
        assert!(body.contains(field), "missing {field} in {body}");
    }
    // 8 clients × 4 labels = 32 feedback calls were counted.
    let feedback_section = body
        .split("POST /sessions/:id/feedback")
        .nth(1)
        .expect("feedback section");
    assert_eq!(json_field(feedback_section, "count"), "32", "{body}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads a single-sample series value from a Prometheus scrape.
fn scrape_value(scrape: &str, series: &str) -> f64 {
    scrape
        .lines()
        .find_map(|line| line.strip_prefix(series)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no series {series:?} in scrape:\n{scrape}"))
}

#[test]
fn metrics_counters_move_across_the_session_lifecycle() {
    let dir = std::env::temp_dir().join(format!("vs-e2e-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 1, // the second create evicts the first
        ttl: Duration::from_secs(600),
        snapshot_dir: Some(dir.clone()),
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        ..Default::default()
    })
    .expect("bind");
    let addr = handle.addr();

    let (status, before) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{before}");
    assert_eq!(
        scrape_value(&before, "viewseeker_sessions_created_total "),
        0.0
    );
    assert_eq!(
        scrape_value(&before, "viewseeker_feedback_labels_total "),
        0.0
    );

    // create → feedback ×3 → recommend, then a second create that evicts
    // (and therefore snapshots) the first session, then restore it.
    let (first, _) = drive_session(addr, 7, &[0.9, 0.2, 0.6]);
    let (_second, _) = drive_session(addr, 8, &[0.5]);
    let (status, body) = call(addr, "POST", &format!("/sessions/{first}/restore"), "");
    assert_eq!(status, 201, "{body}");

    let (status, after) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{after}");
    assert_eq!(
        scrape_value(&after, "viewseeker_sessions_created_total "),
        2.0
    );
    assert_eq!(
        scrape_value(&after, "viewseeker_feedback_labels_total "),
        4.0
    );
    // Both creations' victims: first evicted by the second create, second
    // evicted by the restore (cap = 1).
    assert_eq!(
        scrape_value(&after, "viewseeker_sessions_evicted_total "),
        2.0
    );
    assert!(scrape_value(&after, "viewseeker_snapshots_total{outcome=\"ok\"} ") >= 2.0);
    assert_eq!(
        scrape_value(&after, "viewseeker_restores_total{outcome=\"ok\"} "),
        1.0
    );
    assert_eq!(scrape_value(&after, "viewseeker_active_sessions "), 1.0);
    assert_eq!(
        scrape_value(
            &after,
            "viewseeker_requests_total{route=\"POST /sessions\"} "
        ),
        2.0
    );

    // The latency histogram carries the full exposition triple for a route
    // this test exercised, with a cumulative +Inf bucket matching _count.
    let feedback_count = scrape_value(
        &after,
        "viewseeker_request_duration_seconds_count{route=\"POST /sessions/:id/feedback\"} ",
    );
    assert_eq!(feedback_count, 4.0);
    let inf_bucket = scrape_value(
        &after,
        "viewseeker_request_duration_seconds_bucket{route=\"POST /sessions/:id/feedback\",le=\"+Inf\"} ",
    );
    assert_eq!(inf_bucket, feedback_count);
    assert!(
        scrape_value(
            &after,
            "viewseeker_request_duration_seconds_sum{route=\"POST /sessions/:id/feedback\"} ",
        ) > 0.0
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_over_http_is_restorable_with_identical_weights() {
    let dir = std::env::temp_dir().join(format!("vs-e2e-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 1, // every create evicts the previous session
        ttl: Duration::from_secs(600),
        snapshot_dir: Some(dir.clone()),
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        ..Default::default()
    })
    .expect("bind");
    let addr = handle.addr();

    let (first, _) = drive_session(addr, 1, &[0.9, 0.2, 0.6]);
    // Capture the live session's weights via its snapshot endpoint.
    let (status, before) = call(addr, "POST", &format!("/sessions/{first}/snapshot"), "");
    assert_eq!(status, 200, "{before}");
    let weights_before = before
        .split("\"learned_weights\":")
        .nth(1)
        .expect("weights")
        .to_owned();

    // A second create evicts the first session (cap = 1)...
    let (second, _) = drive_session(addr, 2, &[0.5]);
    assert_ne!(first, second);
    let (status, body) = call(addr, "GET", &format!("/sessions/{first}"), "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("restore"), "{body}");

    // ...which evicts the *second* when the first is restored from disk;
    // the restored weights are bit-identical (JSON renders f64 exactly).
    let (status, body) = call(addr, "POST", &format!("/sessions/{first}/restore"), "");
    assert_eq!(status, 201, "{body}");
    assert_eq!(json_field(&body, "labels"), "3", "{body}");
    let (status, after) = call(addr, "POST", &format!("/sessions/{first}/snapshot"), "");
    assert_eq!(status, 200, "{after}");
    let weights_after = after
        .split("\"learned_weights\":")
        .nth(1)
        .expect("weights")
        .to_owned();
    assert_eq!(weights_before, weights_after);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
