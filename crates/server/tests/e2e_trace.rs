//! End-to-end tests of per-request tracing: (1) a differential run
//! asserting tracing changes no response byte — the same deterministic
//! session script produces bit-identical bodies with tracing on and off,
//! on both I/O paths — and (2) a full-stack correlation run: a request
//! tagged with a known `X-Request-Id` is retrieved from
//! `GET /debug/traces`, its span tree accounts for the request's wall
//! time, and the same id links the access-log line and the
//! `viewseeker_request_stage_seconds` histograms.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use viewseeker_server::{
    serve_app, AppHandle, IoModel, LogFormat, LogLevel, Logger, Router, ServerConfig,
};

fn server(io: IoModel, tracing: bool) -> AppHandle {
    serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        io,
        tracing,
        ..Default::default()
    })
    .expect("bind")
}

/// Content-Length-framed client call over a persistent connection, with
/// optional extra headers (e.g. `X-Request-Id`). Returns the status, the
/// response's `X-Request-Id` (if any), and the body.
fn call(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    extra: &str,
    body: &str,
) -> (u16, Option<String>, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    (&*stream).write_all(request.as_bytes()).expect("send");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {line:?}"));
    let mut content_length = 0usize;
    let mut request_id = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
        if let Some(v) = lower.strip_prefix("x-request-id:") {
            // Preserve the original casing from the raw header.
            request_id = Some(header[header.len() - v.len()..].trim().to_owned());
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, request_id, String::from_utf8(body).expect("utf8"))
}

fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| *c == ',' || *c == '}' || *c == ']' && !rest[..*i].ends_with('\\'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].trim_matches('"')
}

/// Zeroes the wall-clock microsecond fields (`*_us`), the only
/// legitimately nondeterministic bytes in a response body.
fn zero_timings(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(pos) = rest.find("_us\":") {
        let keep = pos + "_us\":".len();
        out.push_str(&rest[..keep]);
        out.push('0');
        rest = &rest[keep..];
        let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

/// Runs the deterministic interactive loop against `addr` over one
/// keep-alive connection and returns every response body, in order.
fn drive(addr: SocketAddr) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut transcript = Vec::new();

    let spec = "{\"dataset\": \"diab\", \"rows\": 600, \"seed\": 7, \"query\": \"a0 = 'a0_v0'\"}";
    let (status, _, body) = call(&stream, &mut reader, "POST", "/sessions", "", spec);
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();
    transcript.push(body);

    for score in [0.9, 0.1, 0.7] {
        let (status, _, body) = call(
            &stream,
            &mut reader,
            "GET",
            &format!("/sessions/{id}/next?m=1"),
            "",
            "",
        );
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        transcript.push(body);
        let (status, _, body) = call(
            &stream,
            &mut reader,
            "POST",
            &format!("/sessions/{id}/feedback"),
            "",
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
        transcript.push(body);
    }

    let (status, _, body) = call(
        &stream,
        &mut reader,
        "GET",
        &format!("/sessions/{id}/recommend?k=3"),
        "",
        "",
    );
    assert_eq!(status, 200, "{body}");
    transcript.push(body);

    let (status, _, body) = call(
        &stream,
        &mut reader,
        "DELETE",
        &format!("/sessions/{id}"),
        "",
        "",
    );
    assert_eq!(status, 200, "{body}");
    transcript.push(body);
    transcript
}

/// Tracing must be observational only: the same script yields
/// bit-identical bodies (modulo wall-clock fields) with the sink
/// installed and with the no-op sink, on both I/O paths.
#[test]
fn tracing_changes_no_response_byte() {
    for io in [IoModel::Blocking, IoModel::Event] {
        let traced = server(io, true);
        let untraced = server(io, false);

        let with = drive(traced.addr());
        let without = drive(untraced.addr());

        assert_eq!(with.len(), without.len(), "{io:?}: transcript lengths");
        for (i, (a, b)) in with.iter().zip(&without).enumerate() {
            assert_eq!(
                zero_timings(a),
                zero_timings(b),
                "{io:?}: response {i} differs with tracing on vs off"
            );
        }

        traced.shutdown();
        untraced.shutdown();
    }
}

/// A shared in-memory sink for capturing the server's access log.
#[derive(Clone, Default)]
struct LogBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for LogBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Sum of the durations of a request's top-level stage events (those
/// with an empty `parent` arg) in a parsed Chrome trace.
fn top_level_stage_sum(events: &[serde_json::Value], tid: u64) -> u64 {
    events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("stage")
                && e.get("tid").and_then(serde_json::Value::as_u64) == Some(tid)
                && e.get("args")
                    .and_then(|a| a.get("parent"))
                    .and_then(|p| p.as_str())
                    .unwrap_or("")
                    .is_empty()
        })
        .filter_map(|e| e.get("dur").and_then(serde_json::Value::as_u64))
        .sum()
}

/// Full-stack correlation: one tagged request is retrievable from
/// `/debug/traces` with a span tree accounting for its wall time, and
/// its id appears in the access log and its route in the per-stage
/// histograms.
#[test]
fn tagged_request_is_correlated_across_traces_log_and_metrics() {
    // Assemble the stack by hand so the access log writes to a buffer
    // this test can read back.
    let buffer = LogBuffer::default();
    let logger = Arc::new(Logger::to_writer(
        LogFormat::Json,
        LogLevel::Info,
        Box::new(buffer.clone()),
    ));
    let catalog = viewseeker_catalog::Catalog::in_memory(64 << 20);
    let registry = viewseeker_server::SessionRegistry::with_catalog(
        8,
        Duration::from_secs(600),
        None,
        Arc::new(catalog),
    );
    let state = viewseeker_server::api::shared_state_with_logger(registry, logger);
    let queue_depth = state.metrics.counters().queue_depth_handle();
    let net = Arc::clone(&state.net);
    let sink: Arc<dyn viewseeker_net::TraceSink> = Arc::new(
        viewseeker_server::trace::ServerTraceSink::new(Arc::clone(&state)),
    );
    let handle = viewseeker_net::serve_event(
        "127.0.0.1:0",
        viewseeker_net::EventConfig {
            workers: 2,
            ..viewseeker_net::EventConfig::default()
        },
        Arc::new(Router::new(state)),
        net,
        queue_depth,
        sink,
    )
    .expect("bind");

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let spec = "{\"dataset\": \"diab\", \"rows\": 600, \"seed\": 7, \"query\": \"a0 = 'a0_v0'\"}";
    let (status, _, body) = call(&stream, &mut reader, "POST", "/sessions", "", spec);
    assert_eq!(status, 201, "{body}");
    let session = json_field(&body, "id").to_owned();

    // Feedback rounds so the model is fitted before `recommend`.
    for score in [0.9, 0.1, 0.7] {
        let (status, _, body) = call(
            &stream,
            &mut reader,
            "GET",
            &format!("/sessions/{session}/next?m=1"),
            "",
            "",
        );
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        let (status, _, body) = call(
            &stream,
            &mut reader,
            "POST",
            &format!("/sessions/{session}/feedback"),
            "",
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
    }

    // The injected "slow" request: recommend is the heaviest endpoint in
    // the script, tagged with a client-chosen id the server must echo.
    const TAG: &str = "e2e-trace-slow";
    let (status, echoed, body) = call(
        &stream,
        &mut reader,
        "GET",
        &format!("/sessions/{session}/recommend?k=3"),
        &format!("X-Request-Id: {TAG}\r\n"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(echoed.as_deref(), Some(TAG), "id must be echoed");

    // 1) /debug/traces: the tagged request's trace is retained (the
    // sampler keeps every request here — far fewer than its capacity).
    let (status, _, chrome) = call(
        &stream,
        &mut reader,
        "GET",
        "/debug/traces?format=chrome",
        "",
        "",
    );
    assert_eq!(status, 200, "{chrome}");
    let parsed: serde_json::Value = serde_json::parse_value(&chrome).expect("chrome trace parses");
    let events: Vec<serde_json::Value> = match parsed
        .get("traceEvents")
        .cloned()
        .expect("traceEvents array")
    {
        serde_json::Value::Array(items) => items,
        other => panic!("traceEvents not an array: {other:?}"),
    };
    let request = events
        .iter()
        .find(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("request")
                && e.get("args")
                    .and_then(|a| a.get("request_id"))
                    .and_then(|v| v.as_str())
                    == Some(TAG)
        })
        .unwrap_or_else(|| panic!("tagged request not in /debug/traces: {chrome}"));
    assert_eq!(
        request
            .get("args")
            .and_then(|a| a.get("route"))
            .and_then(|v| v.as_str()),
        Some("GET /sessions/:id/recommend")
    );

    // 2) Its span tree accounts for the wall time: the top-level stages
    // (parse, queue_wait, dispatch, handler, write) sum to the total
    // minus only instrumentation gaps, bounded generously for CI.
    let tid = request
        .get("tid")
        .and_then(serde_json::Value::as_u64)
        .expect("tid");
    let total_us = request
        .get("dur")
        .and_then(serde_json::Value::as_u64)
        .expect("dur");
    let stage_sum = top_level_stage_sum(&events, tid);
    assert!(
        stage_sum <= total_us,
        "stages ({stage_sum}us) exceed wall time ({total_us}us)"
    );
    assert!(
        total_us - stage_sum <= 10_000,
        "unaccounted gap {}us exceeds instrumentation overhead",
        total_us - stage_sum
    );
    let stage_names: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("stage")
                && e.get("tid").and_then(serde_json::Value::as_u64) == Some(tid)
                && e.get("args")
                    .and_then(|a| a.get("parent"))
                    .and_then(|p| p.as_str())
                    .unwrap_or("")
                    .is_empty()
        })
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for required in ["parse", "handler", "write"] {
        assert!(
            stage_names.contains(&required),
            "missing {required}: {stage_names:?}"
        );
    }

    // The folded export aggregates the same stages per route.
    let (status, _, folded) = call(
        &stream,
        &mut reader,
        "GET",
        "/debug/traces?format=folded",
        "",
        "",
    );
    assert_eq!(status, 200, "{folded}");
    assert!(
        folded.contains("GET /sessions/:id/recommend;handler"),
        "{folded}"
    );

    // 3) The access-log line for the tagged request carries the same id.
    let raw = String::from_utf8(buffer.0.lock().unwrap().clone()).expect("utf8 log");
    let line = raw
        .lines()
        .find(|l| l.contains(&format!("\"request_id\":\"{TAG}\"")))
        .unwrap_or_else(|| panic!("no access-log line for {TAG}: {raw}"));
    assert!(
        line.contains("\"route\":\"GET /sessions/:id/recommend\""),
        "{line}"
    );
    assert!(line.contains("\"status\":200"), "{line}");

    // 4) The per-stage histograms gained samples for the same route.
    let (status, _, metrics) = call(&stream, &mut reader, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains(
            "viewseeker_request_stage_seconds_count{route=\"GET /sessions/:id/recommend\",stage=\"handler\"}"
        ),
        "{metrics}"
    );

    handle.shutdown();
}
