//! Property-based tests of the log-linear latency histogram: bucket
//! boundaries partition the `u64` range, quantiles stay within one bucket
//! width of the exact order statistic, and merging is equivalent to
//! recording everything into one histogram.

use proptest::prelude::*;
use viewseeker_server::hist::{bucket_index, bucket_range, Histogram, BUCKETS};

/// Any microsecond value, including the saturating `u64::MAX` edge the
/// range strategy alone cannot reach.
fn arb_value() -> impl Strategy<Value = u64> {
    (0u32..16, 0u64..u64::MAX).prop_map(|(class, wide)| match class {
        0..=7 => wide % 64,           // sub-bucket-width noise
        8..=11 => 64 + wide % 10_000, // the typical-latency octaves
        12..=14 => wide,              // anywhere in the u64 range
        _ => u64::MAX,                // saturation
    })
}

/// Latency samples skewed the way real ones are: mostly small, with a
/// heavy tail.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(arb_value(), 1..200)
}

/// The exact nearest-rank quantile the histogram approximates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_value_lands_in_exactly_its_own_bucket(us in arb_value()) {
        let index = bucket_index(us);
        prop_assert!(index < BUCKETS);
        let (lo, hi) = bucket_range(index);
        // The topmost bucket saturates at u64::MAX and is inclusive there.
        prop_assert!(lo <= us && (us < hi || hi == u64::MAX), "{} not in [{},{})", us, lo, hi);
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotonic(index in 0usize..BUCKETS - 1) {
        let (lo, hi) = bucket_range(index);
        let (next_lo, _) = bucket_range(index + 1);
        prop_assert!(lo < hi);
        prop_assert_eq!(hi, next_lo, "gap or overlap after bucket {}", index);
    }

    #[test]
    fn relative_error_is_bounded_by_the_subbucket_width(us in 8u64..1 << 62) {
        let (lo, hi) = bucket_range(bucket_index(us));
        // Log-linear with 8 sub-buckets per octave: width ≤ lo / 8.
        prop_assert!((hi - lo) * 8 <= lo, "[{},{}) too wide at {}", lo, hi, us);
    }

    #[test]
    fn quantiles_land_in_the_exact_order_statistic_bucket(samples in arb_samples()) {
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0f64, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = hist.quantile(q);
            // The approximation is the inclusive upper bound of the bucket
            // holding the exact sample quantile (clamped to the observed
            // max), so it sits within one bucket width of exact.
            let (lo, hi) = bucket_range(bucket_index(exact));
            prop_assert!(lo <= approx && approx < hi,
                "q{}: approx {} outside bucket [{},{}) of exact {}", q, approx, lo, hi, exact);
            prop_assert!(approx <= hist.max_us());
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.max_us(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_is_equivalent_to_recording_into_one(
        left in arb_samples(),
        right in arb_samples(),
    ) {
        let mut a = Histogram::new();
        let mut combined = Histogram::new();
        for &s in &left {
            a.record(s);
            combined.record(s);
        }
        let mut b = Histogram::new();
        for &s in &right {
            b.record(s);
            combined.record(s);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), combined.count());
        prop_assert_eq!(a.sum_us(), combined.sum_us());
        prop_assert_eq!(a.max_us(), combined.max_us());
        prop_assert_eq!(a.nonzero_buckets(), combined.nonzero_buckets());
        for q in [0.5f64, 0.9, 0.99] {
            prop_assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn nonzero_buckets_account_for_every_observation(samples in arb_samples()) {
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let total: u64 = hist.nonzero_buckets().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, samples.len() as u64);
    }
}
