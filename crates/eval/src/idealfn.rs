//! The simulated ideal utility functions of Table 2.
//!
//! "We evaluated the effectiveness and efficiency using 11 diverse ideal
//! utility functions u*() that included 3 single component utility functions
//! and 8 multi-component, composite utility functions. We chose the
//! components in multi-component u*() carefully such that they represent
//! different characteristics of the view."

use serde::{Deserialize, Serialize};
use viewseeker_core::{CompositeUtility, UtilityFeature};

/// The experiment grouping of Table 2 / Figures 3–4: how many utility
/// components an ideal function combines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdealGroup {
    /// Functions 1–3: a single component.
    Single,
    /// Functions 4–6: two components.
    Two,
    /// Functions 7–11: three components.
    Three,
}

impl IdealGroup {
    /// All groups in figure order (subfigures a, b, c).
    #[must_use]
    pub fn all() -> [IdealGroup; 3] {
        [IdealGroup::Single, IdealGroup::Two, IdealGroup::Three]
    }
}

impl std::fmt::Display for IdealGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IdealGroup::Single => "single-component",
            IdealGroup::Two => "two-component",
            IdealGroup::Three => "three-component",
        };
        f.write_str(s)
    }
}

/// One numbered ideal utility function from Table 2.
#[derive(Debug, Clone)]
pub struct IdealFunction {
    /// 1-based row number in Table 2.
    pub number: usize,
    /// The experiment group it belongs to.
    pub group: IdealGroup,
    /// The utility function itself.
    pub utility: CompositeUtility,
}

/// All 11 ideal utility functions, exactly as listed in Table 2.
///
/// # Panics
///
/// Never — the weight lists are statically valid.
#[must_use]
pub fn ideal_functions() -> Vec<IdealFunction> {
    use UtilityFeature::{Accuracy, Emd, Kl, MaxDiff, PValue, Usability, L2};
    let defs: [(IdealGroup, Vec<(UtilityFeature, f64)>); 11] = [
        (IdealGroup::Single, vec![(Kl, 1.0)]),
        (IdealGroup::Single, vec![(Emd, 1.0)]),
        (IdealGroup::Single, vec![(MaxDiff, 1.0)]),
        (IdealGroup::Two, vec![(Emd, 0.5), (Kl, 0.5)]),
        (IdealGroup::Two, vec![(Emd, 0.5), (L2, 0.5)]),
        (IdealGroup::Two, vec![(Emd, 0.5), (PValue, 0.5)]),
        (
            IdealGroup::Three,
            vec![(Emd, 0.3), (Kl, 0.3), (MaxDiff, 0.4)],
        ),
        (
            IdealGroup::Three,
            vec![(Emd, 0.3), (L2, 0.3), (MaxDiff, 0.4)],
        ),
        (
            IdealGroup::Three,
            vec![(Emd, 0.3), (PValue, 0.3), (MaxDiff, 0.4)],
        ),
        (
            IdealGroup::Three,
            vec![(Emd, 0.3), (Kl, 0.3), (Usability, 0.4)],
        ),
        (
            IdealGroup::Three,
            vec![(Emd, 0.3), (Kl, 0.3), (Accuracy, 0.4)],
        ),
    ];
    defs.into_iter()
        .enumerate()
        .map(|(i, (group, terms))| IdealFunction {
            number: i + 1,
            group,
            utility: CompositeUtility::new(&terms).expect("Table 2 entries are valid"),
        })
        .collect()
}

/// The ideal functions belonging to one group.
#[must_use]
pub fn functions_in_group(group: IdealGroup) -> Vec<IdealFunction> {
    ideal_functions()
        .into_iter()
        .filter(|f| f.group == group)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_eleven() {
        let fns = ideal_functions();
        assert_eq!(fns.len(), 11);
        for (i, f) in fns.iter().enumerate() {
            assert_eq!(f.number, i + 1);
        }
    }

    #[test]
    fn groups_match_table_2() {
        assert_eq!(functions_in_group(IdealGroup::Single).len(), 3);
        assert_eq!(functions_in_group(IdealGroup::Two).len(), 2 + 1);
        assert_eq!(functions_in_group(IdealGroup::Three).len(), 5);
        let fns = ideal_functions();
        assert_eq!(
            fns.iter()
                .map(|f| f.utility.component_count())
                .collect::<Vec<_>>(),
            vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 3, 3]
        );
    }

    #[test]
    fn function_11_is_the_experiment_2_target() {
        // u*() = 0.3·EMD + 0.3·KL + 0.4·Accuracy
        let f11 = &ideal_functions()[10];
        let w = f11.utility.weights();
        assert!((w[UtilityFeature::Emd.column()] - 0.3).abs() < 1e-12);
        assert!((w[UtilityFeature::Kl.column()] - 0.3).abs() < 1e-12);
        assert!((w[UtilityFeature::Accuracy.column()] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_one() {
        for f in ideal_functions() {
            let sum: f64 = f.utility.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "fn {} sums to {sum}", f.number);
        }
    }

    #[test]
    fn every_composite_includes_emd() {
        // Table 2 builds every multi-component function around EMD.
        for f in ideal_functions().iter().skip(3) {
            assert!(f.utility.weights()[UtilityFeature::Emd.column()] > 0.0);
        }
    }
}
