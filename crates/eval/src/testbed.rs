//! The DIAB and SYN testbeds (Table 1).
//!
//! | Parameter | DIAB | SYN |
//! |---|---|---|
//! | Records | 100,000 | 1,000,000 |
//! | Cardinality ratio of `DQ` | 0.5% | 0.5% |
//! | Dimension attributes | 7 (variable cardinality) | 5 |
//! | Measure attributes | 8 | 5 |
//! | Aggregate functions | 5 | 5 |
//! | Bin configurations | natural | 3 and 4 bins |
//! | Distinct views | 280 | 250 |
//!
//! [`TestbedScale`] lets the same testbed run at paper-scale (benchmarks) or
//! laptop-scale (tests, CI).

use viewseeker_core::CoreError;
use viewseeker_dataset::generate::{
    generate_diab, generate_syn, hypercube_query, DiabConfig, HypercubeConfig, SynConfig,
};
use viewseeker_dataset::{SelectQuery, Table};

/// How large to build a testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestbedScale {
    /// The record counts of Table 1 (100k / 1M rows).
    Paper,
    /// A reduced row count with identical attribute shape.
    Small(usize),
}

impl TestbedScale {
    fn rows(self, paper_rows: usize) -> usize {
        match self {
            TestbedScale::Paper => paper_rows,
            TestbedScale::Small(rows) => rows,
        }
    }
}

/// A dataset + query pair ready for a ViewSeeker session.
#[derive(Debug)]
pub struct Testbed {
    /// `"DIAB"` or `"SYN"`.
    pub name: &'static str,
    /// The full database `DR`.
    pub table: Table,
    /// The hypercube query defining `DQ`.
    pub query: SelectQuery,
    /// The achieved selectivity of the query (target 0.5%).
    pub selectivity: f64,
    /// The bin configurations for numeric dimensions.
    pub bin_configs: Vec<usize>,
}

/// Builds the DIAB testbed: a 7-dimension, 8-measure categorical table with
/// a hypercube query selecting ≈0.5% of the rows.
///
/// # Errors
///
/// Propagates generator and query-construction errors.
pub fn diab_testbed(scale: TestbedScale, seed: u64) -> Result<Testbed, CoreError> {
    let table = generate_diab(&DiabConfig {
        rows: scale.rows(100_000),
        seed,
        ..DiabConfig::default()
    })?;
    let (query, selectivity) = pick_query(&table, seed)?;
    Ok(Testbed {
        name: "DIAB",
        table,
        query,
        selectivity,
        // DIAB's dimensions are categorical; bin configs are unused but kept
        // for config uniformity.
        bin_configs: vec![3, 4],
    })
}

/// Builds the SYN testbed: a 5-dimension, 5-measure uniform numeric table
/// with 3- and 4-bin view configurations.
///
/// # Errors
///
/// Propagates generator and query-construction errors.
pub fn syn_testbed(scale: TestbedScale, seed: u64) -> Result<Testbed, CoreError> {
    let table = generate_syn(&SynConfig {
        rows: scale.rows(1_000_000),
        seed,
        ..SynConfig::default()
    })?;
    let (query, selectivity) = pick_query(&table, seed)?;
    Ok(Testbed {
        name: "SYN",
        table,
        query,
        selectivity,
        bin_configs: vec![3, 4],
    })
}

/// Builds the hypercube query, relaxing the 0.5% target on small tables so
/// `DQ` keeps enough rows for meaningful aggregates (at least ~200 rows or
/// 2% of the table, whichever is larger).
fn pick_query(table: &Table, seed: u64) -> Result<(SelectQuery, f64), CoreError> {
    let rows = table.row_count() as f64;
    let floor = (200.0 / rows).max(0.005);
    let target = floor.min(1.0);
    let (query, selectivity) = hypercube_query(
        table,
        &HypercubeConfig {
            target_selectivity: target,
            seed,
            ..HypercubeConfig::default()
        },
    )?;
    Ok((query, selectivity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_core::ViewSpace;

    #[test]
    fn diab_shape_matches_table_1() {
        let tb = diab_testbed(TestbedScale::Small(5_000), 1).unwrap();
        assert_eq!(tb.table.dimension_names().len(), 7);
        assert_eq!(tb.table.measure_names().len(), 8);
        let space = ViewSpace::enumerate(&tb.table, &tb.bin_configs).unwrap();
        assert_eq!(space.len(), 280);
    }

    #[test]
    fn syn_shape_matches_table_1() {
        let tb = syn_testbed(TestbedScale::Small(5_000), 1).unwrap();
        assert_eq!(tb.table.dimension_names().len(), 5);
        assert_eq!(tb.table.measure_names().len(), 5);
        let space = ViewSpace::enumerate(&tb.table, &tb.bin_configs).unwrap();
        assert_eq!(space.len(), 250);
    }

    #[test]
    fn query_is_restrictive_but_nonempty() {
        for tb in [
            diab_testbed(TestbedScale::Small(20_000), 3).unwrap(),
            syn_testbed(TestbedScale::Small(20_000), 3).unwrap(),
        ] {
            let dq = tb.query.execute(&tb.table).unwrap();
            assert!(!dq.is_empty(), "{}: DQ must be non-empty", tb.name);
            assert!(
                dq.len() < tb.table.row_count(),
                "{}: DQ must be a strict subset",
                tb.name
            );
            assert!(tb.selectivity > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = diab_testbed(TestbedScale::Small(2_000), 9).unwrap();
        let b = diab_testbed(TestbedScale::Small(2_000), 9).unwrap();
        assert_eq!(a.table, b.table);
        assert_eq!(a.selectivity, b.selectivity);
    }
}
