//! The simulated user (paper §4).
//!
//! "For each presented view vᵢ, we simulated the user's belief with respect
//! to the interestingness of a view through the normalized utility score
//! produced by the u*(vᵢ), such that u*(vᵢ) = 0.7 indicates the
//! interestingness of view vᵢ is about 70% of the maximum."
//!
//! The user's scores are computed against the *exact* (full-data) feature
//! matrix — the simulated human knows what they find interesting even when
//! ViewSeeker is still working with rough α-sampled features.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewseeker_core::{CompositeUtility, CoreError, FeatureMatrix, ViewId};

/// A simulated user with a hidden ideal utility function.
///
/// Optionally *noisy*: real users rate inconsistently, so
/// [`SimulatedUser::with_noise`] perturbs each label with seeded Gaussian
/// noise (clamped back into `[0, 1]`) while ground truth — the ideal top-k
/// and true scores — stays exact.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    scores: Vec<f64>,
    ideal_top_cache: Vec<usize>,
    /// Per-view label noise, precomputed so repeated label() calls agree.
    noise: Option<Vec<f64>>,
}

impl SimulatedUser {
    /// Creates a simulated user whose hidden ideal is `ideal`, evaluated on
    /// the exact feature matrix `truth`.
    ///
    /// # Errors
    ///
    /// Propagates scoring errors.
    pub fn new(ideal: &CompositeUtility, truth: &FeatureMatrix) -> Result<Self, CoreError> {
        let scores = ideal.normalized_scores(truth)?;
        let ideal_top_cache = viewseeker_stats::rank_descending(&scores);
        Ok(Self {
            scores,
            ideal_top_cache,
            noise: None,
        })
    }

    /// Like [`SimulatedUser::new`], but labels are perturbed with Gaussian
    /// noise of standard deviation `sigma` (seeded; the same view always
    /// gets the same noisy label, as a consistent-but-miscalibrated human
    /// would produce).
    ///
    /// # Errors
    ///
    /// Propagates scoring errors.
    pub fn with_noise(
        ideal: &CompositeUtility,
        truth: &FeatureMatrix,
        sigma: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let mut user = Self::new(ideal, truth)?;
        if sigma > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            // Box-Muller keeps us free of a rand_distr dependency here.
            let normals: Vec<f64> = (0..user.scores.len())
                .map(|_| {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma
                })
                .collect();
            user.noise = Some(normals);
        }
        Ok(user)
    }

    /// The user's feedback label for a presented view: the normalized ideal
    /// utility in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownView`] for a view outside the matrix.
    pub fn label(&self, view: ViewId) -> Result<f64, CoreError> {
        let exact = self
            .scores
            .get(view.index())
            .copied()
            .ok_or(CoreError::UnknownView(view.index()))?;
        Ok(match &self.noise {
            Some(noise) => (exact + noise[view.index()]).clamp(0.0, 1.0),
            None => exact,
        })
    }

    /// The ground-truth normalized score of every view.
    #[must_use]
    pub fn true_scores(&self) -> &[f64] {
        &self.scores
    }

    /// The ground-truth top-`k` views under the hidden ideal.
    #[must_use]
    pub fn ideal_top_k(&self, k: usize) -> Vec<ViewId> {
        self.ideal_top_cache
            .iter()
            .take(k)
            .map(|&i| ViewId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_core::features::FEATURE_COUNT;
    use viewseeker_core::UtilityFeature;

    fn truth() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..5 {
            let mut r = [0.0; FEATURE_COUNT];
            r[0] = i as f64; // KL signal grows with index
            rows.push(r);
        }
        FeatureMatrix::new(rows)
    }

    #[test]
    fn labels_are_normalized_ideal_scores() {
        let m = truth();
        let user = SimulatedUser::new(&CompositeUtility::single(UtilityFeature::Kl), &m).unwrap();
        assert_eq!(user.label(ViewId::from_index(4)).unwrap(), 1.0);
        assert_eq!(user.label(ViewId::from_index(0)).unwrap(), 0.0);
        assert_eq!(user.label(ViewId::from_index(2)).unwrap(), 0.5);
    }

    #[test]
    fn ideal_top_k_is_descending() {
        let m = truth();
        let user = SimulatedUser::new(&CompositeUtility::single(UtilityFeature::Kl), &m).unwrap();
        let top3: Vec<usize> = user.ideal_top_k(3).iter().map(|v| v.index()).collect();
        assert_eq!(top3, vec![4, 3, 2]);
    }

    #[test]
    fn unknown_view_errors() {
        let m = truth();
        let user = SimulatedUser::new(&CompositeUtility::single(UtilityFeature::Kl), &m).unwrap();
        assert!(user.label(ViewId::from_index(99)).is_err());
    }

    #[test]
    fn scores_live_in_unit_interval() {
        let m = truth();
        let user = SimulatedUser::new(&CompositeUtility::single(UtilityFeature::Kl), &m).unwrap();
        assert!(user.true_scores().iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn noisy_labels_are_clamped_deterministic_and_distinct() {
        let m = truth();
        let ideal = CompositeUtility::single(UtilityFeature::Kl);
        let clean = SimulatedUser::new(&ideal, &m).unwrap();
        let noisy = SimulatedUser::with_noise(&ideal, &m, 0.3, 5).unwrap();
        let mut any_different = false;
        for i in 0..5 {
            let v = ViewId::from_index(i);
            let a = noisy.label(v).unwrap();
            assert!((0.0..=1.0).contains(&a));
            assert_eq!(a, noisy.label(v).unwrap(), "same view, same label");
            if (a - clean.label(v).unwrap()).abs() > 1e-12 {
                any_different = true;
            }
        }
        assert!(any_different, "noise must actually perturb labels");
        // Ground truth stays exact.
        assert_eq!(noisy.true_scores(), clean.true_scores());
        // sigma = 0 degrades to the exact user.
        let zero = SimulatedUser::with_noise(&ideal, &m, 0.0, 5).unwrap();
        for i in 0..5 {
            let v = ViewId::from_index(i);
            assert_eq!(zero.label(v).unwrap(), clean.label(v).unwrap());
        }
    }
}
