//! Rendering experiment results as markdown tables and JSON.
//!
//! Every figure-regeneration binary prints the rows behind the figure as a
//! markdown table (the format EXPERIMENTS.md embeds) and can dump the same
//! data as JSON for downstream plotting.

use std::time::Duration;

use serde::Serialize;

use crate::experiments::{
    AlphaPoint, BaselineComparison, BatchPoint, EffortPoint, NoisePoint, OptimizationPoint,
    StrategyPoint,
};
use crate::idealfn::IdealGroup;

/// Renders a generic markdown table.
#[must_use]
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

/// Figure 3/4 table: one row per k, one column per ideal-function group.
#[must_use]
pub fn effort_table(points: &[EffortPoint]) -> String {
    let mut ks: Vec<usize> = points.iter().map(|p| p.k).collect();
    ks.sort_unstable();
    ks.dedup();
    let cell = |group: IdealGroup, k: usize| -> String {
        points
            .iter()
            .find(|p| p.group == group && p.k == k)
            .map_or_else(
                || "-".to_owned(),
                |p| {
                    let star = if p.all_converged { "" } else { "*" };
                    format!("{:.1}{star}", p.mean_labels)
                },
            )
    };
    let rows: Vec<Vec<String>> = ks
        .iter()
        .map(|&k| {
            vec![
                k.to_string(),
                cell(IdealGroup::Single, k),
                cell(IdealGroup::Two, k),
                cell(IdealGroup::Three, k),
            ]
        })
        .collect();
    markdown_table(
        &[
            "k",
            "labels (1-component u*)",
            "labels (2-component u*)",
            "labels (3-component u*)",
        ],
        &rows,
    ) + "(* = not all runs converged within the label budget)\n"
}

/// Figure 5 table: ViewSeeker vs the 8 fixed baselines.
#[must_use]
pub fn baseline_table(cmp: &BaselineComparison) -> String {
    let mut rows = vec![vec![
        "ViewSeeker".to_owned(),
        format!("{:.3}", cmp.viewseeker_precision),
        format!("{} labels", cmp.labels_used),
    ]];
    for b in &cmp.baselines {
        rows.push(vec![
            format!("baseline: {}", b.feature),
            format!("{:.3}", b.precision),
            "fixed".to_owned(),
        ]);
    }
    markdown_table(
        &["method", &format!("precision@{}", cmp.k), "interaction"],
        &rows,
    ) + &format!(
        "ViewSeeker improvement over best baseline: {:.2}x\n",
        cmp.improvement_factor()
    )
}

/// Figure 6 table: labels to UD = 0, optimization off vs on.
#[must_use]
pub fn optimization_labels_table(points: &[OptimizationPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.group.to_string(),
                format!("{:.1}", p.labels_baseline),
                format!("{:.1}", p.labels_optimized),
                format!("{:+.1}%", p.label_overhead() * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &[
            "u* group",
            "labels (no optimization)",
            "labels (optimized)",
            "label overhead",
        ],
        &rows,
    )
}

/// Figure 7 table: runtime to UD = 0, optimization off vs on.
#[must_use]
pub fn optimization_runtime_table(points: &[OptimizationPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.group.to_string(),
                fmt_duration(p.time_baseline),
                fmt_duration(p.time_optimized),
                format!("{:.1}%", p.runtime_reduction() * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &[
            "u* group",
            "runtime (no optimization)",
            "runtime (optimized)",
            "runtime reduction",
        ],
        &rows,
    )
}

/// Strategy-ablation table.
#[must_use]
pub fn strategy_table(points: &[StrategyPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.strategy.clone(),
                format!("{:.1}", p.mean_labels),
                format!("{:.0}%", p.convergence_rate * 100.0),
            ]
        })
        .collect();
    markdown_table(&["query strategy", "mean labels", "converged"], &rows)
}

/// α-sweep table.
#[must_use]
pub fn alpha_table(points: &[AlphaPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.alpha * 100.0),
                format!("{:.1}", p.mean_labels),
                fmt_duration(p.mean_init_time),
                fmt_duration(p.mean_wall_time),
                format!("{:.0}%", p.convergence_rate * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &["α", "mean labels", "init time", "total time", "converged"],
        &rows,
    )
}

/// Batch-size (M) sweep table.
#[must_use]
pub fn batch_table(points: &[BatchPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.views_per_iteration.to_string(),
                format!("{:.1}", p.mean_labels),
                format!("{:.1}", p.mean_iterations),
                format!("{:.0}%", p.convergence_rate * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &[
            "M (views/iteration)",
            "mean labels",
            "mean prompt rounds",
            "converged",
        ],
        &rows,
    )
}

/// Label-noise sweep table.
#[must_use]
pub fn noise_table(points: &[NoisePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.sigma),
                format!("{:.1}", p.mean_labels),
                format!("{:.1}%", p.mean_final_precision * 100.0),
                format!("{:.0}%", p.convergence_rate * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &[
            "label noise σ",
            "mean labels",
            "final precision",
            "converged",
        ],
        &rows,
    )
}

/// Serializes any experiment output to pretty JSON.
///
/// # Errors
///
/// Propagates serialization failures (none for the types in this crate).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn effort_table_pivots_groups_into_columns() {
        let points = vec![
            EffortPoint {
                group: IdealGroup::Single,
                k: 5,
                mean_labels: 7.0,
                all_converged: true,
            },
            EffortPoint {
                group: IdealGroup::Two,
                k: 5,
                mean_labels: 9.5,
                all_converged: false,
            },
        ];
        let t = effort_table(&points);
        assert!(t.contains("| 5 | 7.0 | 9.5* | - |"), "table was:\n{t}");
    }

    #[test]
    fn durations_format_adaptively() {
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn json_round_trips() {
        let p = StrategyPoint {
            strategy: "uncertainty".into(),
            mean_labels: 8.0,
            convergence_rate: 1.0,
        };
        let j = to_json(&p).unwrap();
        assert!(j.contains("\"uncertainty\""));
    }
}
