//! Optimization evaluation (Figures 6 and 7).
//!
//! "We evaluated the effectiveness of our optimization techniques by
//! comparing the recommendation precision and runtime between the
//! optimizations-enabled ViewSeeker and the optimizations-disabled
//! ViewSeeker (i.e., baseline model). ... Figures 6 and 7 show the number of
//! feedback and runtime, respectively, needed for both models to reach
//! UD = 0 for the DIAB dataset. On average, the model with optimization
//! achieved 43% reduction in running time while requiring only 19% more user
//! labeling effort."

use std::time::Duration;

use serde::Serialize;
use viewseeker_core::{CoreError, ViewSeekerConfig};

use crate::idealfn::{functions_in_group, IdealGroup};
use crate::runner::{exact_feature_matrix, run_session_with_truth, RunnerConfig, StopCriterion};
use crate::testbed::Testbed;

/// One group's Figures 6+7 cell: labels and runtime to UD = 0 for both
/// models.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizationPoint {
    /// Ideal-function group.
    pub group: IdealGroup,
    /// The k of top-k.
    pub k: usize,
    /// Mean labels to UD = 0 without optimizations.
    pub labels_baseline: f64,
    /// Mean labels to UD = 0 with α-sampling + incremental refinement.
    pub labels_optimized: f64,
    /// Mean user-perceived system time to UD = 0 without optimizations
    /// (offline init + per-iteration response latency; think-time
    /// refinement excluded, matching the paper's accounting).
    pub time_baseline: Duration,
    /// Mean user-perceived system time to UD = 0 with optimizations.
    pub time_optimized: Duration,
    /// Whether every run converged.
    pub all_converged: bool,
}

impl OptimizationPoint {
    /// Fractional runtime reduction of the optimized model (paper: ≈0.43).
    #[must_use]
    pub fn runtime_reduction(&self) -> f64 {
        let base = self.time_baseline.as_secs_f64();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.time_optimized.as_secs_f64() / base
    }

    /// Fractional extra labeling effort of the optimized model (paper:
    /// ≈0.19).
    #[must_use]
    pub fn label_overhead(&self) -> f64 {
        if self.labels_baseline <= 0.0 {
            return 0.0;
        }
        self.labels_optimized / self.labels_baseline - 1.0
    }
}

/// Runs the optimization evaluation: for each ideal-function group, drives
/// every member to UD = 0 under both the optimization-disabled
/// (`baseline_config`) and optimization-enabled (`optimized_config`)
/// configurations.
///
/// # Errors
///
/// Propagates session errors.
pub fn optimization_experiment(
    testbed: &Testbed,
    baseline_config: &ViewSeekerConfig,
    optimized_config: &ViewSeekerConfig,
    k: usize,
    max_labels: usize,
) -> Result<Vec<OptimizationPoint>, CoreError> {
    let baseline_config = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..baseline_config.clone()
    };
    let optimized_config = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..optimized_config.clone()
    };
    // Ground truth is the same for both models.
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &baseline_config)?;

    let runner = RunnerConfig {
        k,
        max_labels,
        stop: StopCriterion::UtilityDistance(0.0),
    };

    let mut points = Vec::new();
    for group in IdealGroup::all() {
        let members = functions_in_group(group);
        let mut labels = [0.0f64; 2];
        let mut time = [Duration::ZERO; 2];
        let mut all_converged = true;
        for f in &members {
            for (slot, config) in [(0, &baseline_config), (1, &optimized_config)] {
                let outcome = run_session_with_truth(
                    &testbed.table,
                    &testbed.query,
                    config.clone(),
                    &f.utility,
                    &runner,
                    &truth,
                )?;
                labels[slot] += outcome.labels_used as f64;
                time[slot] += outcome.system_time;
                all_converged &= outcome.converged;
            }
        }
        let n = members.len() as u32;
        points.push(OptimizationPoint {
            group,
            k,
            labels_baseline: labels[0] / f64::from(n),
            labels_optimized: labels[1] / f64::from(n),
            time_baseline: time[0] / n,
            time_optimized: time[1] / n,
            all_converged,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{diab_testbed, TestbedScale};
    use viewseeker_core::RefineBudget;

    #[test]
    fn produces_one_point_per_group() {
        let tb = diab_testbed(TestbedScale::Small(2_000), 41).unwrap();
        let baseline = ViewSeekerConfig::default();
        let optimized = ViewSeekerConfig {
            alpha: 0.3,
            refine_budget: RefineBudget::Views(40),
            ..ViewSeekerConfig::default()
        };
        let points = optimization_experiment(&tb, &baseline, &optimized, 10, 150).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.labels_baseline >= 1.0);
            assert!(p.labels_optimized >= 1.0);
            assert!(p.time_baseline > Duration::ZERO);
            assert!(p.time_optimized > Duration::ZERO);
        }
    }

    #[test]
    fn derived_ratios_behave() {
        let p = OptimizationPoint {
            group: IdealGroup::Single,
            k: 10,
            labels_baseline: 10.0,
            labels_optimized: 12.0,
            time_baseline: Duration::from_secs(10),
            time_optimized: Duration::from_secs(6),
            all_converged: true,
        };
        assert!((p.runtime_reduction() - 0.4).abs() < 1e-12);
        assert!((p.label_overhead() - 0.2).abs() < 1e-12);
        let degenerate = OptimizationPoint {
            labels_baseline: 0.0,
            time_baseline: Duration::ZERO,
            ..p
        };
        assert_eq!(degenerate.runtime_reduction(), 0.0);
        assert_eq!(degenerate.label_overhead(), 0.0);
    }
}
