//! Ablations of ViewSeeker's design choices.
//!
//! Two knobs DESIGN.md calls out:
//!
//! * **query strategy** — the paper chooses least-confidence uncertainty
//!   sampling for efficiency; [`strategy_ablation`] measures the labels it
//!   saves against random sampling and query-by-committee;
//! * **α (partial-data ratio)** — [`alpha_sweep`] quantifies the trade
//!   between rough-feature fidelity (labels needed) and offline-phase cost
//!   across α values.

use std::time::Duration;

use serde::Serialize;
use viewseeker_core::{CoreError, QueryStrategyKind, RefineBudget, ViewSeekerConfig};

use crate::idealfn::ideal_functions;
use crate::runner::{
    exact_feature_matrix, run_session_with_truth, run_session_with_user, RunnerConfig,
    StopCriterion,
};
use crate::simuser::SimulatedUser;
use crate::testbed::Testbed;

/// One strategy's averaged outcome.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyPoint {
    /// Strategy name (`"uncertainty"`, `"random"`, `"qbc"`).
    pub strategy: String,
    /// Mean labels to 100% precision across ideal functions.
    pub mean_labels: f64,
    /// Fraction of runs that converged within the budget.
    pub convergence_rate: f64,
}

/// Compares the three query strategies over all 11 ideal functions.
///
/// # Errors
///
/// Propagates session errors.
pub fn strategy_ablation(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    k: usize,
    max_labels: usize,
) -> Result<Vec<StrategyPoint>, CoreError> {
    let strategies = [
        ("uncertainty", QueryStrategyKind::Uncertainty),
        ("random", QueryStrategyKind::Random),
        (
            "qbc",
            QueryStrategyKind::QueryByCommittee { committee_size: 5 },
        ),
    ];
    let config_base = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config_base)?;
    let functions = ideal_functions();

    let mut points = Vec::new();
    for (name, kind) in strategies {
        let mut labels = 0.0;
        let mut converged = 0usize;
        for f in &functions {
            let outcome = run_session_with_truth(
                &testbed.table,
                &testbed.query,
                ViewSeekerConfig {
                    strategy: kind,
                    ..config_base.clone()
                },
                &f.utility,
                &RunnerConfig {
                    k,
                    max_labels,
                    stop: StopCriterion::Precision(1.0),
                },
                &truth,
            )?;
            labels += outcome.labels_used as f64;
            converged += usize::from(outcome.converged);
        }
        points.push(StrategyPoint {
            strategy: name.to_owned(),
            mean_labels: labels / functions.len() as f64,
            convergence_rate: converged as f64 / functions.len() as f64,
        });
    }
    Ok(points)
}

/// One α value's averaged outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AlphaPoint {
    /// The partial-data ratio.
    pub alpha: f64,
    /// Mean labels to UD = 0.
    pub mean_labels: f64,
    /// Mean offline-initialization time.
    pub mean_init_time: Duration,
    /// Mean total wall-clock to UD = 0.
    pub mean_wall_time: Duration,
    /// Fraction of runs that converged.
    pub convergence_rate: f64,
}

/// Sweeps the α partial-data ratio, measuring offline cost against labeling
/// effort (the trade the paper's §3.3 optimization navigates).
///
/// # Errors
///
/// Propagates session errors.
pub fn alpha_sweep(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    alphas: &[f64],
    k: usize,
    max_labels: usize,
) -> Result<Vec<AlphaPoint>, CoreError> {
    let config_base = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config_base)?;
    // Use a representative subset of ideal functions (one per group) to keep
    // the sweep tractable.
    let functions = ideal_functions();
    let sample = [&functions[1], &functions[3], &functions[10]];

    let mut points = Vec::new();
    for &alpha in alphas {
        let config = ViewSeekerConfig {
            alpha,
            refine_budget: if alpha < 1.0 {
                base_config.refine_budget
            } else {
                RefineBudget::Views(0)
            },
            ..config_base.clone()
        };
        let mut labels = 0.0;
        let mut init = Duration::ZERO;
        let mut wall = Duration::ZERO;
        let mut converged = 0usize;
        for f in sample {
            let outcome = run_session_with_truth(
                &testbed.table,
                &testbed.query,
                config.clone(),
                &f.utility,
                &RunnerConfig {
                    k,
                    max_labels,
                    stop: StopCriterion::UtilityDistance(0.0),
                },
                &truth,
            )?;
            labels += outcome.labels_used as f64;
            init += outcome.init_time;
            wall += outcome.wall_time;
            converged += usize::from(outcome.converged);
        }
        let n = sample.len() as u32;
        points.push(AlphaPoint {
            alpha,
            mean_labels: labels / f64::from(n),
            mean_init_time: init / n,
            mean_wall_time: wall / n,
            convergence_rate: converged as f64 / f64::from(n),
        });
    }
    Ok(points)
}

/// One batch-size's averaged outcome.
#[derive(Debug, Clone, Serialize)]
pub struct BatchPoint {
    /// Views presented per iteration (the paper's `M`).
    pub views_per_iteration: usize,
    /// Mean labels to 100% precision.
    pub mean_labels: f64,
    /// Mean user *iterations* (prompt rounds) — labels / M, the quantity a
    /// batched UI actually trades for.
    pub mean_iterations: f64,
    /// Fraction of runs that converged.
    pub convergence_rate: f64,
}

/// Sweeps `M`, the number of views presented per iteration (paper default
/// M = 1): batching lowers the number of prompt rounds but spends labels on
/// less-informative views picked from one model state.
///
/// # Errors
///
/// Propagates session errors.
pub fn batch_size_sweep(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    batch_sizes: &[usize],
    k: usize,
    max_labels: usize,
) -> Result<Vec<BatchPoint>, CoreError> {
    let config_base = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config_base)?;
    let functions = ideal_functions();

    let mut points = Vec::new();
    for &m in batch_sizes {
        let mut labels = 0.0;
        let mut converged = 0usize;
        for f in &functions {
            let outcome = run_session_with_truth(
                &testbed.table,
                &testbed.query,
                ViewSeekerConfig {
                    views_per_iteration: m,
                    ..config_base.clone()
                },
                &f.utility,
                &RunnerConfig {
                    k,
                    max_labels,
                    stop: StopCriterion::Precision(1.0),
                },
                &truth,
            )?;
            labels += outcome.labels_used as f64;
            converged += usize::from(outcome.converged);
        }
        let mean_labels = labels / functions.len() as f64;
        points.push(BatchPoint {
            views_per_iteration: m,
            mean_labels,
            mean_iterations: mean_labels / m as f64,
            convergence_rate: converged as f64 / functions.len() as f64,
        });
    }
    Ok(points)
}

/// One label-noise level's averaged outcome.
#[derive(Debug, Clone, Serialize)]
pub struct NoisePoint {
    /// Standard deviation of the Gaussian label noise.
    pub sigma: f64,
    /// Mean labels spent (up to the budget).
    pub mean_labels: f64,
    /// Mean final tie-aware precision@k against the *exact* ideal.
    pub mean_final_precision: f64,
    /// Fraction of runs that reached 100% precision within the budget.
    pub convergence_rate: f64,
}

/// Sweeps Gaussian label noise — how robust is the interactive learner to
/// inconsistent human ratings? (The paper's planned user study would face
/// exactly this; the simulated study uses exact labels.)
///
/// # Errors
///
/// Propagates session errors.
pub fn noise_sweep(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    sigmas: &[f64],
    k: usize,
    max_labels: usize,
) -> Result<Vec<NoisePoint>, CoreError> {
    let config_base = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config_base)?;
    let functions = ideal_functions();

    let mut points = Vec::new();
    for &sigma in sigmas {
        let mut labels = 0.0;
        let mut precision = 0.0;
        let mut converged = 0usize;
        for f in &functions {
            let user = SimulatedUser::with_noise(
                &f.utility,
                &truth,
                sigma,
                config_base.seed ^ f.number as u64,
            )?;
            let outcome = run_session_with_user(
                &testbed.table,
                &testbed.query,
                config_base.clone(),
                &user,
                &RunnerConfig {
                    k,
                    max_labels,
                    stop: StopCriterion::Precision(1.0),
                },
            )?;
            labels += outcome.labels_used as f64;
            precision += outcome.final_precision();
            converged += usize::from(outcome.converged);
        }
        let n = functions.len() as f64;
        points.push(NoisePoint {
            sigma,
            mean_labels: labels / n,
            mean_final_precision: precision / n,
            convergence_rate: converged as f64 / n,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{diab_testbed, TestbedScale};

    #[test]
    fn strategy_ablation_covers_all_three() {
        let tb = diab_testbed(TestbedScale::Small(1_500), 51).unwrap();
        let points = strategy_ablation(&tb, &ViewSeekerConfig::default(), 10, 60).unwrap();
        assert_eq!(points.len(), 3);
        let names: Vec<&str> = points.iter().map(|p| p.strategy.as_str()).collect();
        assert_eq!(names, vec!["uncertainty", "random", "qbc"]);
        for p in &points {
            assert!(p.mean_labels >= 1.0);
            assert!((0.0..=1.0).contains(&p.convergence_rate));
        }
    }

    #[test]
    fn alpha_sweep_produces_one_point_per_alpha() {
        let tb = diab_testbed(TestbedScale::Small(1_500), 52).unwrap();
        let cfg = ViewSeekerConfig {
            refine_budget: RefineBudget::Views(30),
            ..ViewSeekerConfig::default()
        };
        let points = alpha_sweep(&tb, &cfg, &[0.25, 1.0], 10, 80).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].alpha, 0.25);
        assert_eq!(points[1].alpha, 1.0);
    }

    #[test]
    fn batch_sweep_produces_one_point_per_m() {
        let tb = diab_testbed(TestbedScale::Small(1_500), 53).unwrap();
        let points = batch_size_sweep(&tb, &ViewSeekerConfig::default(), &[1, 3], 10, 60).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].mean_iterations <= points[1].mean_labels);
        for p in &points {
            assert!(p.mean_labels >= 1.0);
        }
    }

    #[test]
    fn noise_sweep_zero_sigma_matches_exact_user() {
        let tb = diab_testbed(TestbedScale::Small(1_500), 54).unwrap();
        let points = noise_sweep(&tb, &ViewSeekerConfig::default(), &[0.0, 0.5], 10, 40).unwrap();
        assert_eq!(points.len(), 2);
        // Exact labels converge at least as reliably as heavily noisy ones.
        assert!(points[0].convergence_rate >= points[1].convergence_rate);
        assert!(points[0].mean_final_precision >= points[1].mean_final_precision - 1e-9);
    }
}
