//! Experiment 2: comparison against fixed single-feature baselines
//! (Figure 5).
//!
//! "We compared the top-k recommended views by ViewSeeker with the top-k
//! recommended views by the baselines in terms of the maximum achievable
//! recommendation precision. We use the 8 individual utility features
//! (e.g., KL, EMD, L1, L2, etc.) as the baselines. Figure 5 shows the result
//! for ideal Utility Function 11 (u*() = 0.3·EMD + 0.3·KL + 0.4·Accuracy) in
//! the DIAB dataset. ViewSeeker achieved a 3X improvement against the
//! best-performing baseline."

use serde::Serialize;
use viewseeker_core::baseline::SingleFeatureRanker;
use viewseeker_core::{tie_aware_precision_at_k, CoreError, ViewSeekerConfig};

use crate::idealfn::ideal_functions;
use crate::runner::{exact_feature_matrix, run_session_with_truth, RunnerConfig, StopCriterion};
use crate::simuser::SimulatedUser;
use crate::testbed::Testbed;

/// One baseline's fixed precision.
#[derive(Debug, Clone, Serialize)]
pub struct BaselinePrecision {
    /// The utility feature the baseline ranks by.
    pub feature: String,
    /// Its (fixed, maximum achievable) precision@k against the ideal top-k.
    pub precision: f64,
}

/// The output of Experiment 2.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineComparison {
    /// The ideal function's 1-based Table 2 number.
    pub ideal_number: usize,
    /// The k of top-k.
    pub k: usize,
    /// ViewSeeker's precision@k after each label.
    pub viewseeker_trace: Vec<f64>,
    /// ViewSeeker's final (maximum achieved) precision.
    pub viewseeker_precision: f64,
    /// Labels ViewSeeker spent.
    pub labels_used: usize,
    /// Every fixed baseline's precision.
    pub baselines: Vec<BaselinePrecision>,
}

impl BaselineComparison {
    /// The best fixed baseline's precision.
    #[must_use]
    pub fn best_baseline(&self) -> f64 {
        self.baselines
            .iter()
            .map(|b| b.precision)
            .fold(0.0, f64::max)
    }

    /// ViewSeeker's improvement factor over the best baseline
    /// (∞ if every baseline scores zero).
    #[must_use]
    pub fn improvement_factor(&self) -> f64 {
        let best = self.best_baseline();
        if best <= 0.0 {
            f64::INFINITY
        } else {
            self.viewseeker_precision / best
        }
    }
}

/// Runs Experiment 2 for Table 2 function number `ideal_number` (the paper
/// uses 11).
///
/// # Errors
///
/// * [`CoreError::Invalid`] for an ideal number outside 1–11;
/// * session errors.
pub fn baseline_experiment(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    ideal_number: usize,
    k: usize,
    max_labels: usize,
) -> Result<BaselineComparison, CoreError> {
    let functions = ideal_functions();
    let ideal = functions
        .get(ideal_number.wrapping_sub(1))
        .ok_or_else(|| CoreError::Invalid(format!("no ideal function #{ideal_number}")))?;

    let config = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config)?;
    let user = SimulatedUser::new(&ideal.utility, &truth)?;

    // Each fixed baseline's precision never changes — compute it once, with
    // the same tie-aware precision the interactive runs are scored by.
    let baselines = SingleFeatureRanker::all()
        .into_iter()
        .map(|r| BaselinePrecision {
            feature: r.feature().to_string(),
            precision: tie_aware_precision_at_k(user.true_scores(), &r.top_k(&truth, k), k),
        })
        .collect::<Vec<_>>();

    let outcome = run_session_with_truth(
        &testbed.table,
        &testbed.query,
        config,
        &ideal.utility,
        &RunnerConfig {
            k,
            max_labels,
            stop: StopCriterion::Precision(1.0),
        },
        &truth,
    )?;

    Ok(BaselineComparison {
        ideal_number,
        k,
        viewseeker_precision: outcome.final_precision(),
        labels_used: outcome.labels_used,
        viewseeker_trace: outcome.precision_trace,
        baselines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{diab_testbed, TestbedScale};

    #[test]
    fn viewseeker_beats_every_fixed_baseline_on_function_11() {
        let tb = diab_testbed(TestbedScale::Small(3_000), 5).unwrap();
        let cmp = baseline_experiment(&tb, &ViewSeekerConfig::default(), 11, 10, 150).unwrap();
        assert_eq!(cmp.baselines.len(), 8);
        assert!(
            cmp.viewseeker_precision >= cmp.best_baseline(),
            "ViewSeeker {} vs best baseline {}",
            cmp.viewseeker_precision,
            cmp.best_baseline()
        );
        assert!(cmp.viewseeker_precision > 0.9);
    }

    #[test]
    fn matching_single_feature_baseline_is_perfect() {
        // For ideal #2 (pure EMD) the EMD baseline must reach precision 1.
        let tb = diab_testbed(TestbedScale::Small(2_000), 6).unwrap();
        let cmp = baseline_experiment(&tb, &ViewSeekerConfig::default(), 2, 5, 80).unwrap();
        let emd = cmp.baselines.iter().find(|b| b.feature == "EMD").unwrap();
        assert_eq!(emd.precision, 1.0);
        assert_eq!(cmp.improvement_factor(), cmp.viewseeker_precision);
    }

    #[test]
    fn bad_ideal_number_is_rejected() {
        let tb = diab_testbed(TestbedScale::Small(1_000), 7).unwrap();
        assert!(baseline_experiment(&tb, &ViewSeekerConfig::default(), 0, 5, 10).is_err());
        assert!(baseline_experiment(&tb, &ViewSeekerConfig::default(), 12, 5, 10).is_err());
    }
}
