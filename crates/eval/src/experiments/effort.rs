//! Experiment 1: user effort (Figures 3 and 4).
//!
//! "Figures 3 and 4 illustrate the effectiveness of the ViewSeeker by
//! showing the number of example views that need to be labeled in order for
//! the view utility estimator to reach 100% precision in the top-k
//! recommended views" — for k ∈ {5, 10, 15, 20, 25, 30}, averaged within
//! each ideal-function group (1–3, 4–6, 7–11).

use serde::Serialize;
use viewseeker_core::{CoreError, ViewSeekerConfig};

use crate::idealfn::{functions_in_group, IdealGroup};
use crate::runner::{exact_feature_matrix, run_session_with_truth, RunnerConfig, StopCriterion};
use crate::testbed::Testbed;

/// The paper's k sweep for Figures 3–4.
pub const PAPER_KS: [usize; 6] = [5, 10, 15, 20, 25, 30];

/// One point of Figure 3/4: a (group, k) cell.
#[derive(Debug, Clone, Serialize)]
pub struct EffortPoint {
    /// Ideal-function group (subfigure a/b/c).
    pub group: IdealGroup,
    /// The k of top-k.
    pub k: usize,
    /// Mean labels needed across the group's ideal functions.
    pub mean_labels: f64,
    /// Whether every run in the cell reached 100% precision.
    pub all_converged: bool,
}

/// Runs Experiment 1 on a testbed: for every group and every `k`, drive a
/// session per ideal function to 100% precision and average the labels
/// spent.
///
/// # Errors
///
/// Propagates session errors.
pub fn user_effort_experiment(
    testbed: &Testbed,
    base_config: &ViewSeekerConfig,
    ks: &[usize],
    max_labels: usize,
) -> Result<Vec<EffortPoint>, CoreError> {
    let config = ViewSeekerConfig {
        bin_configs: testbed.bin_configs.clone(),
        ..base_config.clone()
    };
    let truth = exact_feature_matrix(&testbed.table, &testbed.query, &config)?;

    let mut points = Vec::new();
    for group in IdealGroup::all() {
        let members = functions_in_group(group);
        for &k in ks {
            let mut total = 0.0;
            let mut all_converged = true;
            for f in &members {
                let outcome = run_session_with_truth(
                    &testbed.table,
                    &testbed.query,
                    config.clone(),
                    &f.utility,
                    &RunnerConfig {
                        k,
                        max_labels,
                        stop: StopCriterion::Precision(1.0),
                    },
                    &truth,
                )?;
                total += outcome.labels_used as f64;
                all_converged &= outcome.converged;
            }
            points.push(EffortPoint {
                group,
                k,
                mean_labels: total / members.len() as f64,
                all_converged,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{diab_testbed, TestbedScale};

    #[test]
    fn produces_one_point_per_group_and_k() {
        let tb = diab_testbed(TestbedScale::Small(2_000), 33).unwrap();
        let points =
            user_effort_experiment(&tb, &ViewSeekerConfig::default(), &[5, 10], 120).unwrap();
        assert_eq!(points.len(), 3 * 2);
        for p in &points {
            assert!(p.mean_labels >= 1.0);
            assert!(p.mean_labels <= 120.0);
        }
        // Every (group, k) combination appears exactly once.
        for group in IdealGroup::all() {
            for k in [5usize, 10] {
                assert_eq!(
                    points
                        .iter()
                        .filter(|p| p.group == group && p.k == k)
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn single_component_ideals_converge_on_small_testbed() {
        let tb = diab_testbed(TestbedScale::Small(2_000), 17).unwrap();
        let points = user_effort_experiment(&tb, &ViewSeekerConfig::default(), &[5], 150).unwrap();
        let single = points
            .iter()
            .find(|p| p.group == IdealGroup::Single)
            .unwrap();
        assert!(
            single.all_converged,
            "single-component ideals should reach 100% precision, mean labels {}",
            single.mean_labels
        );
    }
}
