//! The paper's three experiments plus two ablations.
//!
//! * [`effort`] — Experiment 1 (Figures 3 & 4): labels needed to reach 100%
//!   precision@k, swept over k and the three ideal-function groups.
//! * [`baselines`] — Experiment 2 (Figure 5): maximum achievable precision
//!   of ViewSeeker vs the 8 fixed single-feature baselines.
//! * [`optimization`] — §5.2 (Figures 6 & 7): labels and runtime to UD = 0,
//!   optimization on vs off.
//! * [`ablation`] — query-strategy and α-sweep ablations (design choices
//!   DESIGN.md calls out).

pub mod ablation;
pub mod baselines;
pub mod effort;
pub mod optimization;

pub use ablation::{
    alpha_sweep, batch_size_sweep, noise_sweep, strategy_ablation, AlphaPoint, BatchPoint,
    NoisePoint, StrategyPoint,
};
pub use baselines::{baseline_experiment, BaselineComparison};
pub use effort::{user_effort_experiment, EffortPoint};
pub use optimization::{optimization_experiment, OptimizationPoint};
