//! Session runner: drives one ViewSeeker session against a simulated user.
//!
//! The runner owns the measurement protocol shared by all experiments:
//!
//! 1. compute the *exact* feature matrix (full data) to define ground truth;
//! 2. create the (possibly optimization-enabled) [`ViewSeeker`] session;
//! 3. loop: ask the seeker for `M` views, label them with the simulated
//!    user, read the current top-k, record precision and utility distance;
//! 4. stop when the configured criterion is met or the label budget runs
//!    out.

use std::time::{Duration, Instant};

use serde::Serialize;
use viewseeker_core::viewgen::materialize_all_shared;
use viewseeker_core::ViewSpace;
use viewseeker_core::{
    tie_aware_precision_at_k, utility_distance, CompositeUtility, CoreError, FeatureMatrix,
    ViewSeeker, ViewSeekerConfig,
};
use viewseeker_dataset::{SelectQuery, Table};

use crate::simuser::SimulatedUser;

/// When a session run counts as finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCriterion {
    /// Stop once precision@k reaches this value (Experiment 1 uses 1.0).
    Precision(f64),
    /// Stop once the utility distance (Eq. 8) falls to this value or below
    /// (the optimization evaluation uses 0.0).
    UtilityDistance(f64),
}

/// Runner parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerConfig {
    /// The k of top-k.
    pub k: usize,
    /// Maximum labels before giving up.
    pub max_labels: usize,
    /// Stop criterion.
    pub stop: StopCriterion,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            k: 10,
            max_labels: 100,
            stop: StopCriterion::Precision(1.0),
        }
    }
}

/// The record of one simulated session.
#[derive(Debug, Clone, Serialize)]
pub struct SessionOutcome {
    /// Labels spent before the stop criterion was met (= `max_labels` when
    /// it never was).
    pub labels_used: usize,
    /// Whether the stop criterion was met.
    pub converged: bool,
    /// precision@k after each label.
    pub precision_trace: Vec<f64>,
    /// Utility distance after each label.
    pub ud_trace: Vec<f64>,
    /// Total wall-clock of the session (offline initialization + every
    /// iteration, including think-time refinement work).
    pub wall_time: Duration,
    /// Wall-clock time of the offline initialization alone.
    pub init_time: Duration,
    /// User-perceived system time: `wall_time` minus the incremental
    /// refinement the optimization hides inside user think-time (paper
    /// §3.3: "makes the delays transparent to the user"). This is the
    /// quantity Figure 7 compares.
    pub system_time: Duration,
}

impl SessionOutcome {
    /// Final precision@k (0 if no labels were submitted).
    #[must_use]
    pub fn final_precision(&self) -> f64 {
        self.precision_trace.last().copied().unwrap_or(0.0)
    }

    /// Final utility distance (∞ if no labels were submitted).
    #[must_use]
    pub fn final_ud(&self) -> f64 {
        self.ud_trace.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Computes the exact (full-data, α = 1) feature matrix for ground truth.
///
/// # Errors
///
/// Propagates materialization errors.
pub fn exact_feature_matrix(
    table: &Table,
    query: &SelectQuery,
    config: &ViewSeekerConfig,
) -> Result<FeatureMatrix, CoreError> {
    let dq = query.execute(table)?;
    let dr = table.all_rows();
    let space =
        ViewSpace::enumerate_excluding(table, &config.bin_configs, &config.excluded_dimensions)?;
    let views = materialize_all_shared(table, &dq, &dr, &space, config.init_threads)?;
    FeatureMatrix::from_views(&views, config.usability_optimal_bins)
}

/// Runs one full simulated session.
///
/// # Errors
///
/// Propagates seeker and labeling errors.
pub fn run_session(
    table: &Table,
    query: &SelectQuery,
    seeker_config: ViewSeekerConfig,
    ideal: &CompositeUtility,
    runner: &RunnerConfig,
) -> Result<SessionOutcome, CoreError> {
    let truth = exact_feature_matrix(table, query, &seeker_config)?;
    run_session_with_truth(table, query, seeker_config, ideal, runner, &truth)
}

/// Like [`run_session`] but reuses a precomputed exact feature matrix —
/// experiments that sweep k or strategies over one testbed avoid
/// recomputing the ground truth every run.
///
/// # Errors
///
/// Propagates seeker and labeling errors.
pub fn run_session_with_truth(
    table: &Table,
    query: &SelectQuery,
    seeker_config: ViewSeekerConfig,
    ideal: &CompositeUtility,
    runner: &RunnerConfig,
    truth: &FeatureMatrix,
) -> Result<SessionOutcome, CoreError> {
    let user = SimulatedUser::new(ideal, truth)?;
    run_session_with_user(table, query, seeker_config, &user, runner)
}

/// Like [`run_session_with_truth`] but with an explicit (possibly noisy)
/// simulated user. Precision and UD are always measured against the user's
/// exact ground truth, regardless of label noise.
///
/// # Errors
///
/// Propagates seeker and labeling errors.
pub fn run_session_with_user(
    table: &Table,
    query: &SelectQuery,
    seeker_config: ViewSeekerConfig,
    user: &SimulatedUser,
    runner: &RunnerConfig,
) -> Result<SessionOutcome, CoreError> {
    let views_per_iteration = seeker_config.views_per_iteration;
    let ideal_top = user.ideal_top_k(runner.k);

    let started = Instant::now();
    let mut seeker = ViewSeeker::new(table, query, seeker_config)?;
    let init_time = started.elapsed();

    let mut precision_trace = Vec::new();
    let mut ud_trace = Vec::new();
    let mut converged = false;

    'outer: while seeker.label_count() < runner.max_labels {
        let batch = seeker.next_views(views_per_iteration)?;
        if batch.is_empty() {
            break;
        }
        for view in batch {
            seeker.submit_feedback(view, user.label(view)?)?;
            let recommended = seeker.recommend(runner.k)?;
            // Tie-aware precision: exact boundary ties are common in the
            // synthetic view space (e.g. COUNT views duplicate across
            // measures), so set-intersection precision is ill-posed — see
            // metrics::tie_aware_precision_at_k and EXPERIMENTS.md.
            let p = tie_aware_precision_at_k(user.true_scores(), &recommended, runner.k);
            let ud = utility_distance(user.true_scores(), &recommended, &ideal_top);
            precision_trace.push(p);
            ud_trace.push(ud);
            let met = match runner.stop {
                StopCriterion::Precision(target) => p >= target,
                StopCriterion::UtilityDistance(target) => ud <= target,
            };
            if met {
                converged = true;
                break 'outer;
            }
            if seeker.label_count() >= runner.max_labels {
                break 'outer;
            }
        }
    }

    let wall_time = started.elapsed();
    Ok(SessionOutcome {
        labels_used: seeker.label_count(),
        converged,
        precision_trace,
        ud_trace,
        system_time: wall_time.saturating_sub(seeker.refinement_time()),
        wall_time,
        init_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idealfn::ideal_functions;
    use crate::testbed::{diab_testbed, TestbedScale};
    use viewseeker_core::UtilityFeature;

    fn testbed() -> crate::testbed::Testbed {
        diab_testbed(TestbedScale::Small(3_000), 21).unwrap()
    }

    #[test]
    fn converges_on_a_single_component_ideal() {
        let tb = testbed();
        let ideal = CompositeUtility::single(UtilityFeature::Emd);
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            &ideal,
            &RunnerConfig {
                k: 5,
                max_labels: 80,
                stop: StopCriterion::Precision(1.0),
            },
        )
        .unwrap();
        assert!(outcome.converged, "labels used: {}", outcome.labels_used);
        assert_eq!(outcome.final_precision(), 1.0);
        assert!(outcome.labels_used <= 80);
        assert_eq!(outcome.precision_trace.len(), outcome.labels_used);
        assert_eq!(outcome.ud_trace.len(), outcome.labels_used);
    }

    #[test]
    fn ud_stop_criterion_works() {
        let tb = testbed();
        let ideal = &ideal_functions()[3].utility; // 0.5 EMD + 0.5 KL
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            ideal,
            &RunnerConfig {
                k: 10,
                max_labels: 100,
                stop: StopCriterion::UtilityDistance(0.0),
            },
        )
        .unwrap();
        assert!(outcome.converged);
        assert!(outcome.final_ud() <= 1e-12);
    }

    #[test]
    fn label_budget_is_respected() {
        let tb = testbed();
        let ideal = CompositeUtility::single(UtilityFeature::Accuracy);
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            &ideal,
            &RunnerConfig {
                k: 30,
                max_labels: 3,
                stop: StopCriterion::Precision(1.0),
            },
        )
        .unwrap();
        assert!(outcome.labels_used <= 3);
    }

    #[test]
    fn precision_trace_is_bounded() {
        let tb = testbed();
        let ideal = CompositeUtility::single(UtilityFeature::Kl);
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            &ideal,
            &RunnerConfig::default(),
        )
        .unwrap();
        assert!(outcome
            .precision_trace
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
        assert!(outcome.init_time <= outcome.wall_time);
    }
}
