//! Simulated-user evaluation harness for ViewSeeker.
//!
//! Reproduces the paper's experimental testbed (§4) and experiments (§5):
//!
//! * [`idealfn`] — Table 2's eleven simulated ideal utility functions;
//! * [`simuser`] — the simulated user, who labels a presented view with its
//!   normalized ideal-utility score;
//! * [`testbed`] — the DIAB and SYN testbeds of Table 1 (record counts,
//!   attribute shapes, the 0.5%-selectivity hypercube query);
//! * [`runner`] — drives one ViewSeeker session against the simulated user,
//!   recording labels used, precision and utility-distance traces, and
//!   wall-clock time;
//! * [`experiments`] — Experiment 1 (user effort, Figures 3–4), Experiment 2
//!   (baseline comparison, Figure 5), and the optimization evaluation
//!   (Figures 6–7), plus the query-strategy and α-sweep ablations;
//! * [`report`] — renders experiment output as markdown tables (the rows
//!   behind each figure) and JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod idealfn;
pub mod report;
pub mod runner;
pub mod simuser;
pub mod testbed;

pub use idealfn::{ideal_functions, IdealFunction, IdealGroup};
pub use runner::{run_session, RunnerConfig, SessionOutcome, StopCriterion};
pub use simuser::SimulatedUser;
pub use testbed::{diab_testbed, syn_testbed, Testbed, TestbedScale};
