//! The ViewSeeker session (Algorithm 1).
//!
//! ```text
//! Require: the raw data set DR and a subset DQ specified by a query
//! Ensure:  the view utility estimator VE
//!  1: U  ← generateViews(DQ, DR)
//!  2: L  ← obtain initial set of view labels          (cold start)
//!  3: VE ← initialize view utility estimator using L
//!  4: UE ← initialize uncertainty estimator using L
//!  5: loop
//!  6:   choose one x from U using UE                  (uncertainty sampling)
//!  7:   solicit user's label on x
//!  8:   L ← L ∪ {x};  U ← U − {x}
//!  9:   VE ← refine VE using L;  UE ← refine UE using L
//! 10:   T ← recommend top views using VE
//! 11:   if the user is satisfied with T then break
//! 12: end loop
//! 13: return the most recent VE
//! ```
//!
//! [`ViewSeeker`] binds the loop to bar-chart views over a table: it runs
//! the offline initialization (view materialization + feature computation,
//! on an α-sample when the §3.3 optimization is enabled), then delegates the
//! interactive loop to a [`FeedbackSession`] while interleaving incremental
//! feature refinement between labeling prompts. The caller (a UI or the
//! simulated-user harness) alternates [`ViewSeeker::next_views`] and
//! [`ViewSeeker::submit_feedback`], reading [`ViewSeeker::recommend`]
//! whenever it wants the current top-k; the session never terminates itself
//! (stopping is the user's decision, line 11).

use std::borrow::Borrow;
use std::sync::Arc;
use std::time::Duration;

use viewseeker_dataset::sample::bernoulli_sample;
use viewseeker_dataset::{RowSet, SelectQuery, Table, ZoneMaps};

use crate::config::{MaterializeStrategy, RefineBudget, ViewSeekerConfig};
use crate::estimator::Label;
use crate::features::{compute_features, FeatureMatrix};
use crate::optimize::IncrementalRefiner;
use crate::session::FeedbackSession;
use crate::trace::{
    duration_us, noop_tracer, IterationTrace, RefinementBudgetReport, Stopwatch, TracePhase, Tracer,
};
use crate::view::{ViewId, ViewSpace};
use crate::viewgen::{
    materialize_all, materialize_all_fused_pruned, materialize_all_fused_with_stats,
    materialize_all_shared, materialize_view, scan_group_count, FusedRetained,
};
use crate::CoreError;

/// Which stage of the interactive phase the session is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekerPhase {
    /// Collecting the first positive and negative labels by probing each
    /// utility feature's top view (then random fallback).
    ColdStart,
    /// Uncertainty-sampling-driven refinement of both estimators.
    Active,
}

/// An interactive view-recommendation session over one table and query.
///
/// Generic over *how* the table is held: `H` is anything that borrows a
/// [`Table`]. Library and test code typically borrows
/// ([`ViewSeeker`], i.e. `Seeker<&Table>`); long-lived services that must own
/// their sessions use [`OwnedSeeker`] (`Seeker<Arc<Table>>`), which has no
/// borrow lifetime and can live in a registry across requests.
#[derive(Debug)]
pub struct Seeker<H: Borrow<Table>> {
    table: H,
    query: SelectQuery,
    dq: RowSet,
    dr: RowSet,
    config: ViewSeekerConfig,
    space: ViewSpace,
    /// Zone maps of the current table, when the caller supplied them (or
    /// the zone-pruned path built them); `None` for sessions that never
    /// needed pruning.
    zones: Option<Arc<ZoneMaps>>,
    /// The fused scan's mergeable raw aggregates, retained when the session
    /// was materialized exactly (fused executor, no α-sampling) so dataset
    /// appends fold in with a tail-only scan.
    retained: Option<FusedRetained>,
    /// Working copy of the matrix that refinement mutates; the session holds
    /// its own copy and is refreshed through `update_matrix`.
    matrix: FeatureMatrix,
    session: FeedbackSession,
    refiner: Option<IncrementalRefiner>,
    refinement_time: Duration,
    tracer: Arc<dyn Tracer>,
    iterations: u64,
    materialization: MaterializationReport,
}

/// What the offline materialization scan cost, for observability: which
/// executor ran, how many scans and rows it spent, and how long it took.
/// Read it back with [`Seeker::materialization`]; services feed it into
/// their metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaterializationReport {
    /// The executor that materialized the view space.
    pub strategy: MaterializeStrategy,
    /// Worker threads the scan was allowed to use.
    pub threads: usize,
    /// Sequential row-range passes the executor performed (the fused
    /// executor reports 1–2 for the whole space; the unfused paths report
    /// their per-view/per-group scan counts).
    pub scans: u64,
    /// Total rows visited across those passes.
    pub rows_scanned: u64,
    /// Row groups visited while evaluating the DQ predicate (zone-pruned
    /// fused path only; 0 when no zone maps were consulted).
    pub rowgroups_scanned: u64,
    /// Row groups the zone maps excluded from the DQ evaluation without
    /// reading a value.
    pub rowgroups_pruned: u64,
    /// Wall-clock of the materialization call, microseconds.
    pub duration_us: u64,
}

/// What one [`Seeker::absorb_append`] call did: whether the appended tail
/// was folded into the retained fused aggregates (a tail-only scan) or the
/// whole view space was re-materialized, and what the scan cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// `true` when only the appended rows were scanned and merged into the
    /// retained aggregates; `false` when the session fell back to a full
    /// rebuild (non-fused strategy, α-sampled session, or a categorical
    /// dimension grew a new distinct value).
    pub merged: bool,
    /// Rows the table grew by.
    pub appended_rows: u64,
    /// Rows visited by this absorption's scan.
    pub rows_scanned: u64,
    /// Row groups visited while re-evaluating the DQ predicate (full
    /// zone-pruned rebuilds only; 0 on the merged tail path).
    pub rowgroups_scanned: u64,
    /// Row groups the zone maps excluded during that re-evaluation.
    pub rowgroups_pruned: u64,
}

/// The per-phase timing of one [`Seeker::run_refinement`] pass, fed into the
/// iteration trace by [`Seeker::next_views`].
#[derive(Debug, Default)]
struct RefinementReport {
    pruning_us: u64,
    refinement_us: u64,
    fit_us: u64,
    refined: usize,
    pending_after: usize,
    budget: Option<RefinementBudgetReport>,
}

/// A session borrowing its table — the original `ViewSeeker` shape; call
/// sites like `ViewSeeker::new(&table, &query, config)` are unchanged.
pub type ViewSeeker<'a> = Seeker<&'a Table>;

/// A session owning its table behind an [`std::sync::Arc`], for registries
/// and services that outlive any one stack frame.
pub type OwnedSeeker = Seeker<std::sync::Arc<Table>>;

impl<H: Borrow<Table>> Seeker<H> {
    /// Runs the offline initialization phase: executes the query to obtain
    /// `DQ`, enumerates the view space, materializes every view (with the
    /// configured [`MaterializeStrategy`]; the fused single-scan executor by
    /// default), and computes the feature matrix — on an α% sample when the
    /// optimization is enabled (`config.alpha < 1`).
    ///
    /// # Errors
    ///
    /// Configuration validation errors, query errors, and materialization
    /// errors.
    pub fn new(table: H, query: &SelectQuery, config: ViewSeekerConfig) -> Result<Self, CoreError> {
        Self::new_traced(table, query, config, noop_tracer())
    }

    /// [`Seeker::new`] with caller-supplied zone maps (see
    /// [`Seeker::new_traced_with_zones`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Seeker::new`].
    pub fn new_with_zones(
        table: H,
        query: &SelectQuery,
        config: ViewSeekerConfig,
        zones: Option<Arc<ZoneMaps>>,
    ) -> Result<Self, CoreError> {
        Self::new_traced_with_zones(table, query, config, zones, noop_tracer())
    }

    /// [`Seeker::new`] with an explicit [`Tracer`]: the offline phases
    /// (view-space generation + materialization, feature extraction) are
    /// timed into it, and every later interactive turn reports there too.
    /// Pass a shared [`crate::trace::Recorder`] handle to observe the
    /// session; `Seeker::new` uses the free [`noop_tracer`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Seeker::new`].
    pub fn new_traced(
        table: H,
        query: &SelectQuery,
        config: ViewSeekerConfig,
        tracer: Arc<dyn Tracer>,
    ) -> Result<Self, CoreError> {
        Self::new_traced_with_zones(table, query, config, None, tracer)
    }

    /// [`Seeker::new_traced`] with the table's zone maps supplied by the
    /// caller (a catalog that loaded them from a VSC2 manifest). With the
    /// fused executor and no α-sampling, the `DQ` predicate is then
    /// evaluated through the zones — row groups the zones provably exclude
    /// are skipped without reading a value, and the counts appear in
    /// [`MaterializationReport::rowgroups_scanned`] /
    /// [`MaterializationReport::rowgroups_pruned`]. Passing `None` builds
    /// zone maps in-memory when that path needs them.
    ///
    /// # Errors
    ///
    /// Same contract as [`Seeker::new`].
    pub fn new_traced_with_zones(
        table: H,
        query: &SelectQuery,
        config: ViewSeekerConfig,
        zones: Option<Arc<ZoneMaps>>,
        tracer: Arc<dyn Tracer>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let table_ref: &Table = table.borrow();
        let dr = table_ref.all_rows();

        let gen_started = Stopwatch::start();
        let space = ViewSpace::enumerate_excluding(
            table_ref,
            &config.bin_configs,
            &config.excluded_dimensions,
        )?;

        let threads = config.effective_threads();
        let mat_started = Stopwatch::start();
        // The zone-pruned fused path needs exact features (no α-sampling):
        // its retained aggregates must describe the full data to stay
        // mergeable across appends.
        let exact_fused = config.materialize == MaterializeStrategy::Fused && config.alpha >= 1.0;
        let (views, dq, scans, rows_scanned, rowgroups, zones, retained) = if exact_fused {
            let zones = match zones {
                Some(z) => z,
                None => Arc::new(ZoneMaps::build(table_ref, 0)),
            };
            let (views, dq, stats, retained) = materialize_all_fused_pruned(
                table_ref,
                &zones,
                query.predicate(),
                &space,
                threads,
            )?;
            (
                views,
                dq,
                stats.scans,
                stats.rows_scanned,
                (stats.rowgroups_scanned, stats.rowgroups_pruned),
                Some(zones),
                Some(retained),
            )
        } else {
            let dq = query.execute(table_ref)?;
            let (init_dq, init_dr) = if config.alpha < 1.0 {
                (
                    bernoulli_sample(&dq, config.alpha, config.seed),
                    bernoulli_sample(&dr, config.alpha, config.seed.wrapping_add(1)),
                )
            } else {
                (dq.clone(), dr.clone())
            };
            let (views, scans, rows_scanned) = match config.materialize {
                MaterializeStrategy::Naive => {
                    let views = materialize_all(table_ref, &init_dq, &init_dr, &space, threads)?;
                    // Per view: one target scan, one reference scan, one
                    // dispersion pass over the target.
                    let v = space.len() as u64;
                    let rows = v * (2 * init_dq.len() as u64 + init_dr.len() as u64);
                    (views, 3 * v, rows)
                }
                MaterializeStrategy::Shared => {
                    let views =
                        materialize_all_shared(table_ref, &init_dq, &init_dr, &space, threads)?;
                    let groups = scan_group_count(&space) as u64;
                    let rows = groups * (init_dq.len() as u64 + init_dr.len() as u64);
                    (views, 2 * groups, rows)
                }
                MaterializeStrategy::Fused => {
                    let (views, stats) = materialize_all_fused_with_stats(
                        table_ref, &init_dq, &init_dr, &space, threads,
                    )?;
                    (views, stats.scans, stats.rows_scanned)
                }
            };
            (views, dq, scans, rows_scanned, (0, 0), zones, None)
        };
        let mat_elapsed = mat_started.elapsed();
        let materialization = MaterializationReport {
            strategy: config.materialize,
            threads,
            scans,
            rows_scanned,
            rowgroups_scanned: rowgroups.0,
            rowgroups_pruned: rowgroups.1,
            duration_us: duration_us(mat_elapsed),
        };
        tracer.record_span(TracePhase::Materialization, mat_elapsed);
        tracer.record_span(TracePhase::ViewSpaceGen, gen_started.elapsed());

        let feat_started = Stopwatch::start();
        let matrix = FeatureMatrix::from_views(&views, config.usability_optimal_bins)?;
        tracer.record_span(TracePhase::FeatureExtraction, feat_started.elapsed());

        let refiner = (config.alpha < 1.0).then(|| IncrementalRefiner::new(space.len()));
        let session = FeedbackSession::new(matrix.clone(), config.clone())?;

        Ok(Self {
            table,
            query: query.clone(),
            dq,
            dr,
            config,
            space,
            zones,
            retained,
            matrix,
            session,
            refiner,
            refinement_time: Duration::ZERO,
            tracer,
            iterations: 0,
            materialization,
        })
    }

    /// The offline materialization's executor, scan counts, and timing.
    #[must_use]
    pub fn materialization(&self) -> &MaterializationReport {
        &self.materialization
    }

    /// Whether the session holds mergeable fused aggregates, so the next
    /// [`Seeker::absorb_append`] can fold appended rows in with a tail-only
    /// scan instead of re-materializing the view space.
    #[must_use]
    pub fn can_merge_appends(&self) -> bool {
        self.retained.is_some()
    }

    /// Rebinds the session to a grown version of its table — `table` must be
    /// the same dataset with `appended` rows added at the end (same schema,
    /// existing rows unchanged, categorical dictionaries extended
    /// append-only) — and brings every view, feature, and estimator up to
    /// date with the new rows without touching the collected labels.
    ///
    /// Sessions holding retained fused aggregates
    /// ([`Seeker::can_merge_appends`]) scan only the appended tail and merge
    /// its raw aggregates in; everything else (non-fused strategies,
    /// α-sampled sessions, or a categorical dimension that grew a new
    /// distinct value and so changed the view space's bin shapes) falls back
    /// to a full re-materialization. Either way the rebuilt features are
    /// exact, so any outstanding α-refinement debt is cleared.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] when `table`'s schema differs from the
    /// session's or it has fewer rows; materialization and estimator-refit
    /// errors.
    pub fn absorb_append(
        &mut self,
        table: H,
        zones: Option<Arc<ZoneMaps>>,
    ) -> Result<AppendReport, CoreError> {
        let new_ref: &Table = table.borrow();
        if new_ref.schema() != self.table.borrow().schema() {
            return Err(CoreError::Invalid(
                "absorb_append: the grown table's schema differs from the session's".into(),
            ));
        }
        let old_rows = self.dr.len();
        let new_rows = new_ref.row_count();
        if new_rows < old_rows {
            return Err(CoreError::Invalid(format!(
                "absorb_append: table shrank from {old_rows} to {new_rows} rows"
            )));
        }
        let appended_rows = (new_rows - old_rows) as u64;
        let threads = self.config.effective_threads();

        // Fast path: fold the tail into the retained fused aggregates.
        if let Some(retained) = &mut self.retained {
            if let Some((views, tail_dq, stats)) = retained.absorb_append(
                new_ref,
                old_rows,
                self.query.predicate(),
                &self.space,
                threads,
            )? {
                let matrix = FeatureMatrix::from_views(&views, self.config.usability_optimal_bins)?;
                self.session.update_matrix(matrix.clone())?;
                self.matrix = matrix;
                self.dq = self.dq.union(&tail_dq);
                self.dr = new_ref.all_rows();
                self.zones = zones;
                self.table = table;
                return Ok(AppendReport {
                    merged: true,
                    appended_rows,
                    rows_scanned: stats.rows_scanned,
                    rowgroups_scanned: 0,
                    rowgroups_pruned: 0,
                });
            }
        }

        // Full rebuild — always exact (no α-sampling), which also clears any
        // outstanding refinement debt and, on the fused path, re-arms the
        // retained aggregates for the next append. The view space is
        // re-enumerated so categorical bin specs pick up dictionary values
        // the appended rows introduced; enumeration is deterministic over
        // the (unchanged) schema, so views keep their ids and count — which
        // `update_matrix` requires to preserve the session's labels.
        let space = ViewSpace::enumerate_excluding(
            new_ref,
            &self.config.bin_configs,
            &self.config.excluded_dimensions,
        )?;
        if space.len() != self.space.len() {
            return Err(CoreError::Invalid(format!(
                "absorb_append: view space changed size ({} -> {})",
                self.space.len(),
                space.len()
            )));
        }
        self.space = space;
        let report = match self.config.materialize {
            MaterializeStrategy::Fused => {
                let zones = match zones {
                    Some(z) => z,
                    None => Arc::new(ZoneMaps::build(new_ref, 0)),
                };
                let (views, dq, stats, retained) = materialize_all_fused_pruned(
                    new_ref,
                    &zones,
                    self.query.predicate(),
                    &self.space,
                    threads,
                )?;
                let matrix = FeatureMatrix::from_views(&views, self.config.usability_optimal_bins)?;
                self.session.update_matrix(matrix.clone())?;
                self.matrix = matrix;
                self.dq = dq;
                self.zones = Some(zones);
                self.retained = Some(retained);
                AppendReport {
                    merged: false,
                    appended_rows,
                    rows_scanned: stats.rows_scanned,
                    rowgroups_scanned: stats.rowgroups_scanned,
                    rowgroups_pruned: stats.rowgroups_pruned,
                }
            }
            MaterializeStrategy::Naive => {
                let dq = self.query.execute(new_ref)?;
                let dr = new_ref.all_rows();
                let views = materialize_all(new_ref, &dq, &dr, &self.space, threads)?;
                let v = self.space.len() as u64;
                let rows_scanned = v * (2 * dq.len() as u64 + dr.len() as u64);
                let matrix = FeatureMatrix::from_views(&views, self.config.usability_optimal_bins)?;
                self.session.update_matrix(matrix.clone())?;
                self.matrix = matrix;
                self.dq = dq;
                self.zones = zones;
                self.retained = None;
                AppendReport {
                    merged: false,
                    appended_rows,
                    rows_scanned,
                    rowgroups_scanned: 0,
                    rowgroups_pruned: 0,
                }
            }
            MaterializeStrategy::Shared => {
                let dq = self.query.execute(new_ref)?;
                let dr = new_ref.all_rows();
                let views = materialize_all_shared(new_ref, &dq, &dr, &self.space, threads)?;
                let groups = scan_group_count(&self.space) as u64;
                let rows_scanned = groups * (dq.len() as u64 + dr.len() as u64);
                let matrix = FeatureMatrix::from_views(&views, self.config.usability_optimal_bins)?;
                self.session.update_matrix(matrix.clone())?;
                self.matrix = matrix;
                self.dq = dq;
                self.zones = zones;
                self.retained = None;
                AppendReport {
                    merged: false,
                    appended_rows,
                    rows_scanned,
                    rowgroups_scanned: 0,
                    rowgroups_pruned: 0,
                }
            }
        };
        self.refiner = None;
        self.dr = new_ref.all_rows();
        self.table = table;
        Ok(report)
    }

    /// Replaces the session's tracer (the default is the no-op one). Spans
    /// already recorded stay with the previous tracer.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Interactive iterations completed so far (one per
    /// [`Seeker::next_views`] call).
    #[must_use]
    pub fn iteration_count(&self) -> u64 {
        self.iterations
    }

    /// The current phase of the session.
    #[must_use]
    pub fn phase(&self) -> SeekerPhase {
        self.session.phase()
    }

    /// The enumerated view space.
    #[must_use]
    pub fn view_space(&self) -> &ViewSpace {
        &self.space
    }

    /// The table handle the seeker was built over. For `OwnedSeeker` this is
    /// the `Arc<Table>`, so callers can check that sessions share one
    /// allocation (`Arc::ptr_eq`) rather than each owning a copy.
    #[must_use]
    pub fn table_handle(&self) -> &H {
        &self.table
    }

    /// The current feature matrix (rough values may still be present while
    /// refinement is incomplete).
    #[must_use]
    pub fn feature_matrix(&self) -> &FeatureMatrix {
        self.session.feature_matrix()
    }

    /// All labels collected so far, in submission order.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        self.session.labels()
    }

    /// Number of views labeled so far (the "user effort" measure of
    /// Experiment 1).
    #[must_use]
    pub fn label_count(&self) -> usize {
        self.session.label_count()
    }

    /// Number of views still holding rough (α-sampled) features; 0 when the
    /// optimization is disabled or refinement has finished.
    #[must_use]
    pub fn pending_refinements(&self) -> usize {
        self.refiner.as_ref().map_or(0, IncrementalRefiner::pending)
    }

    /// The rows selected by the session's query (`DQ`).
    #[must_use]
    pub fn dq(&self) -> &RowSet {
        &self.dq
    }

    /// Total wall-clock spent in incremental refinement so far.
    ///
    /// Refinement runs between labeling prompts — work the paper hides
    /// inside user think-time ("makes the delays transparent to the user",
    /// §3.3). Harnesses measuring user-perceived system latency subtract
    /// this from the session's total wall-clock.
    #[must_use]
    pub fn refinement_time(&self) -> Duration {
        self.refinement_time
    }

    /// Selects the next `m` views to present to the user for labeling
    /// (Algorithm 1, line 6). Runs the incremental-refinement budget first —
    /// the work the paper hides inside user think-time.
    ///
    /// Returns an empty vector once every view has been labeled.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn next_views(&mut self, m: usize) -> Result<Vec<ViewId>, CoreError> {
        let started = Stopwatch::start();
        let report = self.run_refinement()?;
        let sampling_started = Stopwatch::start();
        let picks = self.session.next_items(m)?;
        let sampling_us = duration_us(sampling_started.elapsed());

        self.iterations += 1;
        self.tracer.record_iteration(IterationTrace {
            iteration: self.iterations,
            pruning_us: report.pruning_us,
            refinement_us: report.refinement_us,
            estimator_fit_us: report.fit_us,
            sampling_us,
            total_us: duration_us(started.elapsed()),
            views_refined: report.refined,
            pending_after: report.pending_after,
            budget: report.budget,
        });
        Ok(picks)
    }

    /// Records the user's feedback on a view and refines both estimators
    /// (Algorithm 1, lines 7–11).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidLabel`] for a score outside `[0, 1]`;
    /// * [`CoreError::UnknownView`] / [`CoreError::AlreadyLabeled`];
    /// * estimator-fitting errors.
    pub fn submit_feedback(&mut self, view: ViewId, score: f64) -> Result<(), CoreError> {
        let started = Stopwatch::start();
        let result = self.session.submit_feedback(view, score);
        self.tracer
            .record_span(TracePhase::EstimatorFit, started.elapsed());
        result
    }

    /// The current top-`k` recommendation by the view utility estimator
    /// (Algorithm 1, line 12 / the set `T`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label has been submitted.
    pub fn recommend(&self, k: usize) -> Result<Vec<ViewId>, CoreError> {
        let started = Stopwatch::start();
        let result = self.session.recommend(k);
        self.tracer
            .record_span(TracePhase::Recommend, started.elapsed());
        result
    }

    /// The view utility estimator's predicted score for every view.
    ///
    /// Scoring is parallelized across views on `config.init_threads` worker
    /// threads — this is the hot path of every interactive turn (refinement
    /// prioritization, recommendation, and diverse re-ranking all consume
    /// it), and it is embarrassingly parallel.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label has been submitted.
    pub fn predicted_scores(&self) -> Result<Vec<f64>, CoreError> {
        self.session
            .predicted_scores_parallel(self.config.effective_threads())
    }

    /// A diversified top-`k` recommendation (DiVE-style MMR, see
    /// [`crate::diversity`]): avoids returning five aggregate variants of
    /// the same underlying deviation.
    ///
    /// # Errors
    ///
    /// Same contract as [`FeedbackSession::recommend_diverse`].
    pub fn recommend_diverse(&self, k: usize, lambda: f64) -> Result<Vec<ViewId>, CoreError> {
        let started = Stopwatch::start();
        let result = self.session.recommend_diverse(k, lambda);
        self.tracer
            .record_span(TracePhase::Recommend, started.elapsed());
        result
    }

    /// The learned feature weights (the discovered β of Eq. 4), once fitted.
    #[must_use]
    pub fn learned_weights(&self) -> Option<&[f64]> {
        self.session.learned_weights()
    }

    /// Runs one incremental-refinement budget (paper §3.3): recomputes the
    /// full-data features of the highest-priority still-rough views, then
    /// renormalizes the matrix and pushes it into the session (which refits
    /// the estimators). Returns the phase timings of the pass for the
    /// iteration trace.
    fn run_refinement(&mut self) -> Result<RefinementReport, CoreError> {
        let Some(refiner) = &mut self.refiner else {
            return Ok(RefinementReport::default());
        };
        if refiner.is_complete() {
            return Ok(RefinementReport::default());
        }
        let started = Stopwatch::start();
        // Priority: the current utility estimator's ranking, else view order
        // before any labels exist. This ranking *is* the §3.3 pruning:
        // low-priority views sit at the back of the queue and may never be
        // refined before the user stops.
        let priority: Vec<usize> = if self.session.label_count() > 0 {
            let scores = self.session.predicted_scores()?;
            viewseeker_stats::rank_descending(&scores)
        } else {
            (0..self.space.len()).collect()
        };
        let pruning_us = duration_us(started.elapsed());

        let batch_started = Stopwatch::start();
        let table = self.table.borrow();
        let dq = &self.dq;
        let dr = &self.dr;
        let space = &self.space;
        let matrix = &mut self.matrix;
        let opt_bins = self.config.usability_optimal_bins;
        let refined = refiner.refine_batch(&priority, self.config.refine_budget, |i| {
            let def = space.def(ViewId::new_unchecked(i))?;
            let data = materialize_view(table, dq, dr, def)?;
            matrix.update_raw(i, compute_features(&data, opt_bins)?)
        })?;
        let batch_elapsed = batch_started.elapsed();
        self.tracer
            .record_span(TracePhase::Pruning, Duration::from_micros(pruning_us));
        self.tracer
            .record_span(TracePhase::Refinement, batch_elapsed);
        let refinement_us = duration_us(batch_elapsed);

        let fit_started = Stopwatch::start();
        if refined > 0 {
            self.matrix.renormalize();
            self.session.update_matrix(self.matrix.clone())?;
        }
        let fit_us = duration_us(fit_started.elapsed());

        self.refinement_time += started.elapsed();
        let budget = Some(match self.config.refine_budget {
            RefineBudget::Views(budget) => RefinementBudgetReport::Views { budget, refined },
            RefineBudget::Time(budget) => RefinementBudgetReport::Time {
                budget_us: duration_us(budget),
                actual_us: refinement_us,
            },
        });
        Ok(RefinementReport {
            pruning_us,
            refinement_us,
            fit_us,
            refined,
            pending_after: refiner.pending(),
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::CompositeUtility;
    use crate::config::RefineBudget;
    use crate::features::UtilityFeature;
    use crate::metrics::precision_at_k;
    use std::collections::HashSet;
    use viewseeker_dataset::generate::{generate_diab, DiabConfig};
    use viewseeker_dataset::Predicate;

    fn testbed() -> (viewseeker_dataset::Table, SelectQuery) {
        let table = generate_diab(&DiabConfig::small(3_000, 11)).unwrap();
        let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
        (table, query)
    }

    /// Drives a session against a simulated user until 100% precision at
    /// `k` is reached or `max_labels` are spent; returns labels used.
    fn drive(
        seeker: &mut ViewSeeker<'_>,
        ideal: &CompositeUtility,
        k: usize,
        max_labels: usize,
    ) -> usize {
        let ideal_scores = ideal.normalized_scores(seeker.feature_matrix()).unwrap();
        let ideal_top = ideal.top_k(seeker.feature_matrix(), k).unwrap();
        drive_toward(seeker, &ideal_scores, &ideal_top, k, max_labels)
    }

    fn drive_toward(
        seeker: &mut ViewSeeker<'_>,
        ideal_scores: &[f64],
        ideal_top: &[ViewId],
        k: usize,
        max_labels: usize,
    ) -> usize {
        for used in 1..=max_labels {
            let picks = seeker.next_views(1).unwrap();
            let Some(v) = picks.first().copied() else {
                return used - 1;
            };
            seeker.submit_feedback(v, ideal_scores[v.index()]).unwrap();
            let rec = seeker.recommend(k).unwrap();
            if precision_at_k(&rec, ideal_top) >= 1.0 {
                return used;
            }
        }
        max_labels
    }

    #[test]
    fn session_starts_in_cold_start_and_transitions() {
        let (table, query) = testbed();
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        assert_eq!(s.phase(), SeekerPhase::ColdStart);
        assert_eq!(s.label_count(), 0);

        // Label one clearly-positive and one clearly-negative view.
        let v1 = s.next_views(1).unwrap()[0];
        s.submit_feedback(v1, 0.9).unwrap();
        assert_eq!(s.phase(), SeekerPhase::ColdStart);
        let v2 = s.next_views(1).unwrap()[0];
        s.submit_feedback(v2, 0.1).unwrap();
        assert_eq!(s.phase(), SeekerPhase::Active);
        assert_eq!(s.label_count(), 2);
    }

    #[test]
    fn learns_a_single_component_ideal_quickly() {
        let (table, query) = testbed();
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let ideal = CompositeUtility::single(UtilityFeature::Emd);
        let used = drive(&mut s, &ideal, 5, 60);
        assert!(used < 60, "did not converge within 60 labels");
        let ideal_top = ideal.top_k(s.feature_matrix(), 5).unwrap();
        assert_eq!(precision_at_k(&s.recommend(5).unwrap(), &ideal_top), 1.0);
    }

    #[test]
    fn learns_a_composite_ideal() {
        let (table, query) = testbed();
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let ideal = CompositeUtility::new(&[(UtilityFeature::Emd, 0.5), (UtilityFeature::Kl, 0.5)])
            .unwrap();
        let used = drive(&mut s, &ideal, 10, 120);
        assert!(used < 120, "composite ideal did not converge");
    }

    #[test]
    fn feedback_validation() {
        let (table, query) = testbed();
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let v = s.next_views(1).unwrap()[0];
        assert!(matches!(
            s.submit_feedback(v, 1.5),
            Err(CoreError::InvalidLabel(_))
        ));
        assert!(matches!(
            s.submit_feedback(v, f64::NAN),
            Err(CoreError::InvalidLabel(_))
        ));
        s.submit_feedback(v, 0.5).unwrap();
        assert!(matches!(
            s.submit_feedback(v, 0.5),
            Err(CoreError::AlreadyLabeled(_))
        ));
        let bogus = ViewId::new_unchecked(999_999);
        assert!(matches!(
            s.submit_feedback(bogus, 0.5),
            Err(CoreError::UnknownView(_))
        ));
    }

    #[test]
    fn recommend_before_any_label_errors() {
        let (table, query) = testbed();
        let s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        assert!(matches!(s.recommend(5), Err(CoreError::Learn(_))));
        assert!(s.learned_weights().is_none());
    }

    #[test]
    fn exhausting_the_view_space_returns_empty() {
        let table = generate_diab(&DiabConfig {
            rows: 300,
            dimension_cardinalities: vec![2],
            measures: 1,
            ..DiabConfig::default()
        })
        .unwrap();
        let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        assert_eq!(s.view_space().len(), 5); // 1 dim × 1 measure × 5 aggs
        for i in 0..5 {
            let v = s.next_views(1).unwrap()[0];
            s.submit_feedback(v, if i % 2 == 0 { 0.9 } else { 0.1 })
                .unwrap();
        }
        assert!(s.next_views(1).unwrap().is_empty());
    }

    #[test]
    fn alpha_sampling_initializes_rough_then_refines() {
        let (table, query) = testbed();
        let cfg = ViewSeekerConfig {
            alpha: 0.2,
            refine_budget: RefineBudget::Views(50),
            ..ViewSeekerConfig::default()
        };
        let mut s = ViewSeeker::new(&table, &query, cfg).unwrap();
        let total = s.view_space().len();
        assert_eq!(s.pending_refinements(), total);
        // Each next_views() call consumes one refinement budget.
        let _ = s.next_views(1).unwrap();
        assert_eq!(s.pending_refinements(), total - 50);
        for _ in 0..(total / 50) + 1 {
            let _ = s.next_views(1).unwrap();
        }
        assert_eq!(s.pending_refinements(), 0);
        assert!(s.refinement_time() > Duration::ZERO);
    }

    #[test]
    fn optimized_session_still_converges() {
        let (table, query) = testbed();
        let cfg = ViewSeekerConfig {
            alpha: 0.3,
            refine_budget: RefineBudget::Views(30),
            ..ViewSeekerConfig::default()
        };
        let mut s = ViewSeeker::new(&table, &query, cfg).unwrap();
        let ideal = CompositeUtility::single(UtilityFeature::L2);
        // The simulated user scores views on the *exact* features (a real
        // user reacts to the true rendered charts, not the seeker's rough
        // approximation), so convergence requires refinement to pull the
        // session's features toward the exact ones. Computing the ideal on
        // `s.feature_matrix()` here would target the alpha-sampled rough
        // ranking, which refinement then moves away from.
        let exact = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let ideal_scores = ideal.normalized_scores(exact.feature_matrix()).unwrap();
        let ideal_top = ideal.top_k(exact.feature_matrix(), 5).unwrap();
        let used = drive_toward(&mut s, &ideal_scores, &ideal_top, 5, 150);
        assert!(used < 150, "optimized session did not converge");
    }

    #[test]
    fn deterministic_given_seed() {
        let (table, query) = testbed();
        let run = || {
            let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
            let ideal = CompositeUtility::single(UtilityFeature::Kl);
            let scores = ideal.normalized_scores(s.feature_matrix()).unwrap();
            let mut trace = Vec::new();
            for _ in 0..10 {
                let v = s.next_views(1).unwrap()[0];
                trace.push(v.index());
                s.submit_feedback(v, scores[v.index()]).unwrap();
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fused_sessions_are_identical_across_thread_counts() {
        // The determinism regression guard for the fused executor: a full
        // simulated-user session — labels chosen by the seeker, scores from
        // an ideal utility, recommendations read every turn — must produce
        // the identical sequence at threads=1 and threads=8. α-sampling is
        // on so the DQ ⊄ DR tail path is exercised too.
        let (table, query) = testbed();
        let run = |threads: usize| {
            let cfg = ViewSeekerConfig {
                alpha: 0.4,
                refine_budget: RefineBudget::Views(25),
                init_threads: threads,
                materialize: MaterializeStrategy::Fused,
                ..ViewSeekerConfig::default()
            };
            let mut s = ViewSeeker::new(&table, &query, cfg).unwrap();
            let ideal = CompositeUtility::single(UtilityFeature::Emd);
            let scores = ideal.normalized_scores(s.feature_matrix()).unwrap();
            let mut trace = Vec::new();
            for _ in 0..12 {
                let v = s.next_views(1).unwrap()[0];
                trace.push(v.index());
                s.submit_feedback(v, scores[v.index()]).unwrap();
                let rec: Vec<usize> = s.recommend(3).unwrap().iter().map(|v| v.index()).collect();
                trace.extend(rec);
            }
            trace
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn materialization_report_reflects_the_executor() {
        let (table, query) = testbed();
        let fused = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let report = *fused.materialization();
        assert_eq!(report.strategy, MaterializeStrategy::Fused);
        assert_eq!(report.scans, 1, "DQ ⊆ DR without sampling: one pass");
        assert_eq!(report.rows_scanned, 3_000);

        let shared = ViewSeeker::new(
            &table,
            &query,
            ViewSeekerConfig {
                materialize: MaterializeStrategy::Shared,
                ..ViewSeekerConfig::default()
            },
        )
        .unwrap();
        let naive = ViewSeeker::new(
            &table,
            &query,
            ViewSeekerConfig {
                materialize: MaterializeStrategy::Naive,
                ..ViewSeekerConfig::default()
            },
        )
        .unwrap();
        assert!(shared.materialization().scans > report.scans);
        assert!(naive.materialization().scans > shared.materialization().scans);
        assert!(naive.materialization().rows_scanned > shared.materialization().rows_scanned);
        assert!(shared.materialization().rows_scanned > report.rows_scanned);
    }

    #[test]
    fn iteration_traces_account_for_next_views_wall_time() {
        use crate::trace::Recorder;

        let (table, query) = testbed();
        let cfg = ViewSeekerConfig {
            alpha: 0.2,
            refine_budget: RefineBudget::Views(40),
            ..ViewSeekerConfig::default()
        };
        let recorder = Recorder::shared();
        let mut s = ViewSeeker::new_traced(
            &table,
            &query,
            cfg,
            Arc::clone(&recorder) as Arc<dyn Tracer>,
        )
        .unwrap();

        // Offline phases were timed during construction.
        assert_eq!(recorder.phase_total(TracePhase::ViewSpaceGen).count, 1);
        assert_eq!(recorder.phase_total(TracePhase::FeatureExtraction).count, 1);

        let mut wall = Vec::new();
        for i in 0..4 {
            let started = Stopwatch::start();
            let v = s.next_views(1).unwrap()[0];
            wall.push(started.elapsed());
            s.submit_feedback(v, if i % 2 == 0 { 0.9 } else { 0.1 })
                .unwrap();
        }
        let _ = s.recommend(5).unwrap();

        assert_eq!(s.iteration_count(), 4);
        assert_eq!(recorder.iteration_count(), 4);
        let traces = recorder.iterations();
        assert_eq!(traces.len(), 4);
        for (trace, wall) in traces.iter().zip(&wall) {
            // The per-phase durations sum to within 10% of the measured
            // wall time of next_views (acceptance criterion). The phases
            // cover everything but a handful of Instant::now calls, so
            // with a 40-view refinement batch dominating each iteration
            // the slack is generous.
            let wall_us = wall.as_micros() as u64;
            assert!(
                trace.phase_sum_us() * 10 >= trace.total_us * 9,
                "phase sum {} vs traced total {}",
                trace.phase_sum_us(),
                trace.total_us
            );
            assert!(
                trace.total_us <= wall_us,
                "traced total {} exceeds measured wall {}",
                trace.total_us,
                wall_us
            );
            assert!(
                trace.phase_sum_us() * 10 >= wall_us * 9,
                "phase sum {} vs wall {}",
                trace.phase_sum_us(),
                wall_us
            );
            // Refinement reported against its configured budget.
            assert_eq!(
                trace.budget,
                Some(crate::trace::RefinementBudgetReport::Views {
                    budget: 40,
                    refined: trace.views_refined,
                })
            );
            assert_eq!(trace.views_refined, 40);
        }
        assert!(recorder.phase_total(TracePhase::Refinement).total_us > 0);
        assert!(recorder.phase_total(TracePhase::EstimatorFit).count >= 4);
        assert_eq!(recorder.phase_total(TracePhase::Recommend).count, 1);
    }

    #[test]
    fn time_budget_is_reported_against_actual() {
        let (table, query) = testbed();
        let cfg = ViewSeekerConfig {
            alpha: 0.2,
            refine_budget: RefineBudget::Time(Duration::from_millis(5)),
            ..ViewSeekerConfig::default()
        };
        let recorder = crate::trace::Recorder::shared();
        let mut s = ViewSeeker::new_traced(
            &table,
            &query,
            cfg,
            Arc::clone(&recorder) as Arc<dyn Tracer>,
        )
        .unwrap();
        let _ = s.next_views(1).unwrap();
        let trace = recorder.last_iteration().unwrap();
        match trace.budget {
            Some(crate::trace::RefinementBudgetReport::Time {
                budget_us,
                actual_us,
            }) => {
                assert_eq!(budget_us, 5_000);
                assert!(actual_us > 0);
            }
            other => panic!("expected a time budget report, got {other:?}"),
        }
    }

    #[test]
    fn full_init_sessions_trace_without_refinement_phases() {
        let (table, query) = testbed();
        let recorder = crate::trace::Recorder::shared();
        let mut s = ViewSeeker::new_traced(
            &table,
            &query,
            ViewSeekerConfig::default(),
            Arc::clone(&recorder) as Arc<dyn Tracer>,
        )
        .unwrap();
        let _ = s.next_views(1).unwrap();
        let trace = recorder.last_iteration().unwrap();
        assert_eq!(trace.budget, None);
        assert_eq!(trace.views_refined, 0);
        assert_eq!(trace.refinement_us, 0);
        assert_eq!(trace.pending_after, 0);
    }

    #[test]
    fn m_views_per_iteration() {
        let (table, query) = testbed();
        let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let picks = s.next_views(3).unwrap();
        assert_eq!(picks.len(), 3);
        // Distinct views.
        let set: HashSet<usize> = picks.iter().map(|v| v.index()).collect();
        assert_eq!(set.len(), 3);
    }

    /// Splits a diab table into a prefix (dictionary preserved by `gather`)
    /// and the full table, for append-absorption tests.
    fn split(table: &Table, prefix_rows: usize) -> Table {
        let ids = (0..prefix_rows as u32).collect::<Vec<_>>();
        table
            .gather(&RowSet::from_sorted_ids(ids).unwrap())
            .unwrap()
    }

    #[test]
    fn absorb_append_merges_tail_into_retained_aggregates() {
        let (full, query) = testbed();
        let prefix = split(&full, 2_000);

        let mut grown = ViewSeeker::new(&prefix, &query, ViewSeekerConfig::default()).unwrap();
        assert!(grown.can_merge_appends(), "default fused path retains");
        // Collect labels before the append so estimator state must survive.
        let v1 = grown.next_views(1).unwrap()[0];
        grown.submit_feedback(v1, 0.9).unwrap();
        let v2 = grown.next_views(1).unwrap()[0];
        grown.submit_feedback(v2, 0.1).unwrap();

        let report = grown.absorb_append(&full, None).unwrap();
        assert!(report.merged, "tail should fold into retained aggregates");
        assert_eq!(report.appended_rows, 1_000);
        assert!(
            report.rows_scanned <= 2 * 1_000,
            "merged path scans only the tail, not the {} prefix rows (scanned {})",
            2_000,
            report.rows_scanned
        );
        assert!(grown.can_merge_appends(), "still mergeable for next append");

        // The merged session's features match a session materialized from
        // scratch over the full table. (Not bit-for-bit: the merge adds the
        // tail's bucket sums to the prefix's in one step, while the fresh
        // scan accumulates row by row — same values, different float
        // association.)
        let fresh = ViewSeeker::new(&full, &query, ViewSeekerConfig::default()).unwrap();
        assert_eq!(grown.feature_matrix().len(), fresh.feature_matrix().len());
        for (i, (a, b)) in grown
            .feature_matrix()
            .rows()
            .iter()
            .zip(fresh.feature_matrix().rows())
            .enumerate()
        {
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "view {i}: merged feature {x} vs fresh {y}"
                );
            }
        }
        assert_eq!(grown.dq().ids(), fresh.dq().ids());
        // Labels survived and the session keeps recommending.
        assert_eq!(grown.label_count(), 2);
        assert!(grown.recommend(3).unwrap().len() <= 3);
    }

    #[test]
    fn absorb_append_rebuilds_on_new_categorical_value() {
        let schema = || {
            viewseeker_dataset::Schema::builder()
                .categorical_dimension("city")
                .measure("sales")
                .build()
                .unwrap()
        };
        let rows = |values: &[(&str, f64)]| {
            let mut b = viewseeker_dataset::builder::TableBuilder::new(schema());
            for (city, sales) in values {
                b.push_row(viewseeker_dataset::row![*city, *sales]).unwrap();
            }
            b.finish().unwrap()
        };
        let mut base: Vec<(&str, f64)> = (0..200)
            .map(|i| (if i % 2 == 0 { "x" } else { "y" }, f64::from(i)))
            .collect();
        let prefix = rows(&base);
        // The appended rows introduce dictionary value "z": the retained
        // categorical bin specs can't describe it, so the session must
        // re-enumerate and re-materialize instead of merging.
        base.extend((0..50).map(|i| ("z", f64::from(1_000 + i))));
        let full = rows(&base);

        let query = SelectQuery::new(Predicate::eq("city", "x"));
        let mut s = ViewSeeker::new(&prefix, &query, ViewSeekerConfig::default()).unwrap();
        assert!(s.can_merge_appends());
        let report = s.absorb_append(&full, None).unwrap();
        assert!(!report.merged, "new dictionary value forces a rebuild");
        assert_eq!(report.appended_rows, 50);
        assert!(s.can_merge_appends(), "rebuild re-arms the fused retention");

        let fresh = ViewSeeker::new(&full, &query, ViewSeekerConfig::default()).unwrap();
        assert_eq!(s.feature_matrix(), fresh.feature_matrix());
        assert_eq!(s.dq().ids(), fresh.dq().ids());
    }

    #[test]
    fn absorb_append_rebuilds_for_sampled_and_unfused_sessions() {
        let (full, query) = testbed();
        let prefix = split(&full, 2_000);
        for cfg in [
            ViewSeekerConfig {
                alpha: 0.4,
                ..ViewSeekerConfig::default()
            },
            ViewSeekerConfig {
                materialize: MaterializeStrategy::Shared,
                ..ViewSeekerConfig::default()
            },
        ] {
            let mut s = ViewSeeker::new(&prefix, &query, cfg).unwrap();
            assert!(!s.can_merge_appends());
            let report = s.absorb_append(&full, None).unwrap();
            assert!(!report.merged);
            assert_eq!(report.appended_rows, 1_000);
            // The rebuild is exact, so refinement debt is gone.
            assert_eq!(s.pending_refinements(), 0);
            assert_eq!(s.dq().ids(), query.execute(&full).unwrap().ids());
        }
    }

    #[test]
    fn absorb_append_rejects_schema_changes_and_shrinks() {
        let (full, query) = testbed();
        let prefix = split(&full, 2_000);
        let mut s = ViewSeeker::new(&full, &query, ViewSeekerConfig::default()).unwrap();
        assert!(matches!(
            s.absorb_append(&prefix, None),
            Err(CoreError::Invalid(_))
        ));
        let schema = viewseeker_dataset::Schema::builder()
            .categorical_dimension("city")
            .measure("sales")
            .build()
            .unwrap();
        let mut b = viewseeker_dataset::builder::TableBuilder::new(schema);
        b.push_row(viewseeker_dataset::row!["a", 1.0]).unwrap();
        let other = b.finish().unwrap();
        assert!(matches!(
            s.absorb_append(&other, None),
            Err(CoreError::Invalid(_))
        ));
    }
}
