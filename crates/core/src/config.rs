//! ViewSeeker configuration.
//!
//! Defaults reproduce the paper's testbed parameters (Table 1): one view
//! presented per iteration (`M = 1`), α = 10% partial-data ratio, a 1-second
//! per-iteration time limit, and the 8 utility features of §3.1.

use std::time::Duration;

use crate::CoreError;

/// How much incremental-refinement work may run between labeling prompts
/// (the paper's "spare computing power ... while ensuring the time
/// constraint tl is obeyed").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineBudget {
    /// Refine at most this many views per iteration (deterministic; used by
    /// tests and reproducible experiments).
    Views(usize),
    /// Refine until this much wall-clock time has elapsed (the paper's
    /// actual mechanism; used by the runtime benchmarks).
    Time(Duration),
}

/// Which active-learning query strategy drives the interactive phase.
///
/// The paper uses least-confidence uncertainty sampling; the alternatives
/// exist for the strategy-ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStrategyKind {
    /// Least-confidence uncertainty sampling (paper §3.2, the default).
    Uncertainty,
    /// Uniform random selection among unlabeled views.
    Random,
    /// Bootstrap query-by-committee with the given committee size.
    QueryByCommittee {
        /// Number of committee members (≥ 2).
        committee_size: usize,
    },
}

/// Which executor materializes the view space during the offline phase.
///
/// All three produce the same views — [`MaterializeStrategy::Naive`] and
/// [`MaterializeStrategy::Shared`] are kept as oracles for the fused
/// executor's differential tests — but their scan counts differ by orders
/// of magnitude (see `viewseeker_dataset::executor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaterializeStrategy {
    /// One target scan, one reference scan, and one dispersion pass *per
    /// view* (~3·|views| scans). The slowest path and the ground-truth
    /// oracle.
    Naive,
    /// SeeDB-style sharing: one target and one reference scan per
    /// `(dimension, bins, measure)` group (~2·|groups| scans).
    Shared,
    /// The fused executor: every group answered by a single
    /// partition-parallel pass, bit-identical across thread counts.
    #[default]
    Fused,
}

impl MaterializeStrategy {
    /// Stable lowercase name (used in CLI flags, session specs, and logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MaterializeStrategy::Naive => "naive",
            MaterializeStrategy::Shared => "shared",
            MaterializeStrategy::Fused => "fused",
        }
    }
}

impl std::fmt::Display for MaterializeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MaterializeStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(MaterializeStrategy::Naive),
            "shared" => Ok(MaterializeStrategy::Shared),
            "fused" => Ok(MaterializeStrategy::Fused),
            other => Err(format!(
                "unknown materialize strategy {other:?} (expected naive, shared, or fused)"
            )),
        }
    }
}

/// Configuration of a [`crate::ViewSeeker`] session.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSeekerConfig {
    /// Views presented to the user per iteration (paper default: 1).
    pub views_per_iteration: usize,
    /// Equal-width bin configurations applied to each *numeric* dimension
    /// attribute; categorical dimensions always use their natural bins.
    /// (The SYN testbed uses `[3, 4]`.)
    pub bin_configs: Vec<usize>,
    /// Feedback at or above this value counts as a positive label.
    pub positive_threshold: f64,
    /// Ridge regularization of the view utility estimator.
    pub ridge_lambda: f64,
    /// L2 regularization of the uncertainty estimator.
    pub logistic_lambda: f64,
    /// Ideal on-screen bin count for the usability feature.
    pub usability_optimal_bins: f64,
    /// Fraction of data used for the initial "rough" feature pass
    /// (α, paper §3.3). `1.0` disables the optimization.
    pub alpha: f64,
    /// Incremental-refinement budget per iteration (only meaningful when
    /// `alpha < 1.0`).
    pub refine_budget: RefineBudget,
    /// Dimension attributes to omit from the view space — typically the
    /// attributes the query already constrains (SeeDB's convention), whose
    /// views would be trivially deviating point masses.
    pub excluded_dimensions: Vec<String>,
    /// Active-learning query strategy for the interactive phase.
    pub strategy: QueryStrategyKind,
    /// Seed for all stochastic choices (sampling, random fallback).
    pub seed: u64,
    /// Number of worker threads for parallelizable per-view work: the
    /// offline feature pass and predicted-score evaluation (1 = serial).
    /// The `VIEWSEEKER_THREADS` environment variable overrides this at
    /// session construction (see [`ViewSeekerConfig::effective_threads`]).
    pub init_threads: usize,
    /// Executor for offline view materialization (default: fused).
    pub materialize: MaterializeStrategy,
}

impl Default for ViewSeekerConfig {
    fn default() -> Self {
        Self {
            views_per_iteration: 1,
            bin_configs: vec![3, 4],
            positive_threshold: 0.5,
            ridge_lambda: 1e-4,
            logistic_lambda: 1e-3,
            usability_optimal_bins: 8.0,
            alpha: 1.0,
            refine_budget: RefineBudget::Time(Duration::from_millis(200)),
            excluded_dimensions: Vec::new(),
            strategy: QueryStrategyKind::Uncertainty,
            seed: 0x5EEC_4EED,
            init_threads: 1,
            materialize: MaterializeStrategy::default(),
        }
    }
}

impl ViewSeekerConfig {
    /// The thread count materialization actually uses: `init_threads`,
    /// unless the `VIEWSEEKER_THREADS` environment variable is set to a
    /// positive integer — the single-switch override CI uses to force the
    /// whole suite through the serial paths. Deterministic executors mean
    /// the override never changes results, only scheduling.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        match std::env::var("VIEWSEEKER_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => self.init_threads,
        }
    }

    /// The paper's optimization-enabled configuration: α = 10%, tl = 1 s.
    #[must_use]
    pub fn optimized() -> Self {
        Self {
            alpha: 0.10,
            refine_budget: RefineBudget::Time(Duration::from_secs(1)),
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.views_per_iteration == 0 {
            return Err(CoreError::Invalid("views_per_iteration must be ≥ 1".into()));
        }
        if self.bin_configs.is_empty() || self.bin_configs.contains(&0) {
            return Err(CoreError::Invalid(
                "bin_configs must be non-empty and positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.positive_threshold) {
            return Err(CoreError::Invalid(format!(
                "positive_threshold {} outside [0, 1]",
                self.positive_threshold
            )));
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(CoreError::Invalid(format!(
                "alpha {} outside (0, 1]",
                self.alpha
            )));
        }
        if self.ridge_lambda < 0.0 || self.logistic_lambda < 0.0 {
            return Err(CoreError::Invalid("regularization must be ≥ 0".into()));
        }
        if self.usability_optimal_bins <= 0.0 {
            return Err(CoreError::Invalid(
                "usability_optimal_bins must be positive".into(),
            ));
        }
        if self.init_threads == 0 {
            return Err(CoreError::Invalid("init_threads must be ≥ 1".into()));
        }
        if let QueryStrategyKind::QueryByCommittee { committee_size } = self.strategy {
            if committee_size < 2 {
                return Err(CoreError::Invalid(
                    "a query-by-committee needs at least 2 members".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ViewSeekerConfig::default().validate().unwrap();
        ViewSeekerConfig::optimized().validate().unwrap();
    }

    #[test]
    fn optimized_matches_table_1() {
        let c = ViewSeekerConfig::optimized();
        assert!((c.alpha - 0.10).abs() < 1e-12);
        assert_eq!(c.refine_budget, RefineBudget::Time(Duration::from_secs(1)));
        assert_eq!(c.views_per_iteration, 1);
    }

    #[test]
    fn fused_is_the_default_executor() {
        assert_eq!(
            ViewSeekerConfig::default().materialize,
            MaterializeStrategy::Fused
        );
        assert_eq!(
            ViewSeekerConfig::optimized().materialize,
            MaterializeStrategy::Fused
        );
    }

    #[test]
    fn materialize_strategy_round_trips_through_names() {
        for s in [
            MaterializeStrategy::Naive,
            MaterializeStrategy::Shared,
            MaterializeStrategy::Fused,
        ] {
            assert_eq!(s.name().parse::<MaterializeStrategy>().unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!("NAIVE".parse::<MaterializeStrategy>().is_err());
        assert!("".parse::<MaterializeStrategy>().is_err());
    }

    #[test]
    fn effective_threads_defaults_to_init_threads() {
        // The env override itself is exercised by the CI job that exports
        // VIEWSEEKER_THREADS=1 for the whole suite; here we only pin the
        // fallback (reading the variable in-test would race other tests).
        let c = ViewSeekerConfig {
            init_threads: 3,
            ..ViewSeekerConfig::default()
        };
        if std::env::var("VIEWSEEKER_THREADS").is_err() {
            assert_eq!(c.effective_threads(), 3);
        } else {
            assert!(c.effective_threads() >= 1);
        }
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let base = ViewSeekerConfig::default();
        for bad in [
            ViewSeekerConfig {
                views_per_iteration: 0,
                ..base.clone()
            },
            ViewSeekerConfig {
                bin_configs: vec![],
                ..base.clone()
            },
            ViewSeekerConfig {
                bin_configs: vec![3, 0],
                ..base.clone()
            },
            ViewSeekerConfig {
                positive_threshold: 1.5,
                ..base.clone()
            },
            ViewSeekerConfig {
                alpha: 0.0,
                ..base.clone()
            },
            ViewSeekerConfig {
                alpha: 1.1,
                ..base.clone()
            },
            ViewSeekerConfig {
                ridge_lambda: -1.0,
                ..base.clone()
            },
            ViewSeekerConfig {
                usability_optimal_bins: 0.0,
                ..base.clone()
            },
            ViewSeekerConfig {
                init_threads: 0,
                ..base.clone()
            },
            ViewSeekerConfig {
                strategy: QueryStrategyKind::QueryByCommittee { committee_size: 1 },
                ..base.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }
}
