//! Recommendation quality metrics.
//!
//! * [`precision_at_k`] — the paper's Experiment 1/2 measure: the size of
//!   the intersection between the recommended top-k and the ideal top-k,
//!   divided by k.
//! * [`utility_distance`] — Eq. 8, used by the optimization evaluation to
//!   remove top-k tie non-determinism: the ideal utility mass the
//!   recommendation *missed*, averaged over k. `UD = 0` iff the recommended
//!   set is utility-equivalent to the ideal set, even if the identities of
//!   tied boundary views differ.

use viewseeker_dataset::strict_sum;

use crate::view::ViewId;

/// `|Vᵖ ∩ V*| / k` where both slices hold top-k view ids.
///
/// `k` is taken from `ideal.len()`; duplicate ids inside a slice are counted
/// once. Returns 0 for an empty ideal set.
#[must_use]
pub fn precision_at_k(recommended: &[ViewId], ideal: &[ViewId]) -> f64 {
    if ideal.is_empty() {
        return 0.0;
    }
    let hit = recommended
        .iter()
        .filter(|v| ideal.contains(v))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    hit as f64 / ideal.len() as f64
}

/// Tie-aware precision@k: the fraction of the first `k` recommended views
/// whose ideal score is at least the k-th largest ideal score (within a tiny
/// tolerance).
///
/// Motivation (paper §5.2): "views directly after the kth view may have very
/// close, or even identical, utility as the kth view. In such cases,
/// changing the order among these close views should not affect the
/// precision". With synthetic view spaces exact ties are common (e.g. COUNT
/// views are identical across measures), so set-intersection precision can
/// never reach 1 even for a perfectly learned utility function; this variant
/// counts any view tied with the boundary as a hit.
#[must_use]
pub fn tie_aware_precision_at_k(ideal_scores: &[f64], recommended: &[ViewId], k: usize) -> f64 {
    if k == 0 || ideal_scores.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = ideal_scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let kth = sorted[k.min(sorted.len()) - 1];
    let hits = recommended
        .iter()
        .take(k)
        .filter(|v| ideal_scores[v.index()] >= kth - 1e-9)
        .count();
    hits as f64 / k as f64
}

/// Utility distance (Eq. 8):
///
/// ```text
/// UD = ( Σ_{v ∈ V*} u*(v)  −  Σ_{v ∈ Vᵖ} u*(v) ) / k
/// ```
///
/// `ideal_scores` is the full per-view score vector of `u*`; ids index into
/// it. Non-negative whenever `ideal` really is the top-k under those scores;
/// tiny negative round-off is clamped to zero.
#[must_use]
pub fn utility_distance(ideal_scores: &[f64], recommended: &[ViewId], ideal: &[ViewId]) -> f64 {
    if ideal.is_empty() {
        return 0.0;
    }
    let sum = |ids: &[ViewId]| -> f64 { strict_sum(ids.iter().map(|v| ideal_scores[v.index()])) };
    let ud = (sum(ideal) - sum(recommended)) / ideal.len() as f64;
    if ud.abs() < 1e-12 {
        0.0
    } else {
        ud
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<ViewId> {
        v.iter().map(|i| ViewId::new_unchecked(*i)).collect()
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at_k(&ids(&[0, 1, 2]), &ids(&[0, 1, 2])), 1.0);
        assert_eq!(
            precision_at_k(&ids(&[0, 1, 9]), &ids(&[0, 1, 2])),
            2.0 / 3.0
        );
        assert_eq!(precision_at_k(&ids(&[7, 8, 9]), &ids(&[0, 1, 2])), 0.0);
        assert_eq!(precision_at_k(&ids(&[0]), &ids(&[])), 0.0);
    }

    #[test]
    fn precision_is_order_insensitive() {
        assert_eq!(precision_at_k(&ids(&[2, 0, 1]), &ids(&[0, 1, 2])), 1.0);
    }

    #[test]
    fn precision_counts_duplicates_once() {
        assert_eq!(
            precision_at_k(&ids(&[0, 0, 0]), &ids(&[0, 1, 2])),
            1.0 / 3.0
        );
    }

    #[test]
    fn tie_aware_precision_counts_boundary_ties() {
        // Scores: views 2 and 3 tie at the k=3 boundary.
        let scores = vec![0.9, 0.8, 0.5, 0.5, 0.1];
        // Recommending 3 instead of 2 is a full hit.
        assert_eq!(tie_aware_precision_at_k(&scores, &ids(&[0, 1, 3]), 3), 1.0);
        // Recommending view 4 (below the boundary) is a miss.
        assert_eq!(
            tie_aware_precision_at_k(&scores, &ids(&[0, 1, 4]), 3),
            2.0 / 3.0
        );
        // Degenerate inputs.
        assert_eq!(tie_aware_precision_at_k(&scores, &ids(&[0]), 0), 0.0);
        assert_eq!(tie_aware_precision_at_k(&[], &ids(&[]), 3), 0.0);
        // Only the first k recommendations count.
        assert_eq!(
            tie_aware_precision_at_k(&scores, &ids(&[0, 1, 2, 4]), 3),
            1.0
        );
    }

    #[test]
    fn ud_zero_for_identical_sets() {
        let scores = vec![0.9, 0.8, 0.7, 0.1];
        assert_eq!(
            utility_distance(&scores, &ids(&[0, 1, 2]), &ids(&[0, 1, 2])),
            0.0
        );
    }

    #[test]
    fn ud_zero_for_utility_equivalent_ties() {
        // Views 2 and 3 tie; swapping them keeps UD = 0 even though
        // precision would drop — exactly the non-determinism Eq. 8 removes.
        let scores = vec![0.9, 0.8, 0.5, 0.5];
        let ud = utility_distance(&scores, &ids(&[0, 1, 3]), &ids(&[0, 1, 2]));
        assert_eq!(ud, 0.0);
        assert!(precision_at_k(&ids(&[0, 1, 3]), &ids(&[0, 1, 2])) < 1.0);
    }

    #[test]
    fn ud_measures_missed_utility_mass() {
        let scores = vec![1.0, 0.8, 0.6, 0.0];
        // Recommending view 3 (score 0) instead of view 2 (0.6) over k = 3.
        let ud = utility_distance(&scores, &ids(&[0, 1, 3]), &ids(&[0, 1, 2]));
        assert!((ud - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ud_empty_ideal_is_zero() {
        assert_eq!(utility_distance(&[1.0], &ids(&[0]), &ids(&[])), 0.0);
    }
}
