//! Phase-level tracing of the interactive loop.
//!
//! The paper's engineering claim is that α-sampling, incremental refinement,
//! and priority pruning keep every interactive iteration inside a time
//! budget `tl` (§3.3). Verifying that claim — and trusting any later
//! optimization — requires seeing *where* an iteration's time goes. This
//! module provides a dependency-free span API the seeker reports into:
//!
//! * [`TracePhase`] names the phases of a session (offline view-space
//!   generation and feature extraction; interactive pruning, refinement,
//!   estimator fits, uncertainty sampling, recommendation).
//! * [`Tracer`] is the reporting trait. The default [`NoopTracer`] discards
//!   everything and costs a virtual call per span — nothing else.
//! * [`Recorder`] is a thread-safe implementation that accumulates
//!   cumulative per-phase totals plus a bounded window of recent
//!   [`IterationTrace`]s, one per `next_views` call, each breaking the
//!   iteration's wall time into its phases and reporting the
//!   incremental-refinement batch against its configured budget.
//!
//! Durations are recorded in whole microseconds: sub-microsecond phases
//! exist (a no-op refinement check), and µs granularity keeps every counter
//! a `u64` that sums without overflow for centuries of tracing.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use serde::{Number, Serialize, Value};

/// The phases of an interactive session, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Offline: view-space enumeration plus materializing every candidate
    /// view's target/reference distributions (shared-scan, α-sampled).
    ViewSpaceGen,
    /// Offline: the materialization scan itself — a sub-span of
    /// [`TracePhase::ViewSpaceGen`], isolated so the executor choice
    /// (naive / shared / fused) is directly comparable in the phase totals.
    Materialization,
    /// Offline: computing the 8-component utility-feature matrix.
    FeatureExtraction,
    /// Interactive: ranking still-rough views by the current utility
    /// estimator to prioritize refinement (the pruning of §3.3 — low-ranked
    /// views may never be refined).
    Pruning,
    /// Interactive: one incremental-refinement batch — rematerializing
    /// high-priority views on the full data and recomputing their features.
    Refinement,
    /// Interactive: refitting the utility and uncertainty estimators (after
    /// a refinement batch or a new label).
    EstimatorFit,
    /// Interactive: selecting the next views to label (uncertainty
    /// sampling, or the cold-start probe).
    UncertaintySampling,
    /// Producing the top-k recommendation.
    Recommend,
}

impl TracePhase {
    /// Every phase, in execution order.
    pub const ALL: [TracePhase; 8] = [
        TracePhase::ViewSpaceGen,
        TracePhase::Materialization,
        TracePhase::FeatureExtraction,
        TracePhase::Pruning,
        TracePhase::Refinement,
        TracePhase::EstimatorFit,
        TracePhase::UncertaintySampling,
        TracePhase::Recommend,
    ];

    /// Stable snake_case name (used in logs, metrics, and JSON payloads).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::ViewSpaceGen => "view_space_gen",
            TracePhase::Materialization => "materialization",
            TracePhase::FeatureExtraction => "feature_extraction",
            TracePhase::Pruning => "pruning",
            TracePhase::Refinement => "refinement",
            TracePhase::EstimatorFit => "estimator_fit",
            TracePhase::UncertaintySampling => "uncertainty_sampling",
            TracePhase::Recommend => "recommend",
        }
    }

    fn index(self) -> usize {
        match self {
            TracePhase::ViewSpaceGen => 0,
            TracePhase::Materialization => 1,
            TracePhase::FeatureExtraction => 2,
            TracePhase::Pruning => 3,
            TracePhase::Refinement => 4,
            TracePhase::EstimatorFit => 5,
            TracePhase::UncertaintySampling => 6,
            TracePhase::Recommend => 7,
        }
    }
}

impl Serialize for TracePhase {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_owned())
    }
}

/// The incremental-refinement batch of one iteration, reported against its
/// configured budget (the paper's `tl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementBudgetReport {
    /// A deterministic per-iteration view-count budget.
    Views {
        /// Maximum views the batch was allowed to refine.
        budget: usize,
        /// Views actually refined.
        refined: usize,
    },
    /// A wall-clock budget (the paper's actual mechanism).
    Time {
        /// The configured allowance, microseconds.
        budget_us: u64,
        /// Wall time the batch actually took, microseconds. May exceed
        /// `budget_us` by up to one view's refinement cost: the budget is
        /// checked between views, never mid-view.
        actual_us: u64,
    },
}

impl Serialize for RefinementBudgetReport {
    fn to_value(&self) -> Value {
        let fields = match self {
            RefinementBudgetReport::Views { budget, refined } => vec![
                ("kind".to_owned(), Value::String("views".to_owned())),
                (
                    "budget".to_owned(),
                    Value::Number(Number::PosInt(*budget as u64)),
                ),
                (
                    "refined".to_owned(),
                    Value::Number(Number::PosInt(*refined as u64)),
                ),
            ],
            RefinementBudgetReport::Time {
                budget_us,
                actual_us,
            } => vec![
                ("kind".to_owned(), Value::String("time".to_owned())),
                (
                    "budget_us".to_owned(),
                    Value::Number(Number::PosInt(*budget_us)),
                ),
                (
                    "actual_us".to_owned(),
                    Value::Number(Number::PosInt(*actual_us)),
                ),
            ],
        };
        Value::Object(fields)
    }
}

/// The phase breakdown of one interactive iteration (one `next_views`
/// call). The four phase fields sum to within instrumentation overhead —
/// a few `Instant::now` calls — of `total_us`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IterationTrace {
    /// 1-based iteration number within the session.
    pub iteration: u64,
    /// µs ranking rough views to prioritize refinement (pruning).
    pub pruning_us: u64,
    /// µs rematerializing views and recomputing their features.
    pub refinement_us: u64,
    /// µs refitting the estimators after the refinement batch.
    pub estimator_fit_us: u64,
    /// µs selecting the next views to label.
    pub sampling_us: u64,
    /// Total wall µs of the `next_views` call.
    pub total_us: u64,
    /// Views refined by this iteration's batch.
    pub views_refined: usize,
    /// Views still holding rough features after the batch.
    pub pending_after: usize,
    /// The refinement budget-vs-actual, when the α-sampling optimization is
    /// active and refinement is still incomplete.
    pub budget: Option<RefinementBudgetReport>,
}

impl IterationTrace {
    /// Sum of the per-phase durations (everything except inter-phase
    /// instrumentation overhead).
    #[must_use]
    pub fn phase_sum_us(&self) -> u64 {
        self.pruning_us + self.refinement_us + self.estimator_fit_us + self.sampling_us
    }
}

/// Cumulative statistics for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct PhaseTotal {
    /// Spans recorded.
    pub count: u64,
    /// Total microseconds across those spans.
    pub total_us: u64,
}

/// The reporting sink the seeker emits spans and iteration traces into.
///
/// Implementations must be cheap when disabled — the seeker calls these on
/// every interactive turn — and thread-safe, since an owned seeker may be
/// driven from a server worker pool while another thread reads the trace.
pub trait Tracer: Send + Sync + std::fmt::Debug {
    /// Records one timed span of `phase`.
    fn record_span(&self, phase: TracePhase, duration: Duration);

    /// Records one complete interactive iteration.
    fn record_iteration(&self, trace: IterationTrace);
}

/// The default tracer: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record_span(&self, _phase: TracePhase, _duration: Duration) {}
    fn record_iteration(&self, _trace: IterationTrace) {}
}

/// A no-op tracer handle (the default for every seeker).
#[must_use]
pub fn noop_tracer() -> Arc<dyn Tracer> {
    Arc::new(NoopTracer)
}

/// Recent iterations retained by a [`Recorder`]; older traces roll off but
/// stay counted in the cumulative per-phase totals.
pub const RETAINED_ITERATIONS: usize = 128;

#[derive(Debug, Default)]
struct RecorderInner {
    totals: [PhaseTotal; TracePhase::ALL.len()],
    iterations: VecDeque<IterationTrace>,
    iteration_count: u64,
}

/// A thread-safe [`Tracer`] that accumulates per-phase totals and keeps the
/// most recent [`RETAINED_ITERATIONS`] iteration breakdowns.
///
/// All accessors recover from a poisoned lock (a panicking recording thread
/// must not take observability down with it; the counters it held are at
/// worst one span behind).
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh recorder behind the `Arc<dyn Tracer>`-shaped handle the
    /// seeker takes, plus a concrete handle for reading it back.
    #[must_use]
    pub fn shared() -> Arc<Recorder> {
        Arc::new(Self::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Cumulative `(phase, stats)` pairs, in phase execution order.
    #[must_use]
    pub fn phase_totals(&self) -> Vec<(TracePhase, PhaseTotal)> {
        let inner = self.lock();
        TracePhase::ALL
            .iter()
            .map(|&p| (p, inner.totals.get(p.index()).copied().unwrap_or_default()))
            .collect()
    }

    /// Cumulative stats for one phase.
    #[must_use]
    pub fn phase_total(&self, phase: TracePhase) -> PhaseTotal {
        self.lock()
            .totals
            .get(phase.index())
            .copied()
            .unwrap_or_default()
    }

    /// The retained recent iterations, oldest first.
    #[must_use]
    pub fn iterations(&self) -> Vec<IterationTrace> {
        self.lock().iterations.iter().cloned().collect()
    }

    /// The most recent iteration, if any.
    #[must_use]
    pub fn last_iteration(&self) -> Option<IterationTrace> {
        self.lock().iterations.back().cloned()
    }

    /// Total iterations recorded (including ones that rolled off).
    #[must_use]
    pub fn iteration_count(&self) -> u64 {
        self.lock().iteration_count
    }
}

impl Tracer for Recorder {
    fn record_span(&self, phase: TracePhase, duration: Duration) {
        let mut inner = self.lock();
        let t = &mut inner.totals[phase.index()];
        t.count += 1;
        t.total_us += duration_us(duration);
    }

    fn record_iteration(&self, trace: IterationTrace) {
        let mut inner = self.lock();
        inner.iteration_count += 1;
        for (phase, us) in [
            (TracePhase::Pruning, trace.pruning_us),
            (TracePhase::Refinement, trace.refinement_us),
            (TracePhase::EstimatorFit, trace.estimator_fit_us),
            (TracePhase::UncertaintySampling, trace.sampling_us),
        ] {
            let t = &mut inner.totals[phase.index()];
            t.count += 1;
            t.total_us += us;
        }
        if inner.iterations.len() >= RETAINED_ITERATIONS {
            inner.iterations.pop_front();
        }
        inner.iterations.push_back(trace);
    }
}

/// Converts a [`Duration`] to whole microseconds, saturating.
#[must_use]
pub fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A started wall-clock timer — the single sanctioned `Instant::now` site
/// in the determinism-critical crates (vslint rule `wall-clock`).
///
/// Timing reads feed only observability — trace spans, iteration reports,
/// refinement time budgets — never the recommendation math itself, so
/// confining the clock to this one type keeps the audit surface to one
/// file: everything else says *what* it is timing, not *how* time is
/// read.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole microseconds, saturating.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        duration_us(self.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration(n: u64, pruning: u64, refinement: u64, fit: u64, sampling: u64) -> IterationTrace {
        IterationTrace {
            iteration: n,
            pruning_us: pruning,
            refinement_us: refinement,
            estimator_fit_us: fit,
            sampling_us: sampling,
            total_us: pruning + refinement + fit + sampling + 1,
            views_refined: 3,
            pending_after: 7,
            budget: Some(RefinementBudgetReport::Views {
                budget: 5,
                refined: 3,
            }),
        }
    }

    #[test]
    fn recorder_accumulates_spans_and_iterations() {
        let r = Recorder::new();
        r.record_span(TracePhase::ViewSpaceGen, Duration::from_micros(500));
        r.record_span(TracePhase::ViewSpaceGen, Duration::from_micros(250));
        r.record_span(TracePhase::FeatureExtraction, Duration::from_micros(40));
        r.record_iteration(iteration(1, 10, 100, 5, 20));
        r.record_iteration(iteration(2, 12, 90, 6, 25));

        let gen = r.phase_total(TracePhase::ViewSpaceGen);
        assert_eq!((gen.count, gen.total_us), (2, 750));
        let refine = r.phase_total(TracePhase::Refinement);
        assert_eq!((refine.count, refine.total_us), (2, 190));
        assert_eq!(r.iteration_count(), 2);
        assert_eq!(r.iterations().len(), 2);
        assert_eq!(r.last_iteration().unwrap().iteration, 2);
        assert_eq!(r.last_iteration().unwrap().phase_sum_us(), 12 + 90 + 6 + 25);
    }

    #[test]
    fn iteration_window_is_bounded_but_totals_are_not() {
        let r = Recorder::new();
        for n in 0..(RETAINED_ITERATIONS as u64 + 10) {
            r.record_iteration(iteration(n + 1, 1, 1, 1, 1));
        }
        assert_eq!(r.iterations().len(), RETAINED_ITERATIONS);
        assert_eq!(r.iteration_count(), RETAINED_ITERATIONS as u64 + 10);
        // Oldest retained trace is #11, not #1.
        assert_eq!(r.iterations()[0].iteration, 11);
        let pruning = r.phase_total(TracePhase::Pruning);
        assert_eq!(pruning.total_us, RETAINED_ITERATIONS as u64 + 10);
    }

    #[test]
    fn recorder_survives_a_poisoned_lock() {
        let r = std::sync::Arc::new(Recorder::new());
        let r2 = std::sync::Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _guard = r2.inner.lock().unwrap();
            panic!("poison the recorder lock");
        })
        .join();
        // All paths still work after the panic above poisoned the mutex.
        r.record_span(TracePhase::Recommend, Duration::from_micros(9));
        r.record_iteration(iteration(1, 1, 2, 3, 4));
        assert_eq!(r.phase_total(TracePhase::Recommend).total_us, 9);
        assert_eq!(r.iteration_count(), 1);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for n in 0..100 {
                        r.record_span(TracePhase::EstimatorFit, Duration::from_micros(2));
                        r.record_iteration(iteration(n, 1, 1, 1, 1));
                    }
                });
            }
        });
        assert_eq!(r.iteration_count(), 400);
        let fit = r.phase_total(TracePhase::EstimatorFit);
        // 400 direct spans (2 µs) + 400 iteration contributions (1 µs).
        assert_eq!(fit.count, 800);
        assert_eq!(fit.total_us, 400 * 2 + 400);
    }

    #[test]
    fn serialization_shapes() {
        let v = serde_json::to_string(&TracePhase::UncertaintySampling).unwrap();
        assert_eq!(v, "\"uncertainty_sampling\"");
        let b = serde_json::to_string(&RefinementBudgetReport::Time {
            budget_us: 1_000_000,
            actual_us: 950_000,
        })
        .unwrap();
        assert!(b.contains("\"kind\":\"time\""), "{b}");
        assert!(b.contains("\"budget_us\":1000000"), "{b}");
        let t = serde_json::to_string(&iteration(3, 1, 2, 3, 4)).unwrap();
        assert!(t.contains("\"iteration\":3"), "{t}");
        assert!(t.contains("\"budget\":{\"kind\":\"views\""), "{t}");
    }

    #[test]
    fn noop_tracer_does_nothing() {
        let t = noop_tracer();
        t.record_span(TracePhase::Pruning, Duration::from_secs(1));
        t.record_iteration(iteration(1, 1, 1, 1, 1));
    }

    #[test]
    fn duration_us_saturates() {
        assert_eq!(duration_us(Duration::from_micros(17)), 17);
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
