//! Offline phase, stage 1: view materialization.
//!
//! For each view `vᵢ` ViewSeeker generates two aggregate results — the
//! *target view* `vᵢᵀ` over the query subset `DQ` and the *reference view*
//! `vᵢᴿ` over the whole database `DR` — and normalizes both into probability
//! distributions (Eq. 5). The two share one [`BinSpec`] derived from the
//! full table, so bin `j` means the same thing in both distributions.
//!
//! The within-bin dispersion of the target view (the MuVE-style accuracy
//! quantity) is computed in the same pass.

use std::collections::{HashMap, HashSet};

use viewseeker_dataset::aggregate::{group_by_aggregate, group_by_all, within_bin_dispersion};
use viewseeker_dataset::executor::{
    fused_group_by_all, fused_group_by_all_pruned, fused_group_by_all_raw, FusedGroupResult,
    FusedScanStats, GroupRequest, RawAggregates,
};
use viewseeker_dataset::{BinSpec, Predicate, RowSet, Table, ZoneMaps};
use viewseeker_stats::Distribution;

use crate::view::{ViewDef, ViewSpace};
use crate::CoreError;

/// The materialized numeric content of one view.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewData {
    /// Normalized distribution of the target view (over `DQ`).
    pub target: Distribution,
    /// Normalized distribution of the reference view (over `DR`).
    pub reference: Distribution,
    /// Rows of `DQ` that contributed to the target view.
    pub target_rows: u64,
    /// Within-bin dispersion of the measure in the target view
    /// (accuracy component; smaller = the bars summarize their bins better).
    pub dispersion: f64,
    /// Number of bins shared by both distributions.
    pub bins: usize,
}

/// Derives the shared bin spec of a view from the *full* table, so `DQ` and
/// `DR` bin identically.
///
/// # Errors
///
/// Propagates dataset errors (unknown columns, type mismatches).
pub fn bin_spec_for(table: &Table, def: &ViewDef) -> Result<BinSpec, CoreError> {
    bin_spec_for_dimension(table, &def.dimension, def.bins)
}

/// [`bin_spec_for`] without the full [`ViewDef`]: the spec depends only on
/// the dimension and the bin count.
fn bin_spec_for_dimension(
    table: &Table,
    dimension: &str,
    bins: Option<usize>,
) -> Result<BinSpec, CoreError> {
    let col = table.column_by_name(dimension)?;
    let spec = match bins {
        None => BinSpec::categorical_of(col)?,
        Some(b) => BinSpec::equal_width_of(col, b)?,
    };
    Ok(spec)
}

/// A `(dimension, bins, measure)` scan-sharing group.
type GroupKey = (String, Option<usize>, String);

/// The shared/fused execution plan of a view space: its unique scan groups
/// in first-seen order, each view's group, and one [`BinSpec`] per distinct
/// `(dimension, bins)` pair — specs do not depend on the measure, so each
/// is derived exactly once.
struct GroupPlan {
    /// Unique `(dimension, bins, measure)` groups, first-seen order.
    keys: Vec<GroupKey>,
    /// Group index of every view in the space, in view order.
    view_groups: Vec<usize>,
    /// Deduplicated bin specs.
    specs: Vec<BinSpec>,
    /// Spec index of every group in `keys`.
    group_specs: Vec<usize>,
}

impl GroupPlan {
    fn build(table: &Table, space: &ViewSpace) -> Result<GroupPlan, CoreError> {
        let mut keys: Vec<GroupKey> = Vec::new();
        let mut key_index: HashMap<GroupKey, usize> = HashMap::new();
        let mut view_groups = Vec::with_capacity(space.len());
        for def in space.defs() {
            let key = (def.dimension.clone(), def.bins, def.measure.clone());
            let idx = *key_index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            });
            view_groups.push(idx);
        }

        let mut spec_keys: Vec<(String, Option<usize>)> = Vec::new();
        let mut spec_index: HashMap<(String, Option<usize>), usize> = HashMap::new();
        let mut group_specs = Vec::with_capacity(keys.len());
        for (dimension, bins, _measure) in &keys {
            let sk = (dimension.clone(), *bins);
            let idx = *spec_index.entry(sk.clone()).or_insert_with(|| {
                spec_keys.push(sk);
                spec_keys.len() - 1
            });
            group_specs.push(idx);
        }
        let specs = spec_keys
            .iter()
            .map(|(dimension, bins)| bin_spec_for_dimension(table, dimension, *bins))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(GroupPlan {
            keys,
            view_groups,
            specs,
            group_specs,
        })
    }

    /// The spec of group `g`; `None` for an out-of-range group (the plan
    /// builder assigns every group a spec, so callers treat that as an
    /// internal invariant violation).
    fn spec_of(&self, g: usize) -> Option<&BinSpec> {
        self.specs.get(self.group_specs.get(g).copied()?)
    }
}

/// Materializes one view over the given target (`dq`) and reference (`dr`)
/// row sets.
///
/// # Errors
///
/// Propagates dataset errors and distribution-construction errors.
pub fn materialize_view(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    def: &ViewDef,
) -> Result<ViewData, CoreError> {
    let spec = bin_spec_for(table, def)?;
    let target_agg = group_by_aggregate(
        table,
        dq,
        &def.dimension,
        &spec,
        &def.measure,
        def.aggregate,
    )?;
    let reference_agg = group_by_aggregate(
        table,
        dr,
        &def.dimension,
        &spec,
        &def.measure,
        def.aggregate,
    )?;
    let dispersion = within_bin_dispersion(table, dq, &def.dimension, &spec, &def.measure)?;
    Ok(ViewData {
        target: Distribution::from_aggregates(&target_agg.aggregates)?,
        reference: Distribution::from_aggregates(&reference_agg.aggregates)?,
        target_rows: target_agg.total_rows(),
        dispersion,
        bins: spec.bin_count(),
    })
}

/// Materializes every view of `space`, optionally in parallel.
///
/// `threads == 1` runs serially; otherwise the view list is split into
/// contiguous chunks processed by `threads` scoped worker threads — view
/// materialization is embarrassingly parallel and dominates offline-phase
/// time on large tables.
///
/// # Errors
///
/// Propagates the first materialization error encountered.
pub fn materialize_all(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    space: &ViewSpace,
    threads: usize,
) -> Result<Vec<ViewData>, CoreError> {
    let defs = space.defs();
    if threads <= 1 || defs.len() < 2 {
        return defs
            .iter()
            .map(|def| materialize_view(table, dq, dr, def))
            .collect();
    }

    let threads = threads.min(defs.len());
    let chunk = defs.len().div_ceil(threads);
    let results: Vec<Result<Vec<ViewData>, CoreError>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = defs
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move |_| {
                    slice
                        .iter()
                        .map(|def| materialize_view(table, dq, dr, def))
                        .collect::<Result<Vec<ViewData>, CoreError>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CoreError::Invalid("materialization worker panicked".into()))
                })
            })
            .collect()
    })
    .unwrap_or_else(|_| {
        vec![Err(CoreError::Invalid(
            "materialization scope panicked".into(),
        ))]
    });

    let mut out = Vec::with_capacity(defs.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Materializes every view of `space` with the SeeDB-style *shared
/// computation* optimization: views differing only in their aggregate
/// function share one scan per `(dimension, bins, measure)` group (a 5×
/// reduction in scans plus a free dispersion pass), optionally parallelized
/// across groups.
///
/// Produces results identical to [`materialize_all`].
///
/// # Errors
///
/// Propagates the first materialization error encountered.
pub fn materialize_all_shared(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    space: &ViewSpace,
    threads: usize,
) -> Result<Vec<ViewData>, CoreError> {
    let plan = GroupPlan::build(table, space)?;

    struct GroupData {
        target: viewseeker_dataset::aggregate::GroupByAllResult,
        reference: viewseeker_dataset::aggregate::GroupByAllResult,
        bins: usize,
    }

    // (group key, its pre-derived spec) work items, chunkable across threads.
    let work: Vec<(&GroupKey, &BinSpec)> = plan
        .keys
        .iter()
        .enumerate()
        .map(|(g, key)| {
            plan.spec_of(g)
                .map(|spec| (key, spec))
                .ok_or_else(|| CoreError::Invalid(format!("scan group {g} has no bin spec")))
        })
        .collect::<Result<_, _>>()?;

    let compute_group = |&(key, spec): &(&GroupKey, &BinSpec)| -> Result<GroupData, CoreError> {
        let (dimension, _bins, measure) = key;
        Ok(GroupData {
            target: group_by_all(table, dq, dimension, spec, measure)?,
            reference: group_by_all(table, dr, dimension, spec, measure)?,
            bins: spec.bin_count(),
        })
    };

    let groups: Vec<GroupData> = if threads <= 1 || work.len() < 2 {
        work.iter().map(compute_group).collect::<Result<_, _>>()?
    } else {
        let threads = threads.min(work.len());
        let chunk = work.len().div_ceil(threads);
        let results: Vec<Result<Vec<GroupData>, CoreError>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move |_| {
                        slice
                            .iter()
                            .map(compute_group)
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(CoreError::Invalid(
                            "shared materialization worker panicked".into(),
                        ))
                    })
                })
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![Err(CoreError::Invalid(
                "shared materialization scope panicked".into(),
            ))]
        });
        let mut out = Vec::with_capacity(work.len());
        for r in results {
            out.extend(r?);
        }
        out
    };

    space
        .defs()
        .iter()
        .zip(&plan.view_groups)
        .map(|(def, &g)| {
            let group = groups.get(g).ok_or_else(|| {
                CoreError::Invalid(format!("view maps to missing scan group {g}"))
            })?;
            Ok(ViewData {
                target: Distribution::from_aggregates(group.target.aggregates(def.aggregate))?,
                reference: Distribution::from_aggregates(
                    group.reference.aggregates(def.aggregate),
                )?,
                target_rows: group.target.total_rows(),
                dispersion: group.target.dispersion,
                bins: group.bins,
            })
        })
        .collect()
}

/// Number of distinct `(dimension, bins, measure)` scan groups in `space` —
/// the scan-sharing denominator of [`materialize_all_shared`] and the fused
/// executor (each group costs the shared path two scans and the fused path
/// one accumulator block).
#[must_use]
pub fn scan_group_count(space: &ViewSpace) -> usize {
    let mut distinct = std::collections::HashSet::new();
    for def in space.defs() {
        distinct.insert((def.dimension.as_str(), def.bins, def.measure.as_str()));
    }
    distinct.len()
}

/// Materializes every view of `space` with the fused executor: every scan
/// group of the space is answered by **one** partition-parallel pass over
/// the reference rows (see [`viewseeker_dataset::executor`]), instead of
/// two scans per group. Bin specs and bin assignments are derived once per
/// distinct `(dimension, bins)` pair.
///
/// The result is bit-identical for any `threads` value. Against
/// [`materialize_all`] / [`materialize_all_shared`] it is exact on
/// exactly-representable measure values and agrees to ULP-level rounding
/// otherwise (the partition merge reassociates floating-point sums).
///
/// # Errors
///
/// Propagates the first materialization error encountered.
pub fn materialize_all_fused(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    space: &ViewSpace,
    threads: usize,
) -> Result<Vec<ViewData>, CoreError> {
    Ok(materialize_all_fused_with_stats(table, dq, dr, space, threads)?.0)
}

/// [`materialize_all_fused`] plus the executor's scan statistics, for
/// tracing and metrics.
///
/// # Errors
///
/// Propagates the first materialization error encountered.
pub fn materialize_all_fused_with_stats(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    space: &ViewSpace,
    threads: usize,
) -> Result<(Vec<ViewData>, FusedScanStats), CoreError> {
    let plan = GroupPlan::build(table, space)?;
    let requests = plan.requests()?;
    let (groups, stats) = fused_group_by_all(table, dq, dr, &requests, threads)?;
    let views = views_from_groups(space, &plan.view_groups, &requests, &groups)?;
    Ok((views, stats))
}

impl GroupPlan {
    /// The plan's groups as executor requests, in group order.
    fn requests(&self) -> Result<Vec<GroupRequest>, CoreError> {
        self.keys
            .iter()
            .enumerate()
            .map(|(g, (dimension, _bins, measure))| {
                let spec = self
                    .spec_of(g)
                    .ok_or_else(|| CoreError::Invalid(format!("scan group {g} has no bin spec")))?;
                Ok(GroupRequest {
                    dimension: dimension.clone(),
                    spec: spec.clone(),
                    measure: measure.clone(),
                })
            })
            .collect()
    }
}

/// Reassembles per-view [`ViewData`] from finalized per-group results.
fn views_from_groups(
    space: &ViewSpace,
    view_groups: &[usize],
    requests: &[GroupRequest],
    groups: &[FusedGroupResult],
) -> Result<Vec<ViewData>, CoreError> {
    space
        .defs()
        .iter()
        .zip(view_groups)
        .map(|(def, &g)| {
            let group = groups.get(g).ok_or_else(|| {
                CoreError::Invalid(format!("view maps to missing scan group {g}"))
            })?;
            let request = requests
                .get(g)
                .ok_or_else(|| CoreError::Invalid(format!("scan group {g} has no request")))?;
            Ok(ViewData {
                target: Distribution::from_aggregates(group.target.aggregates(def.aggregate))?,
                reference: Distribution::from_aggregates(
                    group.reference.aggregates(def.aggregate),
                )?,
                target_rows: group.target.total_rows(),
                dispersion: group.target.dispersion,
                bins: request.spec.bin_count(),
            })
        })
        .collect()
}

/// The fused scan's mergeable state, retained by sessions built through
/// [`materialize_all_fused_pruned`]: the request list and raw per-bin
/// accumulators of the full materialization pass. When the underlying
/// dataset grows, [`FusedRetained::absorb_append`] folds the appended rows
/// in by scanning **only the tail**, instead of rescanning the whole table.
#[derive(Debug)]
pub struct FusedRetained {
    requests: Vec<GroupRequest>,
    view_groups: Vec<usize>,
    raw: RawAggregates,
}

/// Materializes every view of `space` with the fused executor, evaluating
/// the `DQ` predicate through the table's zone maps first: row groups the
/// zones provably exclude are skipped without reading a value (the counts
/// land in the returned stats' `rowgroups_scanned` / `rowgroups_pruned`).
/// The resulting views are identical to [`materialize_all_fused`] over
/// `predicate.evaluate(table)`.
///
/// Also returns the evaluated `DQ` row set and a [`FusedRetained`] handle
/// holding the scan's mergeable raw aggregates for later appends.
///
/// # Errors
///
/// Predicate-evaluation errors plus everything [`materialize_all_fused`]
/// reports.
pub fn materialize_all_fused_pruned(
    table: &Table,
    zones: &ZoneMaps,
    predicate: &Predicate,
    space: &ViewSpace,
    threads: usize,
) -> Result<(Vec<ViewData>, RowSet, FusedScanStats, FusedRetained), CoreError> {
    let plan = GroupPlan::build(table, space)?;
    let requests = plan.requests()?;
    let (raw, dq, stats) = fused_group_by_all_pruned(table, zones, predicate, &requests, threads)?;
    let views = views_from_groups(space, &plan.view_groups, &requests, &raw.finalize())?;
    Ok((
        views,
        dq,
        stats,
        FusedRetained {
            requests,
            view_groups: plan.view_groups,
            raw,
        },
    ))
}

impl FusedRetained {
    /// Folds the rows `table[old_rows..]` — appended since the retained scan
    /// ran — into the aggregates, scanning only that tail, and returns the
    /// refreshed views, the tail's `DQ` rows (in `table` coordinates), and
    /// the tail scan's stats.
    ///
    /// The original bin layout is kept: equal-width bins were derived from
    /// the pre-append value range, so appended values outside it clamp into
    /// the edge bins (the distributions stay comparable across the append).
    /// An appended categorical value that is **not** in a dimension's
    /// original dictionary would need a new bin, which no merge can
    /// retrofit — that case returns `Ok(None)` and the caller must rebuild
    /// from scratch.
    ///
    /// # Errors
    ///
    /// Predicate/scan errors, and [`CoreError::Dataset`] when `table` no
    /// longer matches the retained request layout.
    pub fn absorb_append(
        &mut self,
        table: &Table,
        old_rows: usize,
        predicate: &Predicate,
        space: &ViewSpace,
        threads: usize,
    ) -> Result<Option<(Vec<ViewData>, RowSet, FusedScanStats)>, CoreError> {
        let new_rows = table.row_count();
        let tail_ids: Vec<u32> = (old_rows as u32..new_rows as u32).collect();
        let tail_rows = RowSet::from_sorted_ids(tail_ids)?;
        let tail = table.gather(&tail_rows)?;

        // A tail code beyond a categorical spec's label list is a brand-new
        // dictionary value: its bin does not exist in the retained layout.
        let mut checked: HashSet<&str> = HashSet::new();
        for req in &self.requests {
            if let BinSpec::Categorical { labels } = &req.spec {
                if checked.insert(req.dimension.as_str()) {
                    let col = tail.column_by_name(&req.dimension)?;
                    let has_new = col
                        .codes()
                        .is_some_and(|codes| codes.iter().any(|&c| c as usize >= labels.len()));
                    if has_new {
                        return Ok(None);
                    }
                }
            }
        }

        let tail_dq_local = predicate.evaluate(&tail)?;
        let tail_dr = tail.all_rows();
        let (tail_raw, stats) =
            fused_group_by_all_raw(&tail, &tail_dq_local, &tail_dr, &self.requests, threads)?;
        self.raw.merge(&tail_raw)?;
        let views = views_from_groups(
            space,
            &self.view_groups,
            &self.requests,
            &self.raw.finalize(),
        )?;
        let global: Vec<u32> = tail_dq_local
            .ids()
            .iter()
            .map(|&r| r + old_rows as u32)
            .collect();
        let tail_dq = RowSet::from_sorted_ids(global)?;
        Ok(Some((views, tail_dq, stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::generate::{generate_diab, generate_syn, DiabConfig, SynConfig};
    use viewseeker_dataset::{Predicate, SelectQuery};

    #[test]
    fn target_and_reference_share_bins() {
        let t = generate_diab(&DiabConfig::small(2_000, 1)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a0", "a0_v0"))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        for id in space.ids().take(25) {
            let vd = materialize_view(&t, &dq, &t.all_rows(), space.def(id).unwrap()).unwrap();
            assert_eq!(vd.target.len(), vd.reference.len());
            assert_eq!(vd.target.len(), vd.bins);
        }
    }

    #[test]
    fn numeric_bins_use_full_table_range() {
        // DQ restricted to small d0 values must still produce a target
        // distribution over the full-range bins — with its mass on the low
        // bins rather than renormalized to its own range.
        let t = generate_syn(&SynConfig::small(5_000, 2)).unwrap();
        let dq = SelectQuery::new(Predicate::range("d0", 0.0, 20.0))
            .execute(&t)
            .unwrap();
        let def = ViewDef {
            dimension: "d0".into(),
            measure: "m0".into(),
            aggregate: viewseeker_dataset::AggregateFunction::Count,
            bins: Some(4),
        };
        let vd = materialize_view(&t, &dq, &t.all_rows(), &def).unwrap();
        // 4 bins over [0, 100): DQ (d0 < 20) lives entirely in bin 0.
        assert!(vd.target.mass(0) > 0.99);
        // The reference is roughly uniform.
        assert!((vd.reference.mass(0) - 0.25).abs() < 0.05);
    }

    #[test]
    fn empty_dq_degrades_to_uniform_target() {
        let t = generate_diab(&DiabConfig::small(500, 3)).unwrap();
        let def = ViewDef {
            dimension: "a1".into(),
            measure: "m0".into(),
            aggregate: viewseeker_dataset::AggregateFunction::Sum,
            bins: None,
        };
        let vd = materialize_view(&t, &RowSet::empty(), &t.all_rows(), &def).unwrap();
        assert_eq!(vd.target_rows, 0);
        let n = vd.target.len() as f64;
        assert!(vd
            .target
            .masses()
            .iter()
            .all(|m| (m - 1.0 / n).abs() < 1e-12));
    }

    #[test]
    fn parallel_matches_serial() {
        let t = generate_diab(&DiabConfig::small(1_000, 4)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a2", "a2_v0"))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3]).unwrap();
        let serial = materialize_all(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        let parallel = materialize_all(&t, &dq, &t.all_rows(), &space, 4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), space.len());
    }

    #[test]
    fn shared_materialization_matches_naive() {
        let t = generate_diab(&DiabConfig::small(1_500, 8)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a1", "a1_v1"))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let naive = materialize_all(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        let shared = materialize_all_shared(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        assert_eq!(naive, shared);
        let shared_par = materialize_all_shared(&t, &dq, &t.all_rows(), &space, 4).unwrap();
        assert_eq!(naive, shared_par);
    }

    #[test]
    fn shared_materialization_on_numeric_dims() {
        let t = generate_syn(&SynConfig::small(2_000, 9)).unwrap();
        let dq = SelectQuery::new(Predicate::range("d1", 0.0, 30.0))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let naive = materialize_all(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        let shared = materialize_all_shared(&t, &dq, &t.all_rows(), &space, 2).unwrap();
        assert_eq!(naive, shared);
    }

    /// `a` equals `b` up to the fused executor's float contract: counts and
    /// shapes exactly, sum-derived floats within ULP-level relative error
    /// (the hits + complement derivation of the reference aggregates
    /// reassociates float addition; see `dataset::executor`).
    fn assert_views_close(a: &[ViewData], b: &[ViewData], what: &str) {
        fn close(x: f64, y: f64) -> bool {
            x == y || (x - y).abs() <= 1e-9 * x.abs().max(y.abs())
        }
        assert_eq!(a.len(), b.len(), "{what}: view count");
        for (i, (va, vb)) in a.iter().zip(b).enumerate() {
            assert_eq!(va.target_rows, vb.target_rows, "{what}: view {i} rows");
            assert_eq!(va.bins, vb.bins, "{what}: view {i} bins");
            assert!(
                close(va.dispersion, vb.dispersion),
                "{what}: view {i} dispersion {} vs {}",
                va.dispersion,
                vb.dispersion
            );
            for (d, e) in [(&va.target, &vb.target), (&va.reference, &vb.reference)] {
                for (x, y) in d.masses().iter().zip(e.masses()) {
                    assert!(close(*x, *y), "{what}: view {i} mass {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn fused_materialization_matches_naive() {
        let t = generate_diab(&DiabConfig::small(1_000, 8)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a1", "a1_v1"))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let naive = materialize_all(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        for threads in [1, 4] {
            let fused = materialize_all_fused(&t, &dq, &t.all_rows(), &space, threads).unwrap();
            assert_views_close(&naive, &fused, &format!("threads={threads}"));
        }
    }

    #[test]
    fn fused_is_thread_invariant_on_large_float_data() {
        let t = generate_syn(&SynConfig::small(6_000, 21)).unwrap();
        let dq = SelectQuery::new(Predicate::range("d0", 0.0, 50.0))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let one = materialize_all_fused(&t, &dq, &t.all_rows(), &space, 1).unwrap();
        for threads in [2, 8] {
            let many = materialize_all_fused(&t, &dq, &t.all_rows(), &space, threads).unwrap();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn fused_stats_count_one_scan_for_the_whole_space() {
        let t = generate_diab(&DiabConfig::small(2_000, 5)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a0", "a0_v0"))
            .execute(&t)
            .unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let (views, stats) =
            materialize_all_fused_with_stats(&t, &dq, &t.all_rows(), &space, 2).unwrap();
        assert_eq!(views.len(), space.len());
        assert_eq!(stats.scans, 1, "DQ ⊆ DR: single fused pass");
        assert_eq!(stats.rows_scanned, 2_000);
        assert!(stats.groups < space.len(), "5 aggregates share one group");
        assert!(
            stats.bin_assignments < stats.groups,
            "measures share one assignment per (dimension, bins)"
        );
    }

    #[test]
    fn dispersion_is_nonnegative() {
        let t = generate_syn(&SynConfig::small(2_000, 5)).unwrap();
        let space = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        let dq = t.all_rows();
        for id in space.ids().take(20) {
            let vd = materialize_view(&t, &dq, &t.all_rows(), space.def(id).unwrap()).unwrap();
            assert!(vd.dispersion >= 0.0);
        }
    }

    #[test]
    fn unknown_column_propagates() {
        let t = generate_diab(&DiabConfig::small(100, 6)).unwrap();
        let def = ViewDef {
            dimension: "nope".into(),
            measure: "m0".into(),
            aggregate: viewseeker_dataset::AggregateFunction::Count,
            bins: None,
        };
        assert!(matches!(
            materialize_view(&t, &t.all_rows(), &t.all_rows(), &def),
            Err(CoreError::Dataset(_))
        ));
    }
}
