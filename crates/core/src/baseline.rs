//! SeeDB-style fixed-utility baselines.
//!
//! "We use the 8 individual utility features (e.g., KL, EMD, L1, L2, etc.)
//! as the baselines" (paper, Experiment 2). A [`SingleFeatureRanker`] ranks
//! the whole view space by one raw utility feature — exactly what a classic
//! view recommender with that utility function hard-coded would return. Its
//! precision against the ideal top-k is *fixed*: no amount of interaction
//! improves it, which is the point of Figure 5.

use crate::features::{FeatureMatrix, UtilityFeature};
use crate::metrics::precision_at_k;
use crate::view::ViewId;
use crate::CoreError;

/// A non-interactive recommender that ranks views by one fixed utility
/// feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleFeatureRanker {
    feature: UtilityFeature,
}

impl SingleFeatureRanker {
    /// Creates a ranker for `feature`.
    #[must_use]
    pub fn new(feature: UtilityFeature) -> Self {
        Self { feature }
    }

    /// One ranker per utility feature — the full baseline suite of
    /// Experiment 2.
    #[must_use]
    pub fn all() -> Vec<SingleFeatureRanker> {
        UtilityFeature::all().into_iter().map(Self::new).collect()
    }

    /// The feature this baseline ranks by.
    #[must_use]
    pub fn feature(self) -> UtilityFeature {
        self.feature
    }

    /// The top-`k` views by this feature (ties broken by view id).
    #[must_use]
    pub fn top_k(self, matrix: &FeatureMatrix, k: usize) -> Vec<ViewId> {
        let column = matrix.column(self.feature);
        viewseeker_stats::rank_descending(&column)
            .into_iter()
            .take(k)
            .map(ViewId::new_unchecked)
            .collect()
    }

    /// The *maximum achievable* precision of this baseline against an ideal
    /// top-k — fixed for all time, since the ranking never changes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if `k == 0`.
    pub fn max_precision(
        self,
        matrix: &FeatureMatrix,
        ideal_top_k: &[ViewId],
    ) -> Result<f64, CoreError> {
        if ideal_top_k.is_empty() {
            return Err(CoreError::Invalid("ideal top-k must be non-empty".into()));
        }
        Ok(precision_at_k(
            &self.top_k(matrix, ideal_top_k.len()),
            ideal_top_k,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::CompositeUtility;
    use crate::features::FEATURE_COUNT;

    fn matrix() -> FeatureMatrix {
        // Feature 0 (KL) and feature 1 (EMD) rank views oppositely.
        FeatureMatrix::new(vec![
            [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.75, 0.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.25, 0.75, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn ranks_by_its_own_feature() {
        let m = matrix();
        let kl = SingleFeatureRanker::new(UtilityFeature::Kl);
        let emd = SingleFeatureRanker::new(UtilityFeature::Emd);
        assert_eq!(
            kl.top_k(&m, 3)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            emd.top_k(&m, 3)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![4, 3, 2]
        );
    }

    #[test]
    fn matching_feature_gets_perfect_precision() {
        let m = matrix();
        let ideal = CompositeUtility::single(UtilityFeature::Kl)
            .top_k(&m, 3)
            .unwrap();
        let p = SingleFeatureRanker::new(UtilityFeature::Kl)
            .max_precision(&m, &ideal)
            .unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn mismatched_feature_scores_poorly() {
        let m = matrix();
        let ideal = CompositeUtility::single(UtilityFeature::Kl)
            .top_k(&m, 2)
            .unwrap();
        let p = SingleFeatureRanker::new(UtilityFeature::Emd)
            .max_precision(&m, &ideal)
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn all_covers_every_feature() {
        let rankers = SingleFeatureRanker::all();
        assert_eq!(rankers.len(), FEATURE_COUNT);
        let feats: Vec<_> = rankers.iter().map(|r| r.feature()).collect();
        for f in UtilityFeature::all() {
            assert!(feats.contains(&f));
        }
    }

    #[test]
    fn empty_ideal_rejected() {
        let m = matrix();
        assert!(SingleFeatureRanker::new(UtilityFeature::Kl)
            .max_precision(&m, &[])
            .is_err());
    }
}
