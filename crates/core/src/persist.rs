//! Session snapshots: save an interactive session's collected feedback and
//! restore it later.
//!
//! The learned models are deliberately *not* serialized — they are a pure
//! function of the labels and the feature matrix, so a restore replays the
//! labels through a fresh session and arrives at bit-identical estimators.
//! That keeps snapshots tiny, forward-compatible across model-internals
//! changes, and impossible to de-synchronize from their training data.

use std::borrow::Borrow;

use serde::{Deserialize, Serialize};
use viewseeker_dataset::Table;

use crate::config::ViewSeekerConfig;
use crate::features::FeatureMatrix;
use crate::seeker::Seeker;
use crate::session::FeedbackSession;
use crate::view::ViewId;
use crate::CoreError;

#[cfg(doc)]
use crate::ViewSeeker;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A serializable record of one session's feedback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Format version (see [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Size of the view space the labels refer to (restore validates it).
    pub view_count: usize,
    /// `(view index, feedback score)` in submission order.
    pub labels: Vec<(usize, f64)>,
    /// The learned β weights at snapshot time (informational; recomputed on
    /// restore).
    pub learned_weights: Option<Vec<f64>>,
}

impl SessionSnapshot {
    /// Captures a [`ViewSeeker`] / [`crate::OwnedSeeker`] session (any
    /// table-holder shape).
    #[must_use]
    pub fn from_seeker<H: Borrow<Table>>(seeker: &Seeker<H>) -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            view_count: seeker.view_space().len(),
            labels: seeker
                .labels()
                .iter()
                .map(|l| (l.view.index(), l.score))
                .collect(),
            learned_weights: seeker.learned_weights().map(<[f64]>::to_vec),
        }
    }

    /// Captures a generic [`FeedbackSession`].
    #[must_use]
    pub fn from_session(session: &FeedbackSession) -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            view_count: session.feature_matrix().len(),
            labels: session
                .labels()
                .iter()
                .map(|l| (l.view.index(), l.score))
                .collect(),
            learned_weights: session.learned_weights().map(<[f64]>::to_vec),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Never fails for this type; kept fallible for API stability.
    pub fn to_json(&self) -> Result<String, CoreError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Invalid(format!("snapshot serialization: {e}")))
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] for malformed JSON or an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, CoreError> {
        let snapshot: Self = serde_json::from_str(json)
            .map_err(|e| CoreError::Invalid(format!("snapshot parse: {e}")))?;
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(CoreError::Invalid(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        Ok(snapshot)
    }

    /// Rejects snapshots from a different format version. Restores made
    /// from deserialized values (not [`SessionSnapshot::from_json`]) must
    /// still enforce this, so both restore paths call it.
    fn check_version(&self) -> Result<(), CoreError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(CoreError::Invalid(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        Ok(())
    }

    /// Restores into a fresh [`FeedbackSession`] over `matrix` by replaying
    /// every label.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] for an unsupported version or if the matrix
    /// size disagrees with the snapshot; label-replay errors otherwise.
    pub fn restore_session(
        &self,
        matrix: FeatureMatrix,
        config: ViewSeekerConfig,
    ) -> Result<FeedbackSession, CoreError> {
        self.check_version()?;
        if matrix.len() != self.view_count {
            return Err(CoreError::Invalid(format!(
                "snapshot was over {} views, matrix has {}",
                self.view_count,
                matrix.len()
            )));
        }
        let mut session = FeedbackSession::new(matrix, config)?;
        for (index, score) in &self.labels {
            session.submit_feedback(ViewId::from_index(*index), *score)?;
        }
        Ok(session)
    }

    /// Restores into a fresh [`Seeker`] over the same table and query by
    /// replaying every label. The holder shape follows the `table` argument:
    /// pass `&table` for a borrowing [`ViewSeeker`], an `Arc<Table>` for an
    /// owned [`crate::OwnedSeeker`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionSnapshot::restore_session`].
    pub fn restore_seeker<H: Borrow<Table>>(
        &self,
        table: H,
        query: &viewseeker_dataset::SelectQuery,
        config: ViewSeekerConfig,
    ) -> Result<Seeker<H>, CoreError> {
        self.restore_seeker_traced(table, query, config, crate::trace::noop_tracer())
    }

    /// [`SessionSnapshot::restore_seeker`] with an explicit tracer: the
    /// rebuild's offline phases and the label replay's estimator refits are
    /// timed into it, so a restored session is as observable as a fresh one.
    ///
    /// # Errors
    ///
    /// Same contract as [`SessionSnapshot::restore_seeker`].
    pub fn restore_seeker_traced<H: Borrow<Table>>(
        &self,
        table: H,
        query: &viewseeker_dataset::SelectQuery,
        config: ViewSeekerConfig,
        tracer: std::sync::Arc<dyn crate::trace::Tracer>,
    ) -> Result<Seeker<H>, CoreError> {
        self.check_version()?;
        let mut seeker = Seeker::new_traced(table, query, config, tracer)?;
        if seeker.view_space().len() != self.view_count {
            return Err(CoreError::Invalid(format!(
                "snapshot was over {} views, view space has {}",
                self.view_count,
                seeker.view_space().len()
            )));
        }
        for (index, score) in &self.labels {
            seeker.submit_feedback(ViewId::from_index(*index), *score)?;
        }
        Ok(seeker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::CompositeUtility;
    use crate::features::UtilityFeature;
    use crate::ViewSeeker;
    use viewseeker_dataset::generate::{generate_diab, DiabConfig};
    use viewseeker_dataset::{Predicate, SelectQuery};

    fn testbed() -> (viewseeker_dataset::Table, SelectQuery) {
        (
            generate_diab(&DiabConfig::small(1_500, 31)).unwrap(),
            SelectQuery::new(Predicate::eq("a0", "a0_v0")),
        )
    }

    #[test]
    fn seeker_round_trip_reproduces_state() {
        let (table, query) = testbed();
        let mut original = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let ideal = CompositeUtility::single(UtilityFeature::Emd);
        let scores = ideal.normalized_scores(original.feature_matrix()).unwrap();
        for _ in 0..8 {
            let v = original.next_views(1).unwrap()[0];
            original.submit_feedback(v, scores[v.index()]).unwrap();
        }

        let json = SessionSnapshot::from_seeker(&original).to_json().unwrap();
        let snapshot = SessionSnapshot::from_json(&json).unwrap();
        let restored = snapshot
            .restore_seeker(&table, &query, ViewSeekerConfig::default())
            .unwrap();

        assert_eq!(restored.label_count(), original.label_count());
        assert_eq!(
            restored.recommend(10).unwrap(),
            original.recommend(10).unwrap()
        );
        assert_eq!(restored.learned_weights(), original.learned_weights());
        assert_eq!(restored.phase(), original.phase());
    }

    #[test]
    fn session_round_trip_over_a_matrix() {
        let (table, query) = testbed();
        let seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let matrix = seeker.feature_matrix().clone();
        let mut s = FeedbackSession::new(matrix.clone(), ViewSeekerConfig::default()).unwrap();
        let a = s.next_items(1).unwrap()[0];
        s.submit_feedback(a, 0.8).unwrap();
        let b = s.next_items(1).unwrap()[0];
        s.submit_feedback(b, 0.2).unwrap();

        let snapshot = SessionSnapshot::from_session(&s);
        let restored = snapshot
            .restore_session(matrix, ViewSeekerConfig::default())
            .unwrap();
        assert_eq!(restored.label_count(), 2);
        assert_eq!(restored.recommend(5).unwrap(), s.recommend(5).unwrap());
    }

    #[test]
    fn version_and_size_validation() {
        let snapshot = SessionSnapshot {
            version: 99,
            view_count: 10,
            labels: vec![],
            learned_weights: None,
        };
        let json = serde_json::to_string(&snapshot).unwrap();
        assert!(matches!(
            SessionSnapshot::from_json(&json),
            Err(CoreError::Invalid(_))
        ));

        let (table, query) = testbed();
        let valid = SessionSnapshot {
            version: SNAPSHOT_VERSION,
            view_count: 9999, // wrong size
            labels: vec![],
            learned_weights: None,
        };
        assert!(valid
            .restore_seeker(&table, &query, ViewSeekerConfig::default())
            .is_err());
        assert!(SessionSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn empty_snapshot_restores_to_fresh_session() {
        let (table, query) = testbed();
        let seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
        let snapshot = SessionSnapshot::from_seeker(&seeker);
        assert!(snapshot.labels.is_empty());
        let restored = snapshot
            .restore_seeker(&table, &query, ViewSeekerConfig::default())
            .unwrap();
        assert_eq!(restored.label_count(), 0);
    }
}
