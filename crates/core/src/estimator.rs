//! The two learned models of the interactive phase.
//!
//! * [`ViewUtilityEstimator`] — a ridge linear regression predicting the
//!   user's utility score for any view from its normalized features; its
//!   predictions rank the view space for recommendation and prioritize
//!   incremental refinement.
//! * [`UncertaintyEstimator`] — a logistic regression over the same features
//!   whose predicted class probability drives least-confidence uncertainty
//!   sampling (most uncertain view = probability closest to 0.5).
//!
//! Both are retrained from scratch on every new label — with tens of labels
//! over 8 features this takes microseconds and keeps the implementation
//! simple and deterministic.

use viewseeker_learn::{LogisticConfig, LogisticRegression, RidgeConfig, RidgeRegression};

use crate::features::FeatureMatrix;
use crate::view::ViewId;
use crate::CoreError;

/// A labeled training example: view id and the user's feedback in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Label {
    /// The labeled view.
    pub view: ViewId,
    /// User feedback, 0 = not interesting … 1 = most interesting.
    pub score: f64,
}

/// The view utility estimator (paper §3.2, a linear regression).
#[derive(Debug, Clone)]
pub struct ViewUtilityEstimator {
    model: RidgeRegression,
}

impl ViewUtilityEstimator {
    /// Creates an unfitted estimator with ridge penalty `lambda`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        Self {
            model: RidgeRegression::new(RidgeConfig {
                lambda,
                fit_intercept: true,
            }),
        }
    }

    /// Refits on all labels collected so far.
    ///
    /// # Errors
    ///
    /// Propagates learning errors ([`CoreError::Learn`]); labels must be
    /// non-empty.
    pub fn refit(&mut self, matrix: &FeatureMatrix, labels: &[Label]) -> Result<(), CoreError> {
        let x: Vec<Vec<f64>> = labels
            .iter()
            .map(|l| matrix.row(l.view.index()).to_vec())
            .collect();
        let y: Vec<f64> = labels.iter().map(|l| l.score).collect();
        self.model.fit(&x, &y)?;
        Ok(())
    }

    /// Predicted utility of every view in the matrix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] if the estimator has not been fitted.
    pub fn predict_all(&self, matrix: &FeatureMatrix) -> Result<Vec<f64>, CoreError> {
        Ok(self.model.predict_batch(matrix.rows())?)
    }

    /// Predicted utility of every view, scored on `threads` worker threads.
    ///
    /// The view space is split into contiguous chunks scored concurrently
    /// with scoped threads — prediction is embarrassingly parallel across
    /// views. Falls back to the serial path for one thread or when the
    /// matrix is too small for the fan-out to pay for itself: scoring one
    /// view is an 8-element dot product (~ns), so a thread spawn only
    /// amortizes over thousands of views.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] if the estimator has not been fitted.
    pub fn predict_all_parallel(
        &self,
        matrix: &FeatureMatrix,
        threads: usize,
    ) -> Result<Vec<f64>, CoreError> {
        const MIN_VIEWS_PER_THREAD: usize = 4_096;
        let rows = matrix.rows();
        let threads = threads.min(rows.len() / MIN_VIEWS_PER_THREAD);
        if threads <= 1 {
            return self.predict_all(matrix);
        }
        let chunk = rows.len().div_ceil(threads);
        let model = &self.model;
        let chunk_results = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .map(|c| s.spawn(move |_| model.predict_batch(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prediction worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope failed");
        let mut scores = Vec::with_capacity(rows.len());
        for result in chunk_results {
            scores.extend(result?);
        }
        Ok(scores)
    }

    /// The ids of the top-`k` views by predicted utility.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] if the estimator has not been fitted.
    pub fn top_k(&self, matrix: &FeatureMatrix, k: usize) -> Result<Vec<ViewId>, CoreError> {
        let scores = self.predict_all(matrix)?;
        let order = viewseeker_stats::rank_descending(&scores);
        Ok(order
            .into_iter()
            .take(k)
            .map(ViewId::new_unchecked)
            .collect())
    }

    /// The learned feature weights (the discovered β vector of Eq. 4), if
    /// fitted.
    #[must_use]
    pub fn weights(&self) -> Option<&[f64]> {
        self.model.weights()
    }

    /// Whether the estimator has been fitted at least once.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_fitted()
    }
}

/// The uncertainty estimator (paper §3.2, a logistic regression).
#[derive(Debug, Clone)]
pub struct UncertaintyEstimator {
    model: LogisticRegression,
    positive_threshold: f64,
}

impl UncertaintyEstimator {
    /// Creates an unfitted estimator; labels ≥ `positive_threshold` count as
    /// the positive class.
    #[must_use]
    pub fn new(lambda: f64, positive_threshold: f64) -> Self {
        Self {
            model: LogisticRegression::new(LogisticConfig {
                lambda,
                ..LogisticConfig::default()
            }),
            positive_threshold,
        }
    }

    /// Refits on all labels collected so far.
    ///
    /// # Errors
    ///
    /// Propagates learning errors.
    pub fn refit(&mut self, matrix: &FeatureMatrix, labels: &[Label]) -> Result<(), CoreError> {
        let x: Vec<Vec<f64>> = labels
            .iter()
            .map(|l| matrix.row(l.view.index()).to_vec())
            .collect();
        let y: Vec<f64> = labels
            .iter()
            .map(|l| {
                if l.score >= self.positive_threshold {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        self.model.fit(&x, &y)?;
        Ok(())
    }

    /// Least-confidence uncertainty `1 − max(p, 1−p)` for one view —
    /// maximal (0.5) when the class probability is exactly 0.5 (Eq. 6).
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] if not fitted.
    pub fn uncertainty(&self, matrix: &FeatureMatrix, view: ViewId) -> Result<f64, CoreError> {
        let p = self.model.predict_proba(matrix.row(view.index()))?;
        Ok(1.0 - p.max(1.0 - p))
    }

    /// Uncertainty of every view in the matrix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] if not fitted.
    pub fn uncertainties(&self, matrix: &FeatureMatrix) -> Result<Vec<f64>, CoreError> {
        let probs = self.model.predict_proba_batch(matrix.rows())?;
        Ok(probs.into_iter().map(|p| 1.0 - p.max(1.0 - p)).collect())
    }

    /// Whether the estimator has been fitted at least once.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_fitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;

    fn matrix() -> FeatureMatrix {
        // 5 views; utility feature 0 carries the signal.
        FeatureMatrix::new(vec![
            [0.0, 0.3, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.25, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.5, 0.9, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.75, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [1.0, 0.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ])
    }

    fn labels(pairs: &[(usize, f64)]) -> Vec<Label> {
        pairs
            .iter()
            .map(|(i, s)| Label {
                view: ViewId::new_unchecked(*i),
                score: *s,
            })
            .collect()
    }

    #[test]
    fn utility_estimator_learns_a_single_feature() {
        let m = matrix();
        let mut ve = ViewUtilityEstimator::new(1e-6);
        assert!(!ve.is_fitted());
        ve.refit(&m, &labels(&[(0, 0.0), (2, 0.5), (4, 1.0)]))
            .unwrap();
        assert!(ve.is_fitted());
        let preds = ve.predict_all(&m).unwrap();
        assert!((preds[1] - 0.25).abs() < 0.05);
        assert!((preds[3] - 0.75).abs() < 0.05);
        let top2 = ve.top_k(&m, 2).unwrap();
        assert_eq!(
            top2.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![4, 3]
        );
    }

    #[test]
    fn utility_estimator_weights_expose_beta() {
        let m = matrix();
        let mut ve = ViewUtilityEstimator::new(1e-6);
        ve.refit(
            &m,
            &labels(&[(0, 0.0), (1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]),
        )
        .unwrap();
        let w = ve.weights().unwrap();
        assert_eq!(w.len(), FEATURE_COUNT);
        assert!(w[0] > 0.8, "the signal feature should dominate: {w:?}");
    }

    #[test]
    fn parallel_prediction_matches_serial_bitwise() {
        // Large enough to clear the per-thread minimum and exercise chunking.
        let rows: Vec<[f64; FEATURE_COUNT]> = (0..10_000)
            .map(|i| {
                let x = (i as f64) / 10_000.0;
                [
                    x,
                    x * x,
                    1.0 - x,
                    (x * 7.3).sin().abs(),
                    0.5,
                    x / 2.0,
                    0.1,
                    0.9 - x / 2.0,
                ]
            })
            .collect();
        let m = FeatureMatrix::new(rows);
        let mut ve = ViewUtilityEstimator::new(1e-4);
        ve.refit(&m, &labels(&[(0, 0.1), (2_500, 0.4), (9_999, 0.9)]))
            .unwrap();
        let serial = ve.predict_all(&m).unwrap();
        for threads in [1, 2, 3, 7] {
            let parallel = ve.predict_all_parallel(&m, threads).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
        // Unfitted estimators error on the parallel path too.
        let fresh = ViewUtilityEstimator::new(1e-4);
        assert!(fresh.predict_all_parallel(&m, 4).is_err());
    }

    #[test]
    fn unfitted_estimators_error() {
        let m = matrix();
        let ve = ViewUtilityEstimator::new(1e-4);
        assert!(matches!(ve.predict_all(&m), Err(CoreError::Learn(_))));
        let ue = UncertaintyEstimator::new(1e-3, 0.5);
        assert!(ue.uncertainties(&m).is_err());
    }

    #[test]
    fn uncertainty_peaks_between_classes() {
        let m = matrix();
        let mut ue = UncertaintyEstimator::new(1e-4, 0.5);
        ue.refit(&m, &labels(&[(0, 0.0), (1, 0.0), (3, 1.0), (4, 1.0)]))
            .unwrap();
        let u = ue.uncertainties(&m).unwrap();
        let mid = ue.uncertainty(&m, ViewId::new_unchecked(2)).unwrap();
        assert_eq!(u[2], mid);
        assert!(
            mid >= u[0] && mid >= u[4],
            "middle view most uncertain: {u:?}"
        );
        assert!(u.iter().all(|v| (0.0..=0.5 + 1e-12).contains(v)));
    }

    #[test]
    fn positive_threshold_controls_binarization() {
        let m = matrix();
        let mut strict = UncertaintyEstimator::new(1e-4, 0.9);
        // With a 0.9 threshold the 0.7 label is negative → all negatives.
        strict.refit(&m, &labels(&[(0, 0.1), (4, 0.7)])).unwrap();
        let mut lenient = UncertaintyEstimator::new(1e-4, 0.5);
        lenient.refit(&m, &labels(&[(0, 0.1), (4, 0.7)])).unwrap();
        let us = strict.uncertainties(&m).unwrap();
        let ul = lenient.uncertainties(&m).unwrap();
        assert_ne!(us, ul);
    }
}
