//! ViewSeeker: interactive view recommendation via active learning.
//!
//! This crate implements the core contribution of *"ViewSeeker: An
//! Interactive View Recommendation Tool"* (Zhang, Ge, Chrysanthis, Sharaf —
//! BigVis @ EDBT/ICDT 2019): instead of ranking views with a *fixed* utility
//! function (as SeeDB, MuVE, and similar recommenders do), ViewSeeker
//! *learns* the user's ideal utility function `u*()` — an unknown linear
//! combination of utility components (Eq. 4) — from simple 0–1 feedback on a
//! handful of actively-selected example views.
//!
//! # Architecture (paper §3)
//!
//! 1. **Offline initialization** ([`view`], [`viewgen`], [`features`]):
//!    enumerate the view space `(a, m, f)`, materialize each view's target
//!    (`DQ`) and reference (`DR`) distributions, and compute its 8 utility
//!    features (KL, EMD, L1, L2, MAX_DIFF, Usability, Accuracy, P-value).
//! 2. **Interactive recommendation** ([`seeker`], [`coldstart`],
//!    [`estimator`]): a cold-start stage probes the top view of each utility
//!    feature until a positive and a negative label exist; then
//!    least-confidence uncertainty sampling picks the most informative view
//!    each iteration, and a linear-regression *view utility estimator* plus
//!    a logistic-regression *uncertainty estimator* are refit on all labels.
//! 3. **Optimizations** ([`optimize`], paper §3.3): features are first
//!    computed on an α% sample ("rough" scores) and incrementally refined on
//!    the full data between labeling prompts, highest-ranked views first,
//!    within a per-iteration time budget.
//!
//! [`baseline`] provides the SeeDB-style fixed single-feature rankers used
//! as Experiment 2's comparison points, [`composite`] represents arbitrary
//! (including the ideal) linear utility functions, and [`metrics`] has the
//! paper's two quality measures: precision@k and utility distance (Eq. 8).
//!
//! # Quickstart
//!
//! ```
//! use viewseeker_core::{ViewSeeker, ViewSeekerConfig, composite::CompositeUtility};
//! use viewseeker_core::features::UtilityFeature;
//! use viewseeker_dataset::generate::{generate_diab, DiabConfig};
//! use viewseeker_dataset::{Predicate, SelectQuery};
//!
//! let table = generate_diab(&DiabConfig::small(2_000, 7)).unwrap();
//! let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
//! let mut seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
//!
//! // Pretend the user's ideal utility is pure EMD and label 12 views.
//! let ideal = CompositeUtility::single(UtilityFeature::Emd);
//! let ideal_scores = ideal.normalized_scores(seeker.feature_matrix()).unwrap();
//! for _ in 0..12 {
//!     let Some(view) = seeker.next_views(1).unwrap().pop() else { break };
//!     seeker.submit_feedback(view, ideal_scores[view.index()]).unwrap();
//! }
//! let top5 = seeker.recommend(5).unwrap();
//! assert_eq!(top5.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod coldstart;
pub mod composite;
pub mod config;
pub mod diversity;
pub mod estimator;
pub mod features;
pub mod metrics;
pub mod optimize;
pub mod persist;
pub mod scatter;
pub mod seeker;
pub mod session;
pub mod trace;
pub mod view;
pub mod viewgen;

pub use composite::CompositeUtility;
pub use config::{MaterializeStrategy, QueryStrategyKind, RefineBudget, ViewSeekerConfig};
pub use diversity::{diverse_top_k, mean_pairwise_distance};
pub use features::{FeatureMatrix, UtilityFeature};
pub use metrics::{precision_at_k, tie_aware_precision_at_k, utility_distance};
pub use persist::SessionSnapshot;
pub use seeker::{MaterializationReport, OwnedSeeker, Seeker, SeekerPhase, ViewSeeker};
pub use session::FeedbackSession;
pub use trace::{
    noop_tracer, IterationTrace, NoopTracer, PhaseTotal, Recorder, RefinementBudgetReport,
    TracePhase, Tracer,
};
pub use view::{ViewDef, ViewId, ViewSpace};

use viewseeker_dataset::DatasetError;
use viewseeker_learn::LearnError;
use viewseeker_stats::StatsError;

/// Errors produced by the ViewSeeker core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error from the dataset engine.
    Dataset(DatasetError),
    /// An error from the statistics substrate.
    Stats(StatsError),
    /// An error from the learning substrate.
    Learn(LearnError),
    /// A view id referenced a view outside the view space.
    UnknownView(usize),
    /// The same view was labeled twice.
    AlreadyLabeled(usize),
    /// A feedback label was outside `[0, 1]` or not finite.
    InvalidLabel(f64),
    /// Invalid configuration or arguments.
    Invalid(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Dataset(e) => write!(f, "dataset error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::Learn(e) => write!(f, "learning error: {e}"),
            CoreError::UnknownView(id) => write!(f, "unknown view id {id}"),
            CoreError::AlreadyLabeled(id) => write!(f, "view {id} is already labeled"),
            CoreError::InvalidLabel(l) => write!(f, "label {l} outside [0, 1]"),
            CoreError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dataset(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Learn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Dataset(e)
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<LearnError> for CoreError {
    fn from(e: LearnError) -> Self {
        CoreError::Learn(e)
    }
}
