//! A view-type-agnostic interactive session.
//!
//! [`crate::ViewSeeker`] binds the interactive loop to bar-chart views over
//! a table. [`FeedbackSession`] is the same Algorithm 1 loop — cold start,
//! query strategy, utility + uncertainty estimators, top-k recommendation —
//! over *any* precomputed [`FeatureMatrix`], which is what the paper's
//! future-work extension to "more visualization types, such as scatter plot,
//! line chart etc." needs: a new view type only has to map its views into
//! the 8-component utility-feature space (see [`crate::scatter`] for the
//! scatter-plot instantiation).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::coldstart::ColdStart;
use crate::config::{QueryStrategyKind, ViewSeekerConfig};
use crate::estimator::{Label, UncertaintyEstimator, ViewUtilityEstimator};
use crate::features::FeatureMatrix;
use crate::seeker::SeekerPhase;
use crate::view::ViewId;
use crate::CoreError;

/// An interactive recommendation session over an arbitrary feature matrix.
///
/// Item indices (wrapped in [`ViewId`]) refer to rows of the matrix; what
/// those rows *are* — bar charts, scatter plots, line charts — is the
/// caller's concern.
#[derive(Debug)]
pub struct FeedbackSession {
    matrix: FeatureMatrix,
    config: ViewSeekerConfig,
    labels: Vec<Label>,
    labeled: HashSet<usize>,
    has_positive: bool,
    has_negative: bool,
    utility: ViewUtilityEstimator,
    uncertainty: UncertaintyEstimator,
    cold_start: ColdStart,
    rng: StdRng,
}

impl FeedbackSession {
    /// Starts a session over a precomputed feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an invalid configuration or an
    /// empty matrix.
    pub fn new(matrix: FeatureMatrix, config: ViewSeekerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        if matrix.is_empty() {
            return Err(CoreError::Invalid("empty feature matrix".into()));
        }
        Ok(Self {
            utility: ViewUtilityEstimator::new(config.ridge_lambda),
            uncertainty: UncertaintyEstimator::new(
                config.logistic_lambda,
                config.positive_threshold,
            ),
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(2)),
            config,
            matrix,
            labels: Vec::new(),
            labeled: HashSet::new(),
            has_positive: false,
            has_negative: false,
            cold_start: ColdStart::new(),
        })
    }

    /// The session's feature matrix.
    #[must_use]
    pub fn feature_matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }

    /// The current phase.
    #[must_use]
    pub fn phase(&self) -> SeekerPhase {
        if self.has_positive && self.has_negative {
            SeekerPhase::Active
        } else {
            SeekerPhase::ColdStart
        }
    }

    /// Number of labels collected.
    #[must_use]
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// All labels collected so far, in submission order.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Selects the next `m` items to present for labeling.
    ///
    /// Returns an empty vector once every item has been labeled.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn next_items(&mut self, m: usize) -> Result<Vec<ViewId>, CoreError> {
        if self.labeled.len() >= self.matrix.len() {
            return Ok(Vec::new());
        }
        if self.phase() == SeekerPhase::ColdStart {
            while let Some(picks) = self
                .cold_start
                .next_candidates(&self.matrix, &self.labeled, m)
            {
                if !picks.is_empty() {
                    return Ok(picks);
                }
            }
            return Ok(self.random_unlabeled(m));
        }

        let unlabeled: Vec<usize> = (0..self.matrix.len())
            .filter(|i| !self.labeled.contains(i))
            .collect();
        let scores: Vec<f64> = match self.config.strategy {
            QueryStrategyKind::Uncertainty => {
                let all = self.uncertainty.uncertainties(&self.matrix)?;
                unlabeled.iter().map(|&i| all[i]).collect()
            }
            QueryStrategyKind::Random => return Ok(self.random_unlabeled(m)),
            QueryStrategyKind::QueryByCommittee { committee_size } => {
                use viewseeker_learn::active::QueryStrategy;
                let labeled_x: Vec<Vec<f64>> = self
                    .labels
                    .iter()
                    .map(|l| self.matrix.row(l.view.index()).to_vec())
                    .collect();
                let labeled_y: Vec<f64> = self.labels.iter().map(|l| l.score).collect();
                let candidates: Vec<Vec<f64>> = unlabeled
                    .iter()
                    .map(|&i| self.matrix.row(i).to_vec())
                    .collect();
                let mut qbc = viewseeker_learn::QueryByCommittee::new(
                    viewseeker_learn::LogisticConfig {
                        lambda: self.config.logistic_lambda,
                        ..viewseeker_learn::LogisticConfig::default()
                    },
                    committee_size,
                    self.config.seed.wrapping_add(self.labels.len() as u64),
                );
                qbc.scores(&labeled_x, &labeled_y, &candidates)?
            }
        };
        let mut order: Vec<usize> = (0..unlabeled.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(unlabeled[a].cmp(&unlabeled[b]))
        });
        Ok(order
            .into_iter()
            .take(m)
            .map(|pos| ViewId::from_index(unlabeled[pos]))
            .collect())
    }

    /// Records feedback and refits the estimators.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ViewSeeker::submit_feedback`].
    pub fn submit_feedback(&mut self, item: ViewId, score: f64) -> Result<(), CoreError> {
        if !score.is_finite() || !(0.0..=1.0).contains(&score) {
            return Err(CoreError::InvalidLabel(score));
        }
        if item.index() >= self.matrix.len() {
            return Err(CoreError::UnknownView(item.index()));
        }
        if !self.labeled.insert(item.index()) {
            return Err(CoreError::AlreadyLabeled(item.index()));
        }
        self.labels.push(Label { view: item, score });
        if score >= self.config.positive_threshold {
            self.has_positive = true;
        } else {
            self.has_negative = true;
        }
        self.utility.refit(&self.matrix, &self.labels)?;
        if self.has_positive && self.has_negative {
            self.uncertainty.refit(&self.matrix, &self.labels)?;
        }
        Ok(())
    }

    /// The current top-`k` items by predicted utility.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label exists.
    pub fn recommend(&self, k: usize) -> Result<Vec<ViewId>, CoreError> {
        self.utility.top_k(&self.matrix, k)
    }

    /// The estimator's predicted score for every item.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label exists.
    pub fn predicted_scores(&self) -> Result<Vec<f64>, CoreError> {
        self.utility.predict_all(&self.matrix)
    }

    /// [`FeedbackSession::predicted_scores`] scored on `threads` worker
    /// threads (see
    /// [`crate::estimator::ViewUtilityEstimator::predict_all_parallel`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label exists.
    pub fn predicted_scores_parallel(&self, threads: usize) -> Result<Vec<f64>, CoreError> {
        self.utility.predict_all_parallel(&self.matrix, threads)
    }

    /// A diversified top-`k` via maximal marginal relevance
    /// (see [`crate::diversity`]): `lambda = 1` is the plain ranking, lower
    /// values trade predicted utility for feature-space coverage.
    ///
    /// # Errors
    ///
    /// [`CoreError::Learn`] until at least one label exists;
    /// [`CoreError::Invalid`] for `lambda` outside `[0, 1]`.
    pub fn recommend_diverse(&self, k: usize, lambda: f64) -> Result<Vec<ViewId>, CoreError> {
        let scores = self.predicted_scores()?;
        crate::diversity::diverse_top_k(&self.matrix, &scores, k, lambda)
    }

    /// Replaces the feature matrix (same item count) and refits both
    /// estimators on the collected labels — the hook incremental refinement
    /// uses after improving rough features.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] on an item-count mismatch; refit errors
    /// otherwise.
    pub fn update_matrix(&mut self, matrix: FeatureMatrix) -> Result<(), CoreError> {
        if matrix.len() != self.matrix.len() {
            return Err(CoreError::Invalid(format!(
                "replacement matrix has {} items, session has {}",
                matrix.len(),
                self.matrix.len()
            )));
        }
        self.matrix = matrix;
        if !self.labels.is_empty() {
            self.utility.refit(&self.matrix, &self.labels)?;
            if self.has_positive && self.has_negative {
                self.uncertainty.refit(&self.matrix, &self.labels)?;
            }
        }
        Ok(())
    }

    /// The learned feature weights, once fitted.
    #[must_use]
    pub fn learned_weights(&self) -> Option<&[f64]> {
        self.utility.weights()
    }

    fn random_unlabeled(&mut self, m: usize) -> Vec<ViewId> {
        let mut pool: Vec<usize> = (0..self.matrix.len())
            .filter(|i| !self.labeled.contains(i))
            .collect();
        pool.shuffle(&mut self.rng);
        pool.truncate(m);
        pool.into_iter().map(ViewId::from_index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::CompositeUtility;
    use crate::features::{UtilityFeature, FEATURE_COUNT};
    use crate::metrics::tie_aware_precision_at_k;

    /// A synthetic 40-item matrix with signal in two feature columns.
    fn matrix() -> FeatureMatrix {
        let raws: Vec<[f64; FEATURE_COUNT]> = (0..40)
            .map(|i| {
                let mut r = [0.0; FEATURE_COUNT];
                r[0] = (i % 7) as f64 / 6.0;
                r[1] = (i % 5) as f64 / 4.0;
                r[4] = ((i * 13) % 11) as f64 / 10.0;
                r
            })
            .collect();
        FeatureMatrix::new(raws)
    }

    #[test]
    fn generic_session_learns_a_composite() {
        let m = matrix();
        let ideal = CompositeUtility::new(&[(UtilityFeature::Kl, 0.6), (UtilityFeature::Emd, 0.4)])
            .unwrap();
        let truth = ideal.normalized_scores(&m).unwrap();
        let mut s = FeedbackSession::new(m, ViewSeekerConfig::default()).unwrap();
        for _ in 0..25 {
            let Some(item) = s.next_items(1).unwrap().pop() else {
                break;
            };
            s.submit_feedback(item, truth[item.index()]).unwrap();
            let top = s.recommend(5).unwrap();
            if tie_aware_precision_at_k(&truth, &top, 5) >= 1.0 {
                break;
            }
        }
        let top = s.recommend(5).unwrap();
        assert_eq!(
            tie_aware_precision_at_k(&truth, &top, 5),
            1.0,
            "session with {} labels",
            s.label_count()
        );
    }

    #[test]
    fn rejects_empty_matrix_and_bad_labels() {
        assert!(
            FeedbackSession::new(FeatureMatrix::new(vec![]), ViewSeekerConfig::default()).is_err()
        );
        let mut s = FeedbackSession::new(matrix(), ViewSeekerConfig::default()).unwrap();
        let item = s.next_items(1).unwrap()[0];
        assert!(s.submit_feedback(item, 2.0).is_err());
        s.submit_feedback(item, 0.5).unwrap();
        assert!(matches!(
            s.submit_feedback(item, 0.5),
            Err(CoreError::AlreadyLabeled(_))
        ));
        assert!(s.submit_feedback(ViewId::from_index(999), 0.5).is_err());
    }

    #[test]
    fn exhausts_the_item_space() {
        let raws: Vec<[f64; FEATURE_COUNT]> = (0..4)
            .map(|i| {
                let mut r = [0.0; FEATURE_COUNT];
                r[0] = i as f64;
                r
            })
            .collect();
        let mut s =
            FeedbackSession::new(FeatureMatrix::new(raws), ViewSeekerConfig::default()).unwrap();
        for i in 0..4 {
            let item = s.next_items(1).unwrap()[0];
            s.submit_feedback(item, if i % 2 == 0 { 0.9 } else { 0.1 })
                .unwrap();
        }
        assert!(s.next_items(1).unwrap().is_empty());
        assert_eq!(s.label_count(), 4);
    }

    #[test]
    fn phase_transition_mirrors_viewseeker() {
        let mut s = FeedbackSession::new(matrix(), ViewSeekerConfig::default()).unwrap();
        assert_eq!(s.phase(), SeekerPhase::ColdStart);
        let a = s.next_items(1).unwrap()[0];
        s.submit_feedback(a, 0.9).unwrap();
        let b = s.next_items(1).unwrap()[0];
        s.submit_feedback(b, 0.1).unwrap();
        assert_eq!(s.phase(), SeekerPhase::Active);
        assert!(s.learned_weights().is_some());
    }
}
