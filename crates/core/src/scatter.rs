//! Scatter-plot views — the paper's future-work extension.
//!
//! "In the future, we plan to ... extend it to support more visualization
//! types, such as scatter plot, line chart etc." (paper §7).
//!
//! A scatter view pairs two measure attributes `(x, y)`. The key design
//! move that lets the *entire* existing pipeline apply is to represent a
//! scatter view, like a bar-chart view, as a pair of probability
//! distributions: the **2-D density histogram** of `(x, y)` over a `g × g`
//! grid (cell edges derived from the full table, so `DQ` and `DR` share the
//! grid), flattened row-major. The target/reference deviation features (KL,
//! EMD, L1, L2, MAX_DIFF), the χ² p-value, and the usability hump then work
//! unchanged through [`crate::features::compute_features`]; the accuracy
//! component becomes the residual variance of the least-squares trend line
//! through the `DQ` points — "how well does a fitted trend summarize this
//! scatter".
//!
//! Interactive recommendation over scatter views runs through
//! [`crate::session::FeedbackSession`].

use viewseeker_dataset::{strict_sum, RowSet, Table};
use viewseeker_stats::Distribution;

use crate::features::FeatureMatrix;
use crate::view::ViewId;
use crate::viewgen::ViewData;
use crate::CoreError;

/// One scatter-plot view: a pair of measure attributes and a grid
/// resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScatterViewDef {
    /// Measure on the x axis.
    pub x: String,
    /// Measure on the y axis.
    pub y: String,
    /// Cells per axis of the density grid (total bins = `grid²`).
    pub grid: usize,
}

impl std::fmt::Display for ScatterViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SCATTER({} vs {}) [{g}x{g} grid]",
            self.x,
            self.y,
            g = self.grid
        )
    }
}

/// The enumerated space of scatter views over a table: every unordered pair
/// of distinct measure attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterSpace {
    views: Vec<ScatterViewDef>,
}

impl ScatterSpace {
    /// Enumerates all measure pairs at the given grid resolution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if the table has fewer than two
    /// measures or `grid == 0`.
    pub fn enumerate(table: &Table, grid: usize) -> Result<Self, CoreError> {
        if grid == 0 {
            return Err(CoreError::Invalid("grid must be positive".into()));
        }
        let measures = table.measure_names();
        if measures.len() < 2 {
            return Err(CoreError::Invalid(
                "scatter views need at least two measures".into(),
            ));
        }
        let mut views = Vec::new();
        for i in 0..measures.len() {
            for j in i + 1..measures.len() {
                views.push(ScatterViewDef {
                    x: measures[i].to_owned(),
                    y: measures[j].to_owned(),
                    grid,
                });
            }
        }
        Ok(Self { views })
    }

    /// Number of scatter views.
    #[must_use]
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the space is empty (never true once enumerated).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The definition behind an id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownView`] for an out-of-range id.
    pub fn def(&self, id: ViewId) -> Result<&ScatterViewDef, CoreError> {
        self.views
            .get(id.index())
            .ok_or(CoreError::UnknownView(id.index()))
    }

    /// All definitions in enumeration order.
    #[must_use]
    pub fn defs(&self) -> &[ScatterViewDef] {
        &self.views
    }
}

/// Materializes one scatter view: 2-D density histograms of `(x, y)` for
/// `DQ` (target) and `DR` (reference) over a shared full-table grid, plus
/// the trend-line residual variance of the target points.
///
/// # Errors
///
/// Propagates column-lookup errors; [`CoreError::Invalid`] for a degenerate
/// (empty or constant) measure column.
pub fn materialize_scatter(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    def: &ScatterViewDef,
) -> Result<ViewData, CoreError> {
    let xs = table.numeric_values(&def.x)?;
    let ys = table.numeric_values(&def.y)?;
    let x_range = range_of(xs)
        .ok_or_else(|| CoreError::Invalid(format!("measure {} has no finite values", def.x)))?;
    let y_range = range_of(ys)
        .ok_or_else(|| CoreError::Invalid(format!("measure {} has no finite values", def.y)))?;

    let target_counts = grid_counts(xs, ys, dq, def.grid, x_range, y_range);
    let reference_counts = grid_counts(xs, ys, dr, def.grid, x_range, y_range);

    Ok(ViewData {
        target: Distribution::from_aggregates(&target_counts)?,
        reference: Distribution::from_aggregates(&reference_counts)?,
        target_rows: dq.len() as u64,
        dispersion: trend_residual_variance(xs, ys, dq),
        bins: def.grid * def.grid,
    })
}

/// Materializes every scatter view and assembles the 8-feature matrix —
/// the scatter counterpart of the offline initialization phase.
///
/// # Errors
///
/// Propagates materialization errors.
pub fn scatter_feature_matrix(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    space: &ScatterSpace,
    usability_optimal_bins: f64,
) -> Result<FeatureMatrix, CoreError> {
    let views = space
        .defs()
        .iter()
        .map(|def| materialize_scatter(table, dq, dr, def))
        .collect::<Result<Vec<_>, _>>()?;
    FeatureMatrix::from_views(&views, usability_optimal_bins)
}

fn range_of(values: &[f64]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo <= hi).then_some((lo, hi))
}

/// Row-major `g × g` cell counts of the selected rows.
fn grid_counts(
    xs: &[f64],
    ys: &[f64],
    rows: &RowSet,
    grid: usize,
    (x_lo, x_hi): (f64, f64),
    (y_lo, y_hi): (f64, f64),
) -> Vec<f64> {
    let mut counts = vec![0.0; grid * grid];
    let x_width = (x_hi - x_lo) / grid as f64;
    let y_width = (y_hi - y_lo) / grid as f64;
    let cell = |v: f64, lo: f64, width: f64| -> usize {
        if width <= 0.0 || v.is_nan() {
            0
        } else {
            (((v - lo) / width).floor() as i64).clamp(0, grid as i64 - 1) as usize
        }
    };
    for &row in rows.ids() {
        let row = row as usize;
        let cx = cell(xs[row], x_lo, x_width);
        let cy = cell(ys[row], y_lo, y_width);
        counts[cy * grid + cx] += 1.0;
    }
    counts
}

/// Per-point residual variance of the least-squares line `y ≈ a·x + b`
/// fitted to the selected rows; 0 for fewer than 2 points or a vertical
/// spread.
fn trend_residual_variance(xs: &[f64], ys: &[f64], rows: &RowSet) -> f64 {
    let n = rows.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &row in rows.ids() {
        let (x, y) = (xs[row as usize], ys[row as usize]);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = nf * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-12 {
        (0.0, sy / nf)
    } else {
        let a = (nf * sxy - sx * sy) / denom;
        (a, (sy - a * sx) / nf)
    };
    let sse: f64 = strict_sum(rows.ids().iter().map(|&row| {
        let (x, y) = (xs[row as usize], ys[row as usize]);
        let r = y - (a * x + b);
        r * r
    }));
    sse / nf
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::generate::{generate_syn, SynConfig};
    use viewseeker_dataset::{Column, Predicate, Schema, SelectQuery};

    fn syn_table() -> Table {
        generate_syn(&SynConfig::small(3_000, 13)).unwrap()
    }

    #[test]
    fn enumerates_all_measure_pairs() {
        let t = syn_table(); // 5 measures → C(5,2) = 10 pairs
        let s = ScatterSpace::enumerate(&t, 6).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.defs().iter().all(|d| d.x < d.y));
        assert!(ScatterSpace::enumerate(&t, 0).is_err());
    }

    #[test]
    fn needs_two_measures() {
        let schema = Schema::builder()
            .categorical_dimension("c")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a"]),
                Column::numeric(vec![1.0]),
            ],
        )
        .unwrap();
        assert!(ScatterSpace::enumerate(&t, 4).is_err());
    }

    #[test]
    fn materialized_grids_are_valid_distributions() {
        let t = syn_table();
        let dq = SelectQuery::new(Predicate::range("d0", 0.0, 25.0))
            .execute(&t)
            .unwrap();
        let space = ScatterSpace::enumerate(&t, 5).unwrap();
        for (i, def) in space.defs().iter().enumerate() {
            let vd = materialize_scatter(&t, &dq, &t.all_rows(), def).unwrap();
            assert_eq!(vd.bins, 25, "view {i}");
            assert_eq!(vd.target.len(), 25);
            assert!((vd.target.masses().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(vd.dispersion >= 0.0);
        }
    }

    #[test]
    fn identical_selections_give_identical_distributions() {
        let t = syn_table();
        let def = ScatterViewDef {
            x: "m0".into(),
            y: "m1".into(),
            grid: 4,
        };
        let vd = materialize_scatter(&t, &t.all_rows(), &t.all_rows(), &def).unwrap();
        assert_eq!(vd.target, vd.reference);
    }

    #[test]
    fn perfect_linear_trend_has_zero_residual() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let rows = RowSet::all(50);
        assert!(trend_residual_variance(&xs, &ys, &rows) < 1e-9);
    }

    #[test]
    fn noisy_trend_has_positive_residual() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let rows = RowSet::all(50);
        assert!(trend_residual_variance(&xs, &ys, &rows) > 1.0);
    }

    #[test]
    fn constant_x_falls_back_to_mean_fit() {
        let xs = vec![1.0; 10];
        let ys: Vec<f64> = (0..10).map(f64::from).collect();
        let rows = RowSet::all(10);
        let v = trend_residual_variance(&xs, &ys, &rows);
        // Residuals around the mean of 0..9.
        assert!((v - 8.25).abs() < 1e-9);
    }

    #[test]
    fn feature_matrix_covers_the_space() {
        let t = syn_table();
        let dq = SelectQuery::new(Predicate::range("d1", 50.0, 100.0))
            .execute(&t)
            .unwrap();
        let space = ScatterSpace::enumerate(&t, 4).unwrap();
        let m = scatter_feature_matrix(&t, &dq, &t.all_rows(), &space, 16.0).unwrap();
        assert_eq!(m.len(), space.len());
        for row in m.rows() {
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn empty_dq_is_handled() {
        let t = syn_table();
        let def = ScatterViewDef {
            x: "m0".into(),
            y: "m2".into(),
            grid: 3,
        };
        let vd = materialize_scatter(&t, &RowSet::empty(), &t.all_rows(), &def).unwrap();
        assert_eq!(vd.target_rows, 0);
        assert_eq!(vd.dispersion, 0.0);
    }

    #[test]
    fn unknown_measure_errors() {
        let t = syn_table();
        let def = ScatterViewDef {
            x: "nope".into(),
            y: "m1".into(),
            grid: 3,
        };
        assert!(materialize_scatter(&t, &t.all_rows(), &t.all_rows(), &def).is_err());
    }
}
