//! Diversified top-k recommendation (DiVE-style).
//!
//! The paper's related work cites DiVE (Mafrur, Sharaf, Khan — CIKM'18):
//! "DiVE: Diversifying View Recommendation for Visual Data Exploration".
//! A pure utility-ranked top-k is often redundant — the same deviating
//! dimension shows up under five aggregate functions. This module provides
//! the classic *maximal marginal relevance* (MMR) greedy diversification
//! over the normalized utility-feature space:
//!
//! ```text
//! next = argmax_v  λ·score(v) − (1 − λ)·max_{s ∈ selected} sim(v, s)
//! ```
//!
//! with `sim` the feature-space similarity. `λ = 1` degenerates to the plain
//! utility ranking; lower λ trades predicted utility for coverage.

use viewseeker_dataset::strict_sum;

use crate::features::{FeatureMatrix, FEATURE_COUNT};
use crate::view::ViewId;
use crate::CoreError;

/// Similarity of two normalized feature rows in `[0, 1]`: 1 − the L2
/// distance scaled by its maximum (`√d` over the unit cube).
#[must_use]
pub fn feature_similarity(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dist: f64 = strict_sum(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y))).sqrt();
    1.0 - dist / (a.len() as f64).sqrt()
}

/// Greedy MMR selection of `k` views: each pick maximizes
/// `λ·score − (1 − λ)·max-similarity-to-already-selected`.
///
/// ```
/// use viewseeker_core::{diverse_top_k, FeatureMatrix};
///
/// // Two near-duplicate high scorers and one distinct runner-up.
/// let matrix = FeatureMatrix::new(vec![
///     [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
///     [0.99, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
///     [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
/// ]);
/// let scores = vec![1.0, 0.99, 0.5];
/// let picks = diverse_top_k(&matrix, &scores, 2, 0.5).unwrap();
/// let ids: Vec<usize> = picks.iter().map(|v| v.index()).collect();
/// assert_eq!(ids, vec![0, 2], "the near-duplicate is skipped");
/// ```
///
/// `scores` is one utility score per matrix row (any scale; ranks are what
/// matter for `λ = 1`, magnitudes matter for the trade-off). Ties break by
/// view index for determinism.
///
/// # Errors
///
/// * [`CoreError::Invalid`] if `lambda` is outside `[0, 1]` or `scores`
///   disagrees with the matrix in length.
pub fn diverse_top_k(
    matrix: &FeatureMatrix,
    scores: &[f64],
    k: usize,
    lambda: f64,
) -> Result<Vec<ViewId>, CoreError> {
    if !(0.0..=1.0).contains(&lambda) {
        return Err(CoreError::Invalid(format!(
            "lambda {lambda} outside [0, 1]"
        )));
    }
    if scores.len() != matrix.len() {
        return Err(CoreError::Invalid(format!(
            "{} scores for {} views",
            scores.len(),
            matrix.len()
        )));
    }
    let n = matrix.len();
    let k = k.min(n);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    // Max similarity of each candidate to the selected set, updated
    // incrementally (classic O(k·n) MMR).
    let mut max_sim = vec![0.0f64; n];
    let mut taken = vec![false; n];

    for round in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let mmr = if round == 0 {
                scores[i]
            } else {
                lambda * scores[i] - (1.0 - lambda) * max_sim[i]
            };
            let better = match best {
                None => true,
                Some((_, b)) => mmr > b + 1e-15,
            };
            if better {
                best = Some((i, mmr));
            }
        }
        let Some((pick, _)) = best else { break };
        taken[pick] = true;
        selected.push(pick);
        let pick_row = matrix.row(pick);
        for i in 0..n {
            if !taken[i] {
                let sim = feature_similarity(matrix.row(i), pick_row);
                if sim > max_sim[i] {
                    max_sim[i] = sim;
                }
            }
        }
    }
    Ok(selected.into_iter().map(ViewId::new_unchecked).collect())
}

/// Mean pairwise feature-space distance of a view set — the diversity
/// measure the MMR trade-off increases. 0 for fewer than two views.
#[must_use]
pub fn mean_pairwise_distance(matrix: &FeatureMatrix, views: &[ViewId]) -> f64 {
    if views.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for (i, a) in views.iter().enumerate() {
        for b in &views[i + 1..] {
            let sim = feature_similarity(matrix.row(a.index()), matrix.row(b.index()));
            total += (1.0 - sim) * (FEATURE_COUNT as f64).sqrt();
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clusters of near-duplicate views with descending scores.
    fn matrix_and_scores() -> (FeatureMatrix, Vec<f64>) {
        let mut raws = Vec::new();
        let mut scores = Vec::new();
        for cluster in 0..3 {
            for member in 0..3 {
                let mut r = [0.0; FEATURE_COUNT];
                // Jitter inside the hot column keeps cluster members close
                // even after per-column min-max normalization.
                r[cluster] = 1.0 - member as f64 * 0.01;
                raws.push(r);
                // Cluster 0 has the highest scores, then 1, then 2.
                scores.push(1.0 - cluster as f64 * 0.2 - member as f64 * 0.01);
            }
        }
        (FeatureMatrix::new(raws), scores)
    }

    #[test]
    fn lambda_one_is_plain_ranking() {
        let (m, scores) = matrix_and_scores();
        let plain: Vec<usize> = viewseeker_stats::rank_descending(&scores)
            .into_iter()
            .take(3)
            .collect();
        let mmr: Vec<usize> = diverse_top_k(&m, &scores, 3, 1.0)
            .unwrap()
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(mmr, plain);
    }

    #[test]
    fn diversification_spreads_across_clusters() {
        let (m, scores) = matrix_and_scores();
        // Plain top-3 is all of cluster 0.
        let plain = diverse_top_k(&m, &scores, 3, 1.0).unwrap();
        // λ = 0.5 should pick one view from each cluster instead.
        let diverse = diverse_top_k(&m, &scores, 3, 0.5).unwrap();
        let d_plain = mean_pairwise_distance(&m, &plain);
        let d_diverse = mean_pairwise_distance(&m, &diverse);
        assert!(
            d_diverse > d_plain,
            "diversified set should be more spread: {d_diverse} vs {d_plain}"
        );
        // Each pick comes from a distinct cluster (distinct hot feature).
        let hot: std::collections::HashSet<usize> = diverse
            .iter()
            .map(|v| {
                m.row(v.index())
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        assert_eq!(hot.len(), 3);
    }

    #[test]
    fn first_pick_is_always_the_best_view() {
        let (m, scores) = matrix_and_scores();
        for lambda in [0.0, 0.3, 0.7, 1.0] {
            let picks = diverse_top_k(&m, &scores, 1, lambda).unwrap();
            assert_eq!(picks[0].index(), 0, "λ = {lambda}");
        }
    }

    #[test]
    fn k_larger_than_space_is_capped() {
        let (m, scores) = matrix_and_scores();
        let picks = diverse_top_k(&m, &scores, 100, 0.5).unwrap();
        assert_eq!(picks.len(), 9);
        // No duplicates.
        let set: std::collections::HashSet<usize> = picks.iter().map(|v| v.index()).collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn validation_errors() {
        let (m, scores) = matrix_and_scores();
        assert!(diverse_top_k(&m, &scores, 3, 1.5).is_err());
        assert!(diverse_top_k(&m, &scores[..2], 3, 0.5).is_err());
    }

    #[test]
    fn similarity_properties() {
        let a = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!((feature_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let sim = feature_similarity(&a, &b);
        assert!((0.0..1.0).contains(&sim));
        assert!((sim - feature_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn pairwise_distance_degenerate_cases() {
        let (m, _) = matrix_and_scores();
        assert_eq!(mean_pairwise_distance(&m, &[]), 0.0);
        assert_eq!(mean_pairwise_distance(&m, &[ViewId::new_unchecked(0)]), 0.0);
    }
}
