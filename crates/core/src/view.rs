//! View definitions and view-space enumeration.
//!
//! A view is a triple `(a, m, f)` — dimension attribute, measure attribute,
//! aggregate function — optionally extended with a bin count for numeric
//! dimensions (the SYN testbed enumerates every view under both a 3-bin and
//! a 4-bin configuration, Table 1). The view space is the cross product
//! (Eq. 1); each member gets a stable [`ViewId`] used everywhere else in the
//! system.

use serde::{Deserialize, Serialize};
use viewseeker_dataset::{AggregateFunction, AttributeRole, Table};

use crate::CoreError;

/// Stable identifier of a view within one [`ViewSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ViewId(usize);

impl ViewId {
    /// Crate-internal constructor: indices produced by the feature matrix /
    /// rankers are valid by construction. Public code goes through
    /// [`ViewSpace::id`], which bounds-checks.
    pub(crate) fn new_unchecked(index: usize) -> Self {
        ViewId(index)
    }

    /// Wraps a raw matrix index without validating it against a view space.
    ///
    /// Use [`ViewSpace::id`] when a view space is at hand; this constructor
    /// exists for harness code that works with ranking indices derived from
    /// a [`crate::FeatureMatrix`] (which are valid by construction). Methods
    /// taking a `ViewId` report [`crate::CoreError::UnknownView`] if an
    /// out-of-range id reaches them.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ViewId(index)
    }

    /// The view's index into the enumeration order of its view space.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The logical definition of one candidate view.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViewDef {
    /// Dimension attribute `a` (grouped by).
    pub dimension: String,
    /// Measure attribute `m` (aggregated).
    pub measure: String,
    /// Aggregate function `f`.
    pub aggregate: AggregateFunction,
    /// Bin count for a numeric dimension; `None` for a categorical
    /// dimension's natural bins.
    pub bins: Option<usize>,
}

impl ViewDef {
    /// Renders the view as the SQL queries it stands for (paper §2.1: "a
    /// view vᵢ essentially represents an SQL query with a group-by clause").
    /// `where_clause` is the user query's WHERE text, present for the target
    /// view and absent for the reference view.
    #[must_use]
    pub fn to_sql(&self, table_name: &str, where_clause: Option<&str>) -> String {
        let group = match self.bins {
            Some(b) => format!("BIN({}, {b})", self.dimension),
            None => self.dimension.clone(),
        };
        let mut sql = format!(
            "SELECT {group}, {}({}) FROM {table_name}",
            self.aggregate, self.measure
        );
        if let Some(w) = where_clause {
            sql.push_str(" WHERE ");
            sql.push_str(w);
        }
        sql.push_str(&format!(" GROUP BY {group}"));
        sql
    }
}

impl std::fmt::Display for ViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({}) BY {}",
            self.aggregate, self.measure, self.dimension
        )?;
        if let Some(b) = self.bins {
            write!(f, " [{b} bins]")?;
        }
        Ok(())
    }
}

/// The enumerated space of all candidate views over a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSpace {
    views: Vec<ViewDef>,
}

impl ViewSpace {
    /// Enumerates all views of `table`: every (dimension, measure,
    /// aggregate) triple, with numeric dimensions expanded once per entry of
    /// `bin_configs` and categorical dimensions using their natural bins.
    ///
    /// For the paper's testbeds this yields exactly 280 views on DIAB
    /// (7 × 8 × 5, categorical dims) and 250 on SYN (5 × 5 × 5 × 2 bin
    /// configs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if the table has no dimensions or no
    /// measures, or if `bin_configs` is empty/contains zero while numeric
    /// dimensions exist.
    pub fn enumerate(table: &Table, bin_configs: &[usize]) -> Result<Self, CoreError> {
        Self::enumerate_excluding(table, bin_configs, &[])
    }

    /// Like [`ViewSpace::enumerate`], but omits the named dimension
    /// attributes. SeeDB-style recommenders exclude attributes already
    /// constrained by the user's query — grouping by an attribute the query
    /// fixes to one value yields a point-mass target view whose deviation is
    /// trivially maximal and carries no insight.
    ///
    /// # Errors
    ///
    /// Same as [`ViewSpace::enumerate`]; also fails if the exclusions leave
    /// no dimensions.
    pub fn enumerate_excluding(
        table: &Table,
        bin_configs: &[usize],
        excluded_dimensions: &[String],
    ) -> Result<Self, CoreError> {
        let dims: Vec<(&str, bool)> = table
            .schema()
            .columns()
            .iter()
            .filter(|c| c.role == AttributeRole::Dimension)
            .filter(|c| !excluded_dimensions.contains(&c.name))
            .map(|c| {
                let is_cat = table
                    .column_by_name(&c.name)
                    .map(|col| col.is_categorical())
                    .unwrap_or(false);
                (c.name.as_str(), is_cat)
            })
            .collect();
        let measures = table.measure_names();
        if dims.is_empty() || measures.is_empty() {
            return Err(CoreError::Invalid(
                "view enumeration needs at least one dimension and one measure".into(),
            ));
        }
        let has_numeric_dim = dims.iter().any(|(_, is_cat)| !is_cat);
        if has_numeric_dim && (bin_configs.is_empty() || bin_configs.contains(&0)) {
            return Err(CoreError::Invalid(
                "numeric dimensions need non-empty, positive bin_configs".into(),
            ));
        }

        let mut views = Vec::new();
        for (dim, is_cat) in &dims {
            let bin_options: Vec<Option<usize>> = if *is_cat {
                vec![None]
            } else {
                bin_configs.iter().map(|b| Some(*b)).collect()
            };
            for bins in &bin_options {
                for measure in &measures {
                    for aggregate in AggregateFunction::all() {
                        views.push(ViewDef {
                            dimension: (*dim).to_owned(),
                            measure: (*measure).to_owned(),
                            aggregate,
                            bins: *bins,
                        });
                    }
                }
            }
        }
        Ok(Self { views })
    }

    /// Number of views.
    #[must_use]
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the space is empty (never true for an enumerated space).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The definition behind a [`ViewId`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownView`] for an out-of-range id.
    pub fn def(&self, id: ViewId) -> Result<&ViewDef, CoreError> {
        self.views.get(id.0).ok_or(CoreError::UnknownView(id.0))
    }

    /// All view ids in enumeration order.
    pub fn ids(&self) -> impl Iterator<Item = ViewId> + '_ {
        (0..self.views.len()).map(ViewId)
    }

    /// All view definitions in enumeration order.
    #[must_use]
    pub fn defs(&self) -> &[ViewDef] {
        &self.views
    }

    /// Wraps a raw index into a [`ViewId`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownView`] for an out-of-range index.
    pub fn id(&self, index: usize) -> Result<ViewId, CoreError> {
        if index < self.views.len() {
            Ok(ViewId(index))
        } else {
            Err(CoreError::UnknownView(index))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_dataset::generate::{generate_diab, generate_syn, DiabConfig, SynConfig};

    #[test]
    fn diab_space_is_280_views() {
        let t = generate_diab(&DiabConfig::small(200, 1)).unwrap();
        let vs = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        assert_eq!(vs.len(), 280, "7 dims × 8 measures × 5 aggregates");
        // Categorical dims never expand per bin config.
        assert!(vs.defs().iter().all(|v| v.bins.is_none()));
    }

    #[test]
    fn syn_space_is_250_views() {
        let t = generate_syn(&SynConfig::small(200, 1)).unwrap();
        let vs = ViewSpace::enumerate(&t, &[3, 4]).unwrap();
        assert_eq!(vs.len(), 250, "5 dims × 5 measures × 5 aggregates × 2 bins");
        assert!(vs.defs().iter().all(|v| v.bins.is_some()));
    }

    #[test]
    fn ids_round_trip() {
        let t = generate_diab(&DiabConfig::small(100, 2)).unwrap();
        let vs = ViewSpace::enumerate(&t, &[3]).unwrap();
        for id in vs.ids() {
            assert_eq!(vs.id(id.index()).unwrap(), id);
            assert!(vs.def(id).is_ok());
        }
        assert!(matches!(vs.id(vs.len()), Err(CoreError::UnknownView(_))));
        assert!(vs.def(ViewId(99_999)).is_err());
    }

    #[test]
    fn empty_bin_configs_only_matter_for_numeric_dims() {
        let diab = generate_diab(&DiabConfig::small(100, 3)).unwrap();
        assert!(ViewSpace::enumerate(&diab, &[]).is_ok());
        let syn = generate_syn(&SynConfig::small(100, 3)).unwrap();
        assert!(ViewSpace::enumerate(&syn, &[]).is_err());
        assert!(ViewSpace::enumerate(&syn, &[0]).is_err());
    }

    #[test]
    fn to_sql_renders_target_and_reference_queries() {
        let def = ViewDef {
            dimension: "a0".into(),
            measure: "m0".into(),
            aggregate: AggregateFunction::Avg,
            bins: None,
        };
        assert_eq!(
            def.to_sql("diab", Some("a1 = 'x'")),
            "SELECT a0, AVG(m0) FROM diab WHERE a1 = 'x' GROUP BY a0"
        );
        assert_eq!(
            def.to_sql("diab", None),
            "SELECT a0, AVG(m0) FROM diab GROUP BY a0"
        );
        let binned = ViewDef {
            dimension: "d0".into(),
            measure: "m1".into(),
            aggregate: AggregateFunction::Count,
            bins: Some(4),
        };
        assert!(binned.to_sql("syn", None).contains("BIN(d0, 4)"));
    }

    #[test]
    fn display_is_sqlish() {
        let def = ViewDef {
            dimension: "region".into(),
            measure: "sales".into(),
            aggregate: AggregateFunction::Avg,
            bins: Some(4),
        };
        assert_eq!(def.to_string(), "AVG(sales) BY region [4 bins]");
    }
}
