//! Incremental feature refinement (paper §3.3).
//!
//! With the α-sampling optimization, the offline phase computes only "rough"
//! utility features from an α% sample. "During the second phase, ViewSeeker
//! will incrementally refine the utility score of each view with the entire
//! set of data whenever there is spare computing power available between
//! user labeling prompts ... ViewSeeker uses the current view utility
//! estimator to rank the views, and the views ranked highly would have
//! higher priority in computing the accurate utility features. Effectively,
//! these optimizations allow ViewSeeker to reduce the unnecessary
//! computation by pruning out the calculations for views that are less
//! promising."
//!
//! [`IncrementalRefiner`] tracks which views still hold rough features and
//! walks a caller-supplied priority order within a per-iteration budget —
//! either a deterministic view count (tests, reproducible experiments) or a
//! wall-clock allowance (the paper's `tl`).

use crate::trace::Stopwatch;

use crate::config::RefineBudget;
use crate::CoreError;

/// Tracks refinement progress across the view space.
#[derive(Debug, Clone)]
pub struct IncrementalRefiner {
    refined: Vec<bool>,
    remaining: usize,
}

impl IncrementalRefiner {
    /// A refiner over `n` views, all initially holding rough features.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            refined: vec![false; n],
            remaining: n,
        }
    }

    /// Number of views still holding rough (α-sampled) features.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.remaining
    }

    /// Whether every view has been refined with full data.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// Whether view `i` has been refined.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_refined(&self, i: usize) -> bool {
        self.refined[i]
    }

    /// Refines views in `priority` order within `budget`, calling
    /// `recompute(i)` for each view that still holds rough features.
    /// Returns how many views were refined this round.
    ///
    /// Views appearing early in `priority` are the ones the current utility
    /// estimator ranks highest; low-priority views may never be reached —
    /// that is the pruning.
    ///
    /// # Errors
    ///
    /// Propagates the first `recompute` error; the refiner stays consistent
    /// (the failed view is still marked pending).
    pub fn refine_batch<F>(
        &mut self,
        priority: &[usize],
        budget: RefineBudget,
        mut recompute: F,
    ) -> Result<usize, CoreError>
    where
        F: FnMut(usize) -> Result<(), CoreError>,
    {
        if self.remaining == 0 {
            return Ok(0);
        }
        let started = Stopwatch::start();
        let mut done = 0usize;
        for &i in priority {
            match budget {
                RefineBudget::Views(max) if done >= max => break,
                RefineBudget::Time(limit) if done > 0 && started.elapsed() >= limit => break,
                _ => {}
            }
            if i >= self.refined.len() || self.refined[i] {
                continue;
            }
            recompute(i)?;
            self.refined[i] = true;
            self.remaining -= 1;
            done += 1;
            if self.remaining == 0 {
                break;
            }
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn refines_in_priority_order_within_view_budget() {
        let mut r = IncrementalRefiner::new(5);
        let mut order = Vec::new();
        let done = r
            .refine_batch(&[3, 1, 4, 0, 2], RefineBudget::Views(2), |i| {
                order.push(i);
                Ok(())
            })
            .unwrap();
        assert_eq!(done, 2);
        assert_eq!(order, vec![3, 1]);
        assert_eq!(r.pending(), 3);
        assert!(r.is_refined(3) && r.is_refined(1));
        assert!(!r.is_refined(0));
    }

    #[test]
    fn skips_already_refined_views() {
        let mut r = IncrementalRefiner::new(3);
        r.refine_batch(&[0], RefineBudget::Views(1), |_| Ok(()))
            .unwrap();
        let mut order = Vec::new();
        r.refine_batch(&[0, 1, 2], RefineBudget::Views(10), |i| {
            order.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(order, vec![1, 2]);
        assert!(r.is_complete());
    }

    #[test]
    fn complete_refiner_is_a_noop() {
        let mut r = IncrementalRefiner::new(1);
        r.refine_batch(&[0], RefineBudget::Views(5), |_| Ok(()))
            .unwrap();
        let done = r
            .refine_batch(&[0], RefineBudget::Views(5), |_| {
                panic!("should not recompute")
            })
            .unwrap();
        assert_eq!(done, 0);
    }

    #[test]
    fn time_budget_always_refines_at_least_one() {
        let mut r = IncrementalRefiner::new(4);
        // A zero time budget must still make progress — otherwise refinement
        // could starve forever on a slow machine.
        let done = r
            .refine_batch(
                &[0, 1, 2, 3],
                RefineBudget::Time(Duration::ZERO),
                |_| Ok(()),
            )
            .unwrap();
        assert_eq!(done, 1);
    }

    #[test]
    fn error_keeps_view_pending() {
        let mut r = IncrementalRefiner::new(2);
        let result = r.refine_batch(&[0, 1], RefineBudget::Views(2), |i| {
            if i == 0 {
                Err(CoreError::Invalid("boom".into()))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
        assert!(!r.is_refined(0));
        assert_eq!(r.pending(), 2);
    }

    #[test]
    fn out_of_range_priorities_are_ignored() {
        let mut r = IncrementalRefiner::new(2);
        let done = r
            .refine_batch(&[99, 1], RefineBudget::Views(5), |_| Ok(()))
            .unwrap();
        assert_eq!(done, 1);
        assert!(r.is_refined(1));
    }
}
