//! The cold-start stage of the interactive phase.
//!
//! "Machine learning models such as the uncertainty estimator must be
//! trained with both positive and negative views. ... To facilitate this
//! process, ViewSeeker would first select views ranked highest according to
//! each utility feature. Each utility feature would then be considered in a
//! sequential manner ... In the case where no positive or negative feedback
//! has been received after visiting all dimensions, ViewSeeker will then
//! switch to random sampling" (paper §3.2).

use std::collections::HashSet;

use crate::features::{FeatureMatrix, UtilityFeature};
use crate::view::ViewId;

/// Sequential per-feature probing state.
#[derive(Debug, Clone)]
pub struct ColdStart {
    /// Features not yet probed, in presentation order.
    queue: Vec<UtilityFeature>,
    cursor: usize,
}

impl Default for ColdStart {
    fn default() -> Self {
        Self::new()
    }
}

impl ColdStart {
    /// A fresh cold-start pass over all eight utility features.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: UtilityFeature::all().to_vec(),
            cursor: 0,
        }
    }

    /// Whether every feature has been probed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.queue.len()
    }

    /// The feature that will drive the next probe, if any remain.
    #[must_use]
    pub fn current_feature(&self) -> Option<UtilityFeature> {
        self.queue.get(self.cursor).copied()
    }

    /// Returns up to `m` unlabeled views ranked highest by the next utility
    /// feature, advancing to the following feature. `None` once all features
    /// have been probed (the caller then falls back to random sampling).
    pub fn next_candidates(
        &mut self,
        matrix: &FeatureMatrix,
        labeled: &HashSet<usize>,
        m: usize,
    ) -> Option<Vec<ViewId>> {
        let feature = self.queue.get(self.cursor).copied()?;
        self.cursor += 1;
        let column = matrix.column(feature);
        let picks: Vec<ViewId> = viewseeker_stats::rank_descending(&column)
            .into_iter()
            .filter(|i| !labeled.contains(i))
            .take(m)
            .map(ViewId::new_unchecked)
            .collect();
        Some(picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;

    fn matrix() -> FeatureMatrix {
        // View i is the top view of feature i (diagonal signal).
        let mut raws = Vec::new();
        for i in 0..FEATURE_COUNT {
            let mut row = [0.0; FEATURE_COUNT];
            row[i] = 1.0;
            raws.push(row);
        }
        FeatureMatrix::new(raws)
    }

    #[test]
    fn probes_each_feature_in_order() {
        let m = matrix();
        let mut cs = ColdStart::new();
        let labeled = HashSet::new();
        for expected in 0..FEATURE_COUNT {
            assert_eq!(cs.current_feature(), Some(UtilityFeature::all()[expected]));
            let picks = cs.next_candidates(&m, &labeled, 1).unwrap();
            assert_eq!(picks[0].index(), expected, "feature {expected}'s top view");
        }
        assert!(cs.is_exhausted());
        assert!(cs.next_candidates(&m, &labeled, 1).is_none());
        assert_eq!(cs.current_feature(), None);
    }

    #[test]
    fn skips_labeled_views() {
        let m = matrix();
        let mut cs = ColdStart::new();
        let labeled: HashSet<usize> = [0].into_iter().collect();
        // Feature 0's top view (view 0) is labeled; the probe should return
        // a different view rather than repeating it.
        let picks = cs.next_candidates(&m, &labeled, 1).unwrap();
        assert_ne!(picks[0].index(), 0);
    }

    #[test]
    fn returns_up_to_m_views() {
        let m = matrix();
        let mut cs = ColdStart::new();
        let picks = cs.next_candidates(&m, &HashSet::new(), 3).unwrap();
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0].index(), 0, "top of feature 0 first");
    }

    #[test]
    fn everything_labeled_yields_empty_batch() {
        let m = matrix();
        let mut cs = ColdStart::new();
        let labeled: HashSet<usize> = (0..FEATURE_COUNT).collect();
        let picks = cs.next_candidates(&m, &labeled, 2).unwrap();
        assert!(picks.is_empty());
    }
}
