//! Composite utility functions.
//!
//! The user's ideal utility function is an arbitrary linear combination of
//! the utility components (Eq. 4):
//!
//! ```text
//! u*() = β₁·u₁() + β₂·u₂() + … + βₙ·uₙ()
//! ```
//!
//! [`CompositeUtility`] represents such a combination over the normalized
//! feature columns; the evaluation harness instantiates the 11 simulated
//! ideal functions of Table 2 with it.

use serde::{Deserialize, Serialize};
use viewseeker_dataset::strict_sum;

use crate::features::{FeatureMatrix, UtilityFeature, FEATURE_COUNT};
use crate::view::ViewId;
use crate::CoreError;

/// A linear combination of utility features.
///
/// ```
/// use viewseeker_core::{CompositeUtility, UtilityFeature};
///
/// // Table 2's function #4: u*() = 0.5·EMD + 0.5·KL.
/// let u = CompositeUtility::new(&[
///     (UtilityFeature::Emd, 0.5),
///     (UtilityFeature::Kl, 0.5),
/// ])
/// .unwrap();
/// assert_eq!(u.component_count(), 2);
/// assert_eq!(u.name(), "0.5*EMD + 0.5*KL");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeUtility {
    /// Dense weight per feature column.
    weights: [f64; FEATURE_COUNT],
    /// Human-readable name (e.g. `"0.5*EMD + 0.5*KL"`).
    name: String,
}

impl CompositeUtility {
    /// Builds a composite from `(feature, weight)` terms.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an empty term list, a repeated
    /// feature, or a non-finite weight.
    pub fn new(terms: &[(UtilityFeature, f64)]) -> Result<Self, CoreError> {
        if terms.is_empty() {
            return Err(CoreError::Invalid(
                "composite needs at least one term".into(),
            ));
        }
        let mut weights = [0.0; FEATURE_COUNT];
        let mut seen = [false; FEATURE_COUNT];
        for (f, w) in terms {
            if !w.is_finite() {
                return Err(CoreError::Invalid(format!("non-finite weight for {f}")));
            }
            let c = f.column();
            if seen[c] {
                return Err(CoreError::Invalid(format!("feature {f} repeated")));
            }
            seen[c] = true;
            weights[c] = *w;
        }
        let name = terms
            .iter()
            .map(|(f, w)| format!("{w}*{f}"))
            .collect::<Vec<_>>()
            .join(" + ");
        Ok(Self { weights, name })
    }

    /// A single-feature utility (βᵢ = 1, all other β = 0) — the degenerate
    /// case where `u*` is one of the classic fixed utility functions.
    #[must_use]
    pub fn single(feature: UtilityFeature) -> Self {
        Self::new(&[(feature, 1.0)]).expect("single term is always valid")
    }

    /// The dense weight vector.
    #[must_use]
    pub fn weights(&self) -> &[f64; FEATURE_COUNT] {
        &self.weights
    }

    /// Number of features with non-zero weight.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Utility score of one normalized feature row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a wrong-length row.
    pub fn score(&self, normalized_features: &[f64]) -> Result<f64, CoreError> {
        if normalized_features.len() != FEATURE_COUNT {
            return Err(CoreError::Invalid(format!(
                "expected {FEATURE_COUNT} features, got {}",
                normalized_features.len()
            )));
        }
        Ok(strict_sum(
            self.weights
                .iter()
                .zip(normalized_features)
                .map(|(w, f)| w * f),
        ))
    }

    /// Raw scores of every view in the matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`CompositeUtility::score`] errors.
    pub fn scores(&self, matrix: &FeatureMatrix) -> Result<Vec<f64>, CoreError> {
        matrix.rows().iter().map(|r| self.score(r)).collect()
    }

    /// Scores scaled so the best view gets 1.0 — this is what the simulated
    /// user reports: "u*(vᵢ) = 0.7 indicates the interestingness of view vᵢ
    /// is about 70% of the maximum" (paper §4).
    ///
    /// Scores are shifted to be non-negative first, so combinations with
    /// negative weights still yield labels in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates scoring errors; returns [`CoreError::Invalid`] for an
    /// empty matrix.
    pub fn normalized_scores(&self, matrix: &FeatureMatrix) -> Result<Vec<f64>, CoreError> {
        let mut scores = self.scores(matrix)?;
        let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return Err(CoreError::Invalid(
                "cannot normalize empty score set".into(),
            ));
        }
        if min < 0.0 {
            for s in &mut scores {
                *s -= min;
            }
        }
        let max = scores.iter().copied().fold(0.0, f64::max);
        if max > 0.0 {
            for s in &mut scores {
                *s /= max;
            }
        }
        Ok(scores)
    }

    /// The ids of the top-`k` views under this utility (ties broken by id).
    ///
    /// # Errors
    ///
    /// Propagates scoring errors.
    pub fn top_k(&self, matrix: &FeatureMatrix, k: usize) -> Result<Vec<ViewId>, CoreError> {
        let scores = self.scores(matrix)?;
        let order = viewseeker_stats::rank_descending(&scores);
        // Rank indices come from the matrix and are always in range.
        Ok(order
            .into_iter()
            .take(k)
            .map(ViewId::new_unchecked)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix::new(vec![
            [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn single_feature_scores_its_column() {
        let m = matrix();
        let u = CompositeUtility::single(UtilityFeature::Kl);
        assert_eq!(u.scores(&m).unwrap(), vec![1.0, 0.0, 0.5, 0.0]);
        assert_eq!(u.component_count(), 1);
        assert_eq!(u.name(), "1*KL");
    }

    #[test]
    fn composite_weights_combine() {
        let m = matrix();
        let u = CompositeUtility::new(&[(UtilityFeature::Kl, 0.5), (UtilityFeature::Emd, 0.5)])
            .unwrap();
        let s = u.scores(&m).unwrap();
        assert_eq!(s, vec![0.5, 0.5, 0.5, 0.0]);
        assert_eq!(u.component_count(), 2);
    }

    #[test]
    fn normalized_scores_peak_at_one() {
        let m = matrix();
        let u = CompositeUtility::single(UtilityFeature::Kl);
        let s = u.normalized_scores(&m).unwrap();
        assert_eq!(s[0], 1.0);
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn negative_weights_still_normalize_into_unit_interval() {
        let m = matrix();
        let u = CompositeUtility::new(&[(UtilityFeature::Kl, 1.0), (UtilityFeature::Emd, -1.0)])
            .unwrap();
        let s = u.normalized_scores(&m).unwrap();
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(s.iter().any(|v| (*v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn top_k_orders_by_score() {
        let m = matrix();
        let u = CompositeUtility::single(UtilityFeature::Kl);
        let top = u.top_k(&m, 2).unwrap();
        assert_eq!(
            top.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn validation() {
        assert!(CompositeUtility::new(&[]).is_err());
        assert!(
            CompositeUtility::new(&[(UtilityFeature::Kl, 0.5), (UtilityFeature::Kl, 0.5)]).is_err()
        );
        assert!(CompositeUtility::new(&[(UtilityFeature::Kl, f64::NAN)]).is_err());
        let u = CompositeUtility::single(UtilityFeature::Emd);
        assert!(u.score(&[0.0; 3]).is_err());
    }
}
