//! Offline phase, stage 2: utility features.
//!
//! "We noticed that each previously proposed utility function is essentially
//! a combination of one or more 'utility components' (e.g., deviations,
//! usability, accuracy). Thus, we incorporate these components as additional
//! features of the views" (paper §3.1). The tool implements eight:
//!
//! | # | Feature  | Definition |
//! |---|----------|------------|
//! | 0 | KL       | KL divergence between target and reference distribution |
//! | 1 | EMD      | Earth Mover's Distance between them |
//! | 2 | L1       | L1 distance |
//! | 3 | L2       | L2 distance |
//! | 4 | MAX_DIFF | maximum deviation in any individual bin |
//! | 5 | Usability| visual quality via relative bin width (MuVE) |
//! | 6 | Accuracy | 1/(1+SSE) of the measure around its bin aggregate (MuVE) |
//! | 7 | P-value  | 1 − p of a χ² test of the target against the reference |
//!
//! Each feature column is min-max normalized over the view space so learned
//! weights are comparable (and so the simulated user's "fraction of the
//! maximum" feedback is well-defined).

use serde::{Deserialize, Serialize};
use viewseeker_stats::{
    chi_squared_gof, earth_movers_distance, kl_divergence, l1_distance, l2_distance, max_deviation,
    min_max_normalize,
};

use crate::viewgen::ViewData;
use crate::CoreError;

/// Number of utility features (paper Table 1: 8).
pub const FEATURE_COUNT: usize = 8;

/// The eight utility components of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilityFeature {
    /// Kullback–Leibler divergence.
    Kl,
    /// Earth Mover's Distance.
    Emd,
    /// L1 distance.
    L1,
    /// L2 distance.
    L2,
    /// Maximum per-bin deviation.
    MaxDiff,
    /// Visual usability (relative bin width).
    Usability,
    /// Accuracy (within-bin SSE, inverted).
    Accuracy,
    /// Statistical extremeness (1 − χ² p-value).
    PValue,
}

impl UtilityFeature {
    /// All eight features, in column order.
    #[must_use]
    pub fn all() -> [UtilityFeature; FEATURE_COUNT] {
        [
            UtilityFeature::Kl,
            UtilityFeature::Emd,
            UtilityFeature::L1,
            UtilityFeature::L2,
            UtilityFeature::MaxDiff,
            UtilityFeature::Usability,
            UtilityFeature::Accuracy,
            UtilityFeature::PValue,
        ]
    }

    /// This feature's column index in the feature matrix.
    #[must_use]
    pub fn column(self) -> usize {
        match self {
            UtilityFeature::Kl => 0,
            UtilityFeature::Emd => 1,
            UtilityFeature::L1 => 2,
            UtilityFeature::L2 => 3,
            UtilityFeature::MaxDiff => 4,
            UtilityFeature::Usability => 5,
            UtilityFeature::Accuracy => 6,
            UtilityFeature::PValue => 7,
        }
    }
}

impl std::fmt::Display for UtilityFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            UtilityFeature::Kl => "KL",
            UtilityFeature::Emd => "EMD",
            UtilityFeature::L1 => "L1",
            UtilityFeature::L2 => "L2",
            UtilityFeature::MaxDiff => "MAX_DIFF",
            UtilityFeature::Usability => "Usability",
            UtilityFeature::Accuracy => "Accuracy",
            UtilityFeature::PValue => "p-value",
        };
        f.write_str(name)
    }
}

/// Computes the raw (unnormalized) 8-feature vector of one materialized
/// view.
///
/// `usability_optimal_bins` is the bin count considered visually ideal; the
/// usability score is `1/(1 + |log₂(bins / optimal)|)` — a hump peaking at
/// the optimum, a monotone transform of MuVE's relative-bin-width quality.
///
/// # Errors
///
/// Propagates distance errors (never occur for a well-formed [`ViewData`],
/// whose distributions share a bin count by construction).
pub fn compute_features(
    data: &ViewData,
    usability_optimal_bins: f64,
) -> Result<[f64; FEATURE_COUNT], CoreError> {
    let t = &data.target;
    let r = &data.reference;
    let kl = kl_divergence(t, r)?;
    let emd = earth_movers_distance(t, r)?;
    let l1 = l1_distance(t, r)?;
    let l2 = l2_distance(t, r)?;
    let max_diff = max_deviation(t, r)?;

    let usability = 1.0 / (1.0 + (data.bins as f64 / usability_optimal_bins).log2().abs());
    let accuracy = 1.0 / (1.0 + data.dispersion);

    // χ²: the reference view is the null hypothesis; the observed counts are
    // the target's mass scaled to its row total. A view over an empty DQ (or
    // a degenerate test) is maximally unsurprising: p = 1, feature = 0.
    let p_value_feature = if data.target_rows == 0 {
        0.0
    } else {
        let observed: Vec<f64> = t
            .masses()
            .iter()
            .map(|m| m * data.target_rows as f64)
            .collect();
        match chi_squared_gof(&observed, &r.smoothed()) {
            Ok(result) => 1.0 - result.p_value,
            Err(_) => 0.0,
        }
    };

    Ok([
        kl,
        emd,
        l1,
        l2,
        max_diff,
        usability,
        accuracy,
        p_value_feature,
    ])
}

/// The feature matrix of a view space: one raw 8-feature row per view, plus
/// the min-max-normalized version used by the estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    raw: Vec<[f64; FEATURE_COUNT]>,
    normalized: Vec<Vec<f64>>,
}

impl FeatureMatrix {
    /// Builds the matrix from per-view raw feature vectors.
    #[must_use]
    pub fn new(raw: Vec<[f64; FEATURE_COUNT]>) -> Self {
        let mut m = Self {
            raw,
            normalized: Vec::new(),
        };
        m.renormalize();
        m
    }

    /// Builds the matrix by computing features of every materialized view.
    ///
    /// # Errors
    ///
    /// Propagates [`compute_features`] errors.
    pub fn from_views(views: &[ViewData], usability_optimal_bins: f64) -> Result<Self, CoreError> {
        let raw = views
            .iter()
            .map(|v| compute_features(v, usability_optimal_bins))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(raw))
    }

    /// Number of views (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the matrix has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The normalized feature row of view `i` (each entry in `[0, 1]`);
    /// empty for an out-of-range `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        self.normalized.get(i).map_or(&[], Vec::as_slice)
    }

    /// All normalized rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.normalized
    }

    /// The raw (unnormalized) feature row of view `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn raw_row(&self, i: usize) -> &[f64; FEATURE_COUNT] {
        &self.raw[i]
    }

    /// One normalized feature column.
    #[must_use]
    pub fn column(&self, feature: UtilityFeature) -> Vec<f64> {
        let c = feature.column();
        self.normalized.iter().map(|r| r[c]).collect()
    }

    /// Replaces the raw features of view `i` (used by incremental
    /// refinement) **without** renormalizing; call [`Self::renormalize`]
    /// after a refinement batch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownView`] for an out-of-range index.
    pub fn update_raw(
        &mut self,
        i: usize,
        features: [f64; FEATURE_COUNT],
    ) -> Result<(), CoreError> {
        let slot = self.raw.get_mut(i).ok_or(CoreError::UnknownView(i))?;
        *slot = features;
        Ok(())
    }

    /// Recomputes the min-max normalization of every column from the current
    /// raw values.
    pub fn renormalize(&mut self) {
        let n = self.raw.len();
        let mut columns: Vec<Vec<f64>> = (0..FEATURE_COUNT)
            .map(|c| {
                self.raw
                    .iter()
                    .map(|r| r.get(c).copied().unwrap_or_default())
                    .collect()
            })
            .collect();
        for col in &mut columns {
            min_max_normalize(col);
        }
        self.normalized = (0..n)
            .map(|i| {
                columns
                    .iter()
                    .map(|col| col.get(i).copied().unwrap_or_default())
                    .collect()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_stats::Distribution;

    fn view_data(target: &[f64], reference: &[f64], rows: u64, dispersion: f64) -> ViewData {
        ViewData {
            target: Distribution::from_aggregates(target).unwrap(),
            reference: Distribution::from_aggregates(reference).unwrap(),
            target_rows: rows,
            dispersion,
            bins: target.len(),
        }
    }

    #[test]
    fn identical_views_have_zero_deviation_features() {
        let vd = view_data(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 100, 0.0);
        let f = compute_features(&vd, 8.0).unwrap();
        for c in [0usize, 1, 2, 3, 4] {
            assert!(f[c].abs() < 1e-6, "deviation feature {c} should be ~0");
        }
        // Identical distributions are unsurprising under χ².
        assert!(f[7] < 0.5);
    }

    #[test]
    fn deviating_views_score_higher() {
        let flat = view_data(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], 100, 0.0);
        let skew = view_data(&[10.0, 1.0, 1.0], &[1.0, 1.0, 1.0], 100, 0.0);
        let ff = compute_features(&flat, 8.0).unwrap();
        let fs = compute_features(&skew, 8.0).unwrap();
        for c in [0usize, 1, 2, 3, 4, 7] {
            assert!(fs[c] > ff[c], "feature {c}: {} !> {}", fs[c], ff[c]);
        }
    }

    #[test]
    fn usability_peaks_at_optimal_bins() {
        let at_opt = view_data(&[1.0; 8], &[1.0; 8], 10, 0.0);
        let few = view_data(&[1.0; 2], &[1.0; 2], 10, 0.0);
        let many = view_data(&[1.0; 32], &[1.0; 32], 10, 0.0);
        let u_opt = compute_features(&at_opt, 8.0).unwrap()[5];
        let u_few = compute_features(&few, 8.0).unwrap()[5];
        let u_many = compute_features(&many, 8.0).unwrap()[5];
        assert_eq!(u_opt, 1.0);
        assert!(u_few < u_opt && u_many < u_opt);
        // Symmetric in log-space: 2 bins (÷4) and 32 bins (×4) score equally.
        assert!((u_few - u_many).abs() < 1e-12);
    }

    #[test]
    fn accuracy_decreases_with_dispersion() {
        let tight = view_data(&[1.0, 1.0], &[1.0, 1.0], 10, 0.1);
        let loose = view_data(&[1.0, 1.0], &[1.0, 1.0], 10, 10.0);
        let a_tight = compute_features(&tight, 8.0).unwrap()[6];
        let a_loose = compute_features(&loose, 8.0).unwrap()[6];
        assert!(a_tight > a_loose);
    }

    #[test]
    fn pvalue_feature_grows_with_sample_size() {
        // The same relative deviation is more surprising with more rows.
        let small = view_data(&[3.0, 1.0], &[1.0, 1.0], 20, 0.0);
        let large = view_data(&[3.0, 1.0], &[1.0, 1.0], 2_000, 0.0);
        let ps = compute_features(&small, 8.0).unwrap()[7];
        let pl = compute_features(&large, 8.0).unwrap()[7];
        assert!(pl > ps);
        assert!(pl > 0.99);
    }

    #[test]
    fn empty_target_zeroes_pvalue() {
        let vd = view_data(&[0.0, 0.0], &[1.0, 2.0], 0, 0.0);
        let f = compute_features(&vd, 8.0).unwrap();
        assert_eq!(f[7], 0.0);
    }

    #[test]
    fn matrix_normalizes_each_column_to_unit_range() {
        let raws = vec![
            [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            [1.0, 3.0, 2.0, 9.0, 8.0, 5.0, 0.0, 7.0],
            [2.0, 2.0, 2.0, 6.0, 0.0, 5.0, 3.0, 7.0],
        ];
        let m = FeatureMatrix::new(raws);
        assert_eq!(m.len(), 3);
        // Column 0 spans 0..2 → normalized 0, 0.5, 1.
        assert_eq!(m.column(UtilityFeature::Kl), vec![0.0, 0.5, 1.0]);
        // Constant columns normalize to zero.
        assert_eq!(m.column(UtilityFeature::Usability), vec![0.0, 0.0, 0.0]);
        assert_eq!(m.column(UtilityFeature::PValue), vec![0.0, 0.0, 0.0]);
        // L1 column is constant at 2.
        assert_eq!(m.column(UtilityFeature::L1), vec![0.0, 0.0, 0.0]);
        for row in m.rows() {
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn update_raw_then_renormalize() {
        let mut m = FeatureMatrix::new(vec![
            [0.0; FEATURE_COUNT],
            [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        assert_eq!(m.row(1)[0], 1.0);
        m.update_raw(0, [2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .unwrap();
        // Normalization is stale until renormalize().
        assert_eq!(m.row(1)[0], 1.0);
        m.renormalize();
        // Raw column 0 is now [2.0, 1.0] → normalized [1.0, 0.0].
        assert_eq!(m.row(0)[0], 1.0);
        assert_eq!(m.row(1)[0], 0.0);
        assert!(m.update_raw(5, [0.0; FEATURE_COUNT]).is_err());
    }

    #[test]
    fn feature_columns_are_consistent() {
        for (i, f) in UtilityFeature::all().iter().enumerate() {
            assert_eq!(f.column(), i);
        }
    }
}
