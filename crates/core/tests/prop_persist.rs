//! Property tests for session snapshots: restore must reject incompatible
//! snapshots, and a snapshot → restore round trip must reproduce the learned
//! model *bit-identically* (restore replays labels through the same
//! deterministic fitting path, so there is no tolerance to hide behind).

use proptest::prelude::*;
use viewseeker_core::features::{FeatureMatrix, FEATURE_COUNT};
use viewseeker_core::persist::SNAPSHOT_VERSION;
use viewseeker_core::{CoreError, FeedbackSession, SessionSnapshot, ViewSeekerConfig};

/// A feature matrix of `n` views plus a non-empty set of candidate labels
/// (indices may repeat; the test deduplicates before replay).
fn arb_case() -> impl Strategy<Value = (Vec<[f64; FEATURE_COUNT]>, Vec<(usize, f64)>)> {
    (8usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT), n),
            proptest::collection::vec((0..n, 0.0f64..1.0), 1..8),
        )
            .prop_map(|(rows, labels)| {
                let rows: Vec<[f64; FEATURE_COUNT]> = rows
                    .into_iter()
                    .map(|r| {
                        let mut row = [0.0; FEATURE_COUNT];
                        row.copy_from_slice(&r);
                        row
                    })
                    .collect();
                (rows, labels)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn learned_weights_round_trip_bit_identically((rows, labels) in arb_case()) {
        let matrix = FeatureMatrix::new(rows);
        let config = ViewSeekerConfig::default();
        let mut session = FeedbackSession::new(matrix.clone(), config.clone()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (index, score) in labels {
            if seen.insert(index) {
                session.submit_feedback(
                    viewseeker_core::ViewId::from_index(index),
                    score,
                ).unwrap();
            }
        }

        let json = SessionSnapshot::from_session(&session).to_json().unwrap();
        let snapshot = SessionSnapshot::from_json(&json).unwrap();
        let restored = snapshot.restore_session(matrix, config).unwrap();

        let original = session.learned_weights().expect("fitted after ≥1 label");
        let recovered = restored.learned_weights().expect("fitted after restore");
        prop_assert_eq!(original.len(), recovered.len());
        for (a, b) in original.iter().zip(recovered) {
            // Bitwise, not approximate: the JSON layer must preserve every
            // f64 exactly and the refit must be deterministic.
            prop_assert_eq!(a.to_bits(), b.to_bits(), "weight {} != {}", a, b);
        }
        // The informational weights stored in the snapshot match too.
        let stored = snapshot.learned_weights.as_deref().unwrap();
        for (a, b) in original.iter().zip(stored) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(restored.label_count(), session.label_count());
    }
}

fn small_matrix(n: usize) -> FeatureMatrix {
    FeatureMatrix::new(
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                [x, 1.0 - x, 0.5, x * x, 0.1, 0.9, x / 2.0, 0.3]
            })
            .collect(),
    )
}

#[test]
fn restore_rejects_version_mismatch() {
    let bad = SessionSnapshot {
        version: SNAPSHOT_VERSION + 1,
        view_count: 4,
        labels: vec![(0, 0.5)],
        learned_weights: None,
    };
    let json = bad.to_json().unwrap();
    match SessionSnapshot::from_json(&json) {
        Err(CoreError::Invalid(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected version rejection, got {other:?}"),
    }
}

#[test]
fn restore_rejects_view_count_mismatch() {
    let snapshot = SessionSnapshot {
        version: SNAPSHOT_VERSION,
        view_count: 11,
        labels: vec![(0, 0.5)],
        learned_weights: None,
    };
    match snapshot.restore_session(small_matrix(7), ViewSeekerConfig::default()) {
        Err(CoreError::Invalid(msg)) => {
            assert!(msg.contains("11") && msg.contains('7'), "{msg}");
        }
        other => panic!("expected view-count rejection, got {other:?}"),
    }
}
