//! Differential property tests for the zone-pruned fused executor.
//!
//! [`materialize_all_fused_pruned`] evaluates the `DQ` predicate through
//! the table's zone maps, skipping row groups the zones provably exclude.
//! Pruning is an optimization, never a semantic: against the naive oracle
//! (plain `Predicate::evaluate` + [`materialize_all`]) the pruned path
//! must produce the **same `DQ` row set** and — on exactly-representable
//! measure values, where f64 addition cannot round — **bit-identical
//! views**, for every row-group size and every thread count. The scan
//! statistics must also account for every row group exactly once
//! (`scanned + pruned = groups`), so the server's pruning-rate metrics
//! can be trusted.

use proptest::prelude::*;
use viewseeker_core::viewgen::{materialize_all, materialize_all_fused_pruned};
use viewseeker_core::ViewSpace;
use viewseeker_dataset::{Column, Predicate, Schema, Table, ZoneMaps};

/// A random table with one categorical dimension, one numeric dimension,
/// and one measure whose values are integer-valued f64s (exact under
/// accumulation, so oracle comparisons are bit-level).
fn arb_exact_table() -> impl Strategy<Value = Table> {
    (1usize..2600).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec(-50.0f64..50.0, n),
            proptest::collection::vec(-8i32..9, n),
        )
            .prop_map(|(cats, dims, measures)| {
                build_table(cats, dims, measures.into_iter().map(f64::from).collect())
            })
    })
}

fn build_table(cats: Vec<u32>, dims: Vec<f64>, measures: Vec<f64>) -> Table {
    let schema = Schema::builder()
        .categorical_dimension("c")
        .numeric_dimension("n_d")
        .measure("m")
        .build()
        .unwrap();
    let labels = vec!["x".into(), "y".into(), "z".into()];
    Table::new(
        schema,
        vec![
            Column::categorical_from_codes(cats, labels).unwrap(),
            Column::numeric(dims),
            Column::numeric(measures),
        ],
    )
    .unwrap()
}

/// A random target predicate; every variant can select an empty, partial,
/// or full row set depending on the data, and the `c`/`n_d` variants are
/// exactly the shapes zone maps can prune on.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..5, -50.0f64..50.0).prop_map(|(choice, lo)| match choice {
        0 => Predicate::True,
        1 => Predicate::eq("c", "x"),
        2 => Predicate::eq("c", "y"),
        3 => Predicate::range("n_d", lo, lo + 40.0),
        _ => Predicate::Not(Box::new(Predicate::eq("c", "z"))),
    })
}

/// The pruned path against the naive oracle, across row-group sizes and
/// thread counts.
fn check_pruned_matches_naive_oracle(table: &Table, predicate: &Predicate, group_rows: usize) {
    let dq = predicate.evaluate(table).unwrap();
    let dr = table.all_rows();
    let space = ViewSpace::enumerate(table, &[2, 3]).unwrap();
    let naive = materialize_all(table, &dq, &dr, &space, 1).unwrap();
    let zones = ZoneMaps::build(table, group_rows);
    let n_groups = zones.groups.len() as u64;
    for threads in [1usize, 2, 8] {
        let (views, pruned_dq, stats, _retained) =
            materialize_all_fused_pruned(table, &zones, predicate, &space, threads).unwrap();
        assert_eq!(
            pruned_dq.ids(),
            dq.ids(),
            "zone-pruned DQ evaluation diverged (threads={threads}, group_rows={group_rows})"
        );
        assert_eq!(
            naive, views,
            "pruned views diverged from the naive oracle (threads={threads}, group_rows={group_rows})"
        );
        assert_eq!(
            stats.rowgroups_scanned + stats.rowgroups_pruned,
            n_groups,
            "scan stats lost a row group (threads={threads}, group_rows={group_rows})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruned_executor_matches_naive_oracle_at_every_thread_count(
        table in arb_exact_table(),
        predicate in arb_predicate(),
        group_rows in 1usize..700,
    ) {
        check_pruned_matches_naive_oracle(&table, &predicate, group_rows);
    }
}

/// On data sorted by the predicate column, a selective range predicate
/// must actually skip row groups — the stats are not allowed to claim a
/// full scan. (Random data cannot guarantee pruning; sorted data can.)
#[test]
fn selective_predicate_on_sorted_data_prunes_rowgroups() {
    let n = 4096;
    let cats = (0..n).map(|i| (i % 3) as u32).collect();
    let dims: Vec<f64> = (0..n).map(|i| i as f64).collect(); // sorted
    let measures = (0..n).map(|i| f64::from(i % 17)).collect();
    let table = build_table(cats, dims, measures);
    let zones = ZoneMaps::build(&table, 256);
    let predicate = Predicate::range("n_d", 0.0, 500.0);
    let space = ViewSpace::enumerate(&table, &[2, 3]).unwrap();
    let (_, dq, stats, _) =
        materialize_all_fused_pruned(&table, &zones, &predicate, &space, 2).unwrap();
    assert_eq!(dq.ids(), predicate.evaluate(&table).unwrap().ids());
    assert!(
        stats.rowgroups_pruned > 0,
        "sorted data with a selective range predicate must prune: {stats:?}"
    );
    assert!(stats.rowgroups_scanned < zones.groups.len() as u64);
}
