//! Differential property tests for the three materialization executors.
//!
//! The fused executor's correctness argument has two halves, and each half
//! gets its own property:
//!
//! 1. **Exactness against the oracles.** On measure values that are exactly
//!    representable (integers), f64 addition never rounds, so accumulation
//!    order cannot matter and the fused executor must match
//!    [`materialize_all`] and [`materialize_all_shared`] *bit-identically*
//!    — counts, sums, averages, mins, maxs, and dispersion — at every
//!    thread count. Negative and zero measures are included deliberately:
//!    sums that cancel to zero and min/max over negatives are where sign
//!    and identity-element bugs hide.
//! 2. **Thread invariance on arbitrary floats.** On continuous measures the
//!    oracles and the fused path may differ by final-ULP rounding (the
//!    partition merge reassociates sums), but the fused executor itself is
//!    required to be bit-identical for *any* thread count, because its
//!    partition grid depends only on the data.

use proptest::prelude::*;
use viewseeker_core::viewgen::{materialize_all, materialize_all_fused, materialize_all_shared};
use viewseeker_core::ViewSpace;
use viewseeker_dataset::{Column, Predicate, Schema, Table};

/// A random table with one categorical dimension, one numeric dimension,
/// and one measure whose values are integer-valued f64s in [-8, 8]. Row
/// counts straddle the executor's 1024-row partition size so both the
/// single-partition and the multi-partition merge paths are exercised.
fn arb_exact_table() -> impl Strategy<Value = Table> {
    (1usize..2600).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec(-50.0f64..50.0, n),
            proptest::collection::vec(-8i32..9, n),
        )
            .prop_map(|(cats, dims, measures)| {
                build_table(cats, dims, measures.into_iter().map(f64::from).collect())
            })
    })
}

/// Like [`arb_exact_table`] but with continuous measure values, where only
/// thread invariance (not oracle bit-identity) is guaranteed.
fn arb_float_table() -> impl Strategy<Value = Table> {
    (1usize..2600).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec(-50.0f64..50.0, n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(|(cats, dims, measures)| build_table(cats, dims, measures))
    })
}

fn build_table(cats: Vec<u32>, dims: Vec<f64>, measures: Vec<f64>) -> Table {
    let schema = Schema::builder()
        .categorical_dimension("c")
        .numeric_dimension("n_d")
        .measure("m")
        .build()
        .unwrap();
    let labels = vec!["x".into(), "y".into(), "z".into()];
    Table::new(
        schema,
        vec![
            Column::categorical_from_codes(cats, labels).unwrap(),
            Column::numeric(dims),
            Column::numeric(measures),
        ],
    )
    .unwrap()
}

/// A random target predicate; every variant can select an empty, partial,
/// or full row set depending on the data.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..5, -50.0f64..50.0).prop_map(|(choice, lo)| match choice {
        0 => Predicate::True,
        1 => Predicate::eq("c", "x"),
        2 => Predicate::eq("c", "y"),
        3 => Predicate::range("n_d", lo, lo + 40.0),
        _ => Predicate::Not(Box::new(Predicate::eq("c", "z"))),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_three_executors_agree_bit_identically_on_exact_values(
        table in arb_exact_table(),
        predicate in arb_predicate(),
    ) {
        let dq = predicate.evaluate(&table).unwrap();
        let dr = table.all_rows();
        let space = ViewSpace::enumerate(&table, &[2, 3]).unwrap();
        let naive = materialize_all(&table, &dq, &dr, &space, 1).unwrap();
        let shared = materialize_all_shared(&table, &dq, &dr, &space, 1).unwrap();
        prop_assert_eq!(&naive, &shared);
        for threads in [1usize, 2, 8] {
            let fused = materialize_all_fused(&table, &dq, &dr, &space, threads).unwrap();
            prop_assert_eq!(&naive, &fused, "fused(threads={}) diverged", threads);
        }
    }

    #[test]
    fn fused_is_thread_invariant_on_arbitrary_floats(
        table in arb_float_table(),
        predicate in arb_predicate(),
    ) {
        let dq = predicate.evaluate(&table).unwrap();
        let dr = table.all_rows();
        let space = ViewSpace::enumerate(&table, &[2, 3]).unwrap();
        let serial = materialize_all_fused(&table, &dq, &dr, &space, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = materialize_all_fused(&table, &dq, &dr, &space, threads).unwrap();
            prop_assert_eq!(&serial, &parallel, "threads={} diverged", threads);
        }
    }
}
