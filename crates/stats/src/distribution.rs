//! Normalized probability distributions over histogram bins.
//!
//! The paper represents every target and reference view as a probability
//! distribution obtained by dividing each bin's aggregate value by the sum of
//! all bins (Eq. 5):
//!
//! ```text
//! P(vᵢ) = ⟨g₁/G, g₂/G, …, g_b/G⟩,   G = Σ gᵢ
//! ```
//!
//! [`Distribution::from_aggregates`] implements that normalization with two
//! practical extensions needed for a robust system:
//!
//! * aggregates that can be negative (e.g. `MIN` over a signed measure) are
//!   shifted so the minimum bin is zero before normalizing — deviation is a
//!   comparison of *shapes*, which shifting preserves;
//! * a view whose bins are all zero (empty groups) degrades to the uniform
//!   distribution rather than a 0/0.

use crate::StatsError;

/// Mass added to every bin by [`Distribution::smoothed`]; chosen small enough
/// not to disturb rankings yet large enough to keep `ln` finite in `f64`.
pub const SMOOTHING_EPS: f64 = 1e-9;

/// A normalized probability distribution over a fixed number of bins.
///
/// Invariants (upheld by every constructor and checked by the test suite):
/// * at least one bin;
/// * every mass is finite and non-negative;
/// * masses sum to 1 within floating-point tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    masses: Vec<f64>,
}

impl Distribution {
    /// Normalizes raw per-bin aggregate values into a probability
    /// distribution (Eq. 5 of the paper).
    ///
    /// Negative aggregates are shifted up so the minimum becomes zero; a
    /// zero-total histogram becomes uniform.
    ///
    /// ```
    /// use viewseeker_stats::Distribution;
    ///
    /// let d = Distribution::from_aggregates(&[30.0, 10.0]).unwrap();
    /// assert_eq!(d.masses(), &[0.75, 0.25]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidDistribution`] if `aggregates` is empty
    /// or contains a non-finite value.
    pub fn from_aggregates(aggregates: &[f64]) -> Result<Self, StatsError> {
        if aggregates.is_empty() {
            return Err(StatsError::InvalidDistribution(
                "cannot build a distribution from zero bins".into(),
            ));
        }
        if let Some(bad) = aggregates.iter().find(|v| !v.is_finite()) {
            return Err(StatsError::InvalidDistribution(format!(
                "non-finite aggregate value {bad}"
            )));
        }
        let min = aggregates.iter().copied().fold(f64::INFINITY, f64::min);
        let shift = if min < 0.0 { -min } else { 0.0 };
        let shifted: Vec<f64> = aggregates.iter().map(|v| v + shift).collect();
        let total: f64 = shifted.iter().sum();
        let masses = if total <= 0.0 {
            vec![1.0 / aggregates.len() as f64; aggregates.len()]
        } else {
            shifted.iter().map(|v| v / total).collect()
        };
        Ok(Self { masses })
    }

    /// Builds a distribution directly from masses that are already
    /// normalized.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidDistribution`] unless the masses are
    /// non-empty, non-negative, finite, and sum to 1 within `1e-6`.
    pub fn from_masses(masses: Vec<f64>) -> Result<Self, StatsError> {
        if masses.is_empty() {
            return Err(StatsError::InvalidDistribution("no bins".into()));
        }
        if masses.iter().any(|m| !m.is_finite() || *m < 0.0) {
            return Err(StatsError::InvalidDistribution(
                "masses must be finite and non-negative".into(),
            ));
        }
        let total: f64 = masses.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(StatsError::InvalidDistribution(format!(
                "masses sum to {total}, expected 1"
            )));
        }
        Ok(Self { masses })
    }

    /// The uniform distribution over `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn uniform(bins: usize) -> Self {
        assert!(bins > 0, "uniform distribution needs at least one bin");
        Self {
            masses: vec![1.0 / bins as f64; bins],
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.masses.len()
    }

    /// Whether the distribution has zero bins (never true for a constructed
    /// value; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.masses.is_empty()
    }

    /// The per-bin probability masses.
    #[must_use]
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Probability mass of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn mass(&self, i: usize) -> f64 {
        self.masses[i]
    }

    /// Returns a copy with [`SMOOTHING_EPS`] added to every bin and the
    /// result renormalized, guaranteeing full support (needed before KL
    /// divergence).
    #[must_use]
    pub fn smoothed(&self) -> Self {
        let total: f64 = self.masses.iter().map(|m| m + SMOOTHING_EPS).sum();
        Self {
            masses: self
                .masses
                .iter()
                .map(|m| (m + SMOOTHING_EPS) / total)
                .collect(),
        }
    }

    /// Cumulative distribution function as a vector; the final entry is 1
    /// within floating-point tolerance.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.masses
            .iter()
            .map(|m| {
                acc += m;
                acc
            })
            .collect()
    }

    /// Shannon entropy in nats.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        self.masses
            .iter()
            .filter(|m| **m > 0.0)
            .map(|m| -m * m.ln())
            .sum()
    }

    /// Index of the most probable bin (first one in case of ties).
    #[must_use]
    pub fn mode(&self) -> usize {
        let mut best = 0;
        for (i, m) in self.masses.iter().enumerate() {
            if *m > self.masses[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_simple_counts() {
        let d = Distribution::from_aggregates(&[1.0, 3.0]).unwrap();
        assert_eq!(d.masses(), &[0.25, 0.75]);
    }

    #[test]
    fn zero_total_becomes_uniform() {
        let d = Distribution::from_aggregates(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(d.masses(), &[0.25; 4]);
    }

    #[test]
    fn negative_values_are_shifted_not_clamped() {
        let d = Distribution::from_aggregates(&[-2.0, 0.0, 2.0]).unwrap();
        // shifted to [0, 2, 4] -> total 6
        assert!((d.mass(0) - 0.0).abs() < 1e-12);
        assert!((d.mass(1) - 2.0 / 6.0).abs() < 1e-12);
        assert!((d.mass(2) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_negative_preserves_shape() {
        let d = Distribution::from_aggregates(&[-4.0, -1.0]).unwrap();
        // shifted to [0, 3]
        assert!((d.mass(0) - 0.0).abs() < 1e-12);
        assert!((d.mass(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(
            Distribution::from_aggregates(&[]),
            Err(StatsError::InvalidDistribution(_))
        ));
    }

    #[test]
    fn non_finite_is_rejected() {
        assert!(Distribution::from_aggregates(&[1.0, f64::NAN]).is_err());
        assert!(Distribution::from_aggregates(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn from_masses_validates_sum() {
        assert!(Distribution::from_masses(vec![0.5, 0.4]).is_err());
        assert!(Distribution::from_masses(vec![0.5, 0.5]).is_ok());
        assert!(Distribution::from_masses(vec![]).is_err());
        assert!(Distribution::from_masses(vec![1.5, -0.5]).is_err());
    }

    #[test]
    fn smoothing_gives_full_support_and_sums_to_one() {
        let d = Distribution::from_aggregates(&[0.0, 1.0]).unwrap();
        let s = d.smoothed();
        assert!(s.masses().iter().all(|m| *m > 0.0));
        assert!((s.masses().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let d = Distribution::from_aggregates(&[2.0, 1.0, 1.0]).unwrap();
        let cdf = d.cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_is_ln_n() {
        let d = Distribution::uniform(8);
        assert!((d.entropy() - (8.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let d = Distribution::from_aggregates(&[0.0, 5.0, 0.0]).unwrap();
        assert!(d.entropy().abs() < 1e-12);
    }

    #[test]
    fn mode_picks_heaviest_bin() {
        let d = Distribution::from_aggregates(&[1.0, 5.0, 3.0]).unwrap();
        assert_eq!(d.mode(), 1);
    }
}
