//! Statistical substrate for ViewSeeker.
//!
//! This crate provides the numerical machinery behind the paper's utility
//! components:
//!
//! * [`distribution`] — turning aggregate histograms into normalized
//!   probability distributions (Eq. 5 of the paper), with ε-smoothing where a
//!   divergence requires full support.
//! * [`distance`] — the deviation measures used as utility features:
//!   Kullback–Leibler divergence, Earth Mover's Distance for 1-D histograms,
//!   L1, L2 and maximum per-bin deviation.
//! * [`special`] — special functions (log-gamma, regularized incomplete
//!   gamma) needed by the χ² test.
//! * [`chisq`] — χ² goodness-of-fit statistic and p-value, backing the
//!   paper's p-value utility component (after Tang et al., SIGMOD'17).
//! * [`summary`] — summary statistics and normalization helpers.
//!
//! Everything is implemented from scratch; there are no third-party numeric
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chisq;
pub mod distance;
pub mod distribution;
pub mod special;
pub mod summary;

pub use chisq::{chi_squared_gof, chi_squared_pvalue, ChiSquaredResult};
pub use distance::{
    earth_movers_distance, kl_divergence, l1_distance, l2_distance, max_deviation, Distance,
};
pub use distribution::Distribution;
pub use summary::{
    mean, min_max_normalize, population_variance, rank_descending, sum_squared_error,
};

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// An operation required two distributions of identical bin count.
    LengthMismatch {
        /// Bin count of the left operand.
        left: usize,
        /// Bin count of the right operand.
        right: usize,
    },
    /// A distribution could not be constructed (empty input or invalid mass).
    InvalidDistribution(String),
    /// A test statistic was requested with invalid degrees of freedom.
    InvalidDegreesOfFreedom(usize),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::LengthMismatch { left, right } => {
                write!(f, "distribution length mismatch: {left} vs {right}")
            }
            StatsError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            StatsError::InvalidDegreesOfFreedom(df) => {
                write!(f, "invalid degrees of freedom: {df}")
            }
        }
    }
}

impl std::error::Error for StatsError {}
