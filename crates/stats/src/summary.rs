//! Summary statistics and normalization helpers.
//!
//! These back two parts of the system:
//!
//! * the *accuracy* utility component (MuVE-style within-bin SSE) uses
//!   [`sum_squared_error`];
//! * the feature matrix is min-max normalized per column with
//!   [`min_max_normalize`] so that learned weights are comparable across
//!   utility components and so simulated feedback ("70% of the maximum") is
//!   well-defined.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance (divides by `n`); `0.0` for an empty slice.
#[must_use]
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Sum of squared error of `values` around `center`.
#[must_use]
pub fn sum_squared_error(values: &[f64], center: f64) -> f64 {
    values.iter().map(|v| (v - center) * (v - center)).sum()
}

/// Min-max normalizes `values` into `[0, 1]` in place.
///
/// A constant column (max == min) maps to all zeros — such a feature carries
/// no ranking information, and zero keeps it inert in a linear model.
pub fn min_max_normalize(values: &mut [f64]) {
    let Some(&first) = values.first() else {
        return;
    };
    let (mut lo, mut hi) = (first, first);
    for &v in values.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if range <= 0.0 {
        values.fill(0.0);
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - lo) / range;
    }
}

/// Returns the indices of `values` sorted by descending value, ties broken by
/// ascending index (a stable, deterministic ranking used throughout the view
/// rankers).
#[must_use]
pub fn rank_descending(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(population_variance(&[2.0, 4.0]), 1.0);
        assert_eq!(population_variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn sse_around_mean_is_n_times_variance() {
        let vals = [1.0, 2.0, 3.0, 10.0];
        let sse = sum_squared_error(&vals, mean(&vals));
        assert!((sse - 4.0 * population_variance(&vals)).abs() < 1e-12);
    }

    #[test]
    fn min_max_normalize_maps_to_unit_interval() {
        let mut v = [10.0, 20.0, 15.0];
        min_max_normalize(&mut v);
        assert_eq!(v, [0.0, 1.0, 0.5]);
    }

    #[test]
    fn min_max_normalize_constant_column_is_zeroed() {
        let mut v = [7.0, 7.0, 7.0];
        min_max_normalize(&mut v);
        assert_eq!(v, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_normalize_empty_is_noop() {
        let mut v: [f64; 0] = [];
        min_max_normalize(&mut v);
    }

    #[test]
    fn rank_descending_orders_and_breaks_ties_stably() {
        let v = [0.3, 0.9, 0.3, 1.0];
        assert_eq!(rank_descending(&v), vec![3, 1, 0, 2]);
    }

    #[test]
    fn rank_descending_handles_nan_without_panicking() {
        let v = [0.3, f64::NAN, 0.5];
        let r = rank_descending(&v);
        assert_eq!(r.len(), 3);
    }
}
