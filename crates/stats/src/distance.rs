//! Deviation measures between two view distributions.
//!
//! The paper's deviation-based utility components (§3.1) compare the target
//! view's distribution `P(vᵀ)` against the reference view's `P(vᴿ)` using a
//! distance over probability distributions (Eq. 2). Five are implemented:
//!
//! * [`kl_divergence`] — Kullback–Leibler divergence ("sum of deviation in
//!   individual bins", per the paper's characterization),
//! * [`earth_movers_distance`] — 1-D EMD ("deviation across bins"),
//! * [`l1_distance`], [`l2_distance`] — Minkowski distances,
//! * [`max_deviation`] — the maximum deviation in any individual bin.

use crate::distribution::Distribution;
use crate::StatsError;

/// A distance measure between two equal-length distributions.
///
/// All measures return `Ok(0.0)` for identical inputs and a finite
/// non-negative value otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Kullback–Leibler divergence (ε-smoothed).
    KullbackLeibler,
    /// Earth Mover's Distance over ordered bins.
    EarthMovers,
    /// L1 (Manhattan) distance.
    L1,
    /// L2 (Euclidean) distance.
    L2,
    /// Maximum per-bin absolute deviation (L∞).
    MaxDeviation,
}

impl Distance {
    /// Evaluates this distance between `p` and `q`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] if the distributions have
    /// different bin counts.
    pub fn eval(self, p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
        match self {
            Distance::KullbackLeibler => kl_divergence(p, q),
            Distance::EarthMovers => earth_movers_distance(p, q),
            Distance::L1 => l1_distance(p, q),
            Distance::L2 => l2_distance(p, q),
            Distance::MaxDeviation => max_deviation(p, q),
        }
    }

    /// All distance measures, in the order the paper lists them.
    #[must_use]
    pub fn all() -> [Distance; 5] {
        [
            Distance::KullbackLeibler,
            Distance::EarthMovers,
            Distance::L1,
            Distance::L2,
            Distance::MaxDeviation,
        ]
    }
}

impl std::fmt::Display for Distance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Distance::KullbackLeibler => "KL",
            Distance::EarthMovers => "EMD",
            Distance::L1 => "L1",
            Distance::L2 => "L2",
            Distance::MaxDeviation => "MAX_DIFF",
        };
        f.write_str(name)
    }
}

fn check_lengths(p: &Distribution, q: &Distribution) -> Result<(), StatsError> {
    if p.len() != q.len() {
        return Err(StatsError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    Ok(())
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats.
///
/// Both inputs are ε-smoothed first so the divergence is always finite —
/// aggregate views routinely contain empty bins.
///
/// ```
/// use viewseeker_stats::{kl_divergence, Distribution};
///
/// let skewed = Distribution::from_aggregates(&[9.0, 1.0]).unwrap();
/// let flat = Distribution::from_aggregates(&[5.0, 5.0]).unwrap();
/// assert!(kl_divergence(&skewed, &flat).unwrap() > 0.0);
/// assert!(kl_divergence(&flat, &flat).unwrap() < 1e-9);
/// ```
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] on differing bin counts.
pub fn kl_divergence(p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
    check_lengths(p, q)?;
    let ps = p.smoothed();
    let qs = q.smoothed();
    let mut kl = 0.0;
    for (pi, qi) in ps.masses().iter().zip(qs.masses()) {
        kl += pi * (pi / qi).ln();
    }
    // Numerical round-off can produce a tiny negative value for p == q.
    Ok(kl.max(0.0))
}

/// Earth Mover's Distance between two histograms over the *same ordered
/// bins*.
///
/// For 1-D histograms with unit ground distance between adjacent bins, EMD
/// has the closed form `Σᵢ |CDF_p(i) − CDF_q(i)|`.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] on differing bin counts.
pub fn earth_movers_distance(p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
    check_lengths(p, q)?;
    let mut carried = 0.0;
    let mut emd = 0.0;
    for (pi, qi) in p.masses().iter().zip(q.masses()) {
        carried += pi - qi;
        emd += carried.abs();
    }
    Ok(emd)
}

/// L1 (Manhattan) distance `Σ |pᵢ − qᵢ|`.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] on differing bin counts.
pub fn l1_distance(p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
    check_lengths(p, q)?;
    Ok(p.masses()
        .iter()
        .zip(q.masses())
        .map(|(a, b)| (a - b).abs())
        .sum())
}

/// L2 (Euclidean) distance `√Σ (pᵢ − qᵢ)²`.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] on differing bin counts.
pub fn l2_distance(p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
    check_lengths(p, q)?;
    Ok(p.masses()
        .iter()
        .zip(q.masses())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt())
}

/// Maximum absolute deviation in any individual bin (L∞ distance).
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] on differing bin counts.
pub fn max_deviation(p: &Distribution, q: &Distribution) -> Result<f64, StatsError> {
    check_lengths(p, q)?;
    Ok(p.masses()
        .iter()
        .zip(q.masses())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(vals: &[f64]) -> Distribution {
        Distribution::from_aggregates(vals).unwrap()
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = dist(&[1.0, 2.0, 3.0]);
        for d in Distance::all() {
            assert!(
                d.eval(&p, &p).unwrap().abs() < 1e-9,
                "{d} of identical distributions should be ~0"
            );
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let p = dist(&[1.0, 2.0]);
        let q = dist(&[1.0, 2.0, 3.0]);
        for d in Distance::all() {
            assert!(matches!(
                d.eval(&p, &q),
                Err(StatsError::LengthMismatch { left: 2, right: 3 })
            ));
        }
    }

    #[test]
    fn l1_of_disjoint_point_masses_is_two() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        assert!((l1_distance(&p, &q).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        assert!((l2_distance(&p, &q).unwrap() - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_deviation_is_largest_gap() {
        let p = dist(&[4.0, 4.0, 2.0]);
        let q = dist(&[1.0, 4.0, 5.0]);
        let expected = (0.4f64 - 0.1).abs();
        assert!((max_deviation(&p, &q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn emd_moves_mass_across_bins() {
        // All mass in bin 0 vs all in bin 2 of a 3-bin histogram: move 1 unit
        // of mass a distance of 2 bins => EMD = 2.
        let p = dist(&[1.0, 0.0, 0.0]);
        let q = dist(&[0.0, 0.0, 1.0]);
        assert!((earth_movers_distance(&p, &q).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let p = dist(&[3.0, 1.0, 2.0, 4.0]);
        let q = dist(&[1.0, 1.0, 5.0, 1.0]);
        let a = earth_movers_distance(&p, &q).unwrap();
        let b = earth_movers_distance(&q, &p).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric_in_general() {
        let p = dist(&[9.0, 1.0]);
        let q = dist(&[5.0, 5.0]);
        let pq = kl_divergence(&p, &q).unwrap();
        let qp = kl_divergence(&q, &p).unwrap();
        assert!(pq > 0.0 && qp > 0.0);
        assert!((pq - qp).abs() > 1e-6);
    }

    #[test]
    fn kl_is_finite_with_empty_bins() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        let kl = kl_divergence(&p, &q).unwrap();
        assert!(kl.is_finite() && kl > 0.0);
    }

    #[test]
    fn kl_matches_closed_form_on_full_support() {
        let p = dist(&[3.0, 1.0]);
        let q = dist(&[1.0, 1.0]);
        // KL = 0.75 ln(0.75/0.5) + 0.25 ln(0.25/0.5), smoothing is ~1e-9 so
        // tolerance 1e-6 absorbs it.
        let expected = 0.75 * (0.75f64 / 0.5).ln() + 0.25 * (0.25f64 / 0.5).ln();
        assert!((kl_divergence(&p, &q).unwrap() - expected).abs() < 1e-6);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Distance::KullbackLeibler.to_string(), "KL");
        assert_eq!(Distance::EarthMovers.to_string(), "EMD");
        assert_eq!(Distance::MaxDeviation.to_string(), "MAX_DIFF");
    }
}
