//! χ² goodness-of-fit test.
//!
//! The paper's p-value utility component (after Tang et al., "Extracting
//! Top-K Insights from Multi-dimensional Data", SIGMOD'17) treats the
//! *reference view* as the null hypothesis and asks how extreme the *target
//! view* is under it: a smaller p-value means a more interesting view.
//!
//! [`chi_squared_gof`] computes the Pearson statistic of observed bin counts
//! against expected counts derived from the null distribution, and converts
//! it to a p-value through the regularized incomplete gamma function
//! (`p = Q(df/2, X²/2)`).

use crate::distribution::Distribution;
use crate::special::regularized_gamma_q;
use crate::StatsError;

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquaredResult {
    /// The Pearson χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (bins with non-zero expectation − 1).
    pub degrees_of_freedom: usize,
    /// The upper-tail p-value `P(χ²_df ≥ statistic)`.
    pub p_value: f64,
}

/// χ² goodness-of-fit of observed counts against a null distribution.
///
/// `observed` are raw (unnormalized) counts per bin; `null` is the
/// hypothesized distribution over the same bins. Bins whose expected count is
/// zero are excluded from both the statistic and the degrees of freedom (the
/// standard practical convention).
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if lengths differ.
/// * [`StatsError::InvalidDegreesOfFreedom`] if fewer than two bins carry
///   expected mass (the test is undefined).
/// * [`StatsError::InvalidDistribution`] if `observed` contains a negative or
///   non-finite count or sums to zero.
pub fn chi_squared_gof(
    observed: &[f64],
    null: &Distribution,
) -> Result<ChiSquaredResult, StatsError> {
    if observed.len() != null.len() {
        return Err(StatsError::LengthMismatch {
            left: observed.len(),
            right: null.len(),
        });
    }
    if observed.iter().any(|o| !o.is_finite() || *o < 0.0) {
        return Err(StatsError::InvalidDistribution(
            "observed counts must be finite and non-negative".into(),
        ));
    }
    let total: f64 = observed.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::InvalidDistribution(
            "observed counts sum to zero".into(),
        ));
    }

    let mut statistic = 0.0;
    let mut live_bins = 0usize;
    for (o, pi) in observed.iter().zip(null.masses()) {
        let expected = pi * total;
        if expected > 0.0 {
            live_bins += 1;
            let diff = o - expected;
            statistic += diff * diff / expected;
        }
    }
    if live_bins < 2 {
        return Err(StatsError::InvalidDegreesOfFreedom(live_bins));
    }
    let df = live_bins - 1;
    Ok(ChiSquaredResult {
        statistic,
        degrees_of_freedom: df,
        p_value: chi_squared_pvalue(statistic, df)?,
    })
}

/// Upper-tail p-value of the χ² distribution with `df` degrees of freedom.
///
/// # Errors
///
/// Returns [`StatsError::InvalidDegreesOfFreedom`] if `df == 0`.
pub fn chi_squared_pvalue(statistic: f64, df: usize) -> Result<f64, StatsError> {
    if df == 0 {
        return Err(StatsError::InvalidDegreesOfFreedom(0));
    }
    let statistic = statistic.max(0.0);
    Ok(regularized_gamma_q(df as f64 / 2.0, statistic / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Distribution {
        Distribution::uniform(n)
    }

    #[test]
    fn perfect_fit_has_pvalue_one() {
        let null = uniform(4);
        let observed = [25.0, 25.0, 25.0, 25.0];
        let r = chi_squared_gof(&observed, &null).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert_eq!(r.degrees_of_freedom, 3);
    }

    #[test]
    fn known_textbook_example() {
        // Classic die example: 120 rolls, observed [20,22,17,18,19,24].
        let null = uniform(6);
        let observed = [20.0, 22.0, 17.0, 18.0, 19.0, 24.0];
        let r = chi_squared_gof(&observed, &null).unwrap();
        let expected_stat = [20.0f64, 22.0, 17.0, 18.0, 19.0, 24.0]
            .iter()
            .map(|o| (o - 20.0) * (o - 20.0) / 20.0)
            .sum::<f64>();
        assert!((r.statistic - expected_stat).abs() < 1e-12);
        // statistic = 1.7, df = 5 → p ≈ 0.8889
        assert!((r.p_value - 0.888_9).abs() < 1e-3);
    }

    #[test]
    fn extreme_deviation_gives_tiny_pvalue() {
        let null = uniform(2);
        let observed = [1000.0, 0.0];
        let r = chi_squared_gof(&observed, &null).unwrap();
        assert!(r.p_value < 1e-12);
    }

    #[test]
    fn zero_expected_bins_are_dropped() {
        let null = Distribution::from_masses(vec![0.5, 0.5, 0.0]).unwrap();
        let observed = [10.0, 10.0, 0.0];
        let r = chi_squared_gof(&observed, &null).unwrap();
        assert_eq!(r.degrees_of_freedom, 1);
        assert!(r.statistic.abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        let null = uniform(3);
        assert!(matches!(
            chi_squared_gof(&[1.0, 2.0], &null),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_total_rejected() {
        let null = uniform(2);
        assert!(chi_squared_gof(&[0.0, 0.0], &null).is_err());
    }

    #[test]
    fn negative_count_rejected() {
        let null = uniform(2);
        assert!(chi_squared_gof(&[-1.0, 3.0], &null).is_err());
    }

    #[test]
    fn single_live_bin_rejected() {
        let null = Distribution::from_masses(vec![1.0, 0.0]).unwrap();
        assert!(matches!(
            chi_squared_gof(&[5.0, 0.0], &null),
            Err(StatsError::InvalidDegreesOfFreedom(1))
        ));
    }

    #[test]
    fn pvalue_monotone_in_statistic() {
        let mut prev = 1.0;
        for i in 0..50 {
            let p = chi_squared_pvalue(i as f64 * 0.5, 4).unwrap();
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn zero_df_rejected() {
        assert!(chi_squared_pvalue(1.0, 0).is_err());
    }
}
