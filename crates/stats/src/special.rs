//! Special functions needed by the statistical tests.
//!
//! Hand-rolled implementations (no external numerics crates) of:
//!
//! * [`ln_gamma`] — natural log of the gamma function via the Lanczos
//!   approximation (g = 7, n = 9 coefficients), accurate to ~1e-13 over the
//!   positive reals;
//! * [`regularized_gamma_p`] / [`regularized_gamma_q`] — the regularized
//!   lower/upper incomplete gamma functions `P(a, x)` and `Q(a, x)`, computed
//!   by the classic series / continued-fraction split (Numerical Recipes
//!   §6.2). These give the χ² CDF directly: `CDF_{χ²_k}(x) = P(k/2, x/2)`.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` after reflection is impossible
/// (i.e. `x` is a non-positive integer).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma requires a finite argument");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx)
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x != 0.0,
            "ln_gamma is undefined at non-positive integers"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

const GAMMA_EPS: f64 = 1e-14;
const GAMMA_MAX_ITER: usize = 500;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`, monotone increasing in `x`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_p requires a > 0");
    assert!(x >= 0.0, "regularized_gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_q requires a > 0");
    assert!(x >= 0.0, "regularized_gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series expansion of P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

/// Continued-fraction (Lentz) evaluation of Q(a, x), convergent for
/// x >= a + 1.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let cases = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (6.0, 120.0),
            (11.0, 3_628_800.0),
        ];
        for (x, fact) in cases {
            let expected = f64::ln(fact);
            assert!(
                (ln_gamma(x) - expected).abs() < 1e-10,
                "ln_gamma({x}) = {}, expected {expected}",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half_is_ln_sqrt_pi() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908
        assert!((ln_gamma(0.25) - 3.625_609_908_221_908_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(regularized_gamma_p(2.5, 0.0), 0.0);
        assert!((regularized_gamma_p(2.5, 1e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for a in [0.5, 1.0, 2.0, 5.0, 17.5] {
            for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 40.0] {
                let s = regularized_gamma_p(a, x) + regularized_gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "P+Q at a={a}, x={x} was {s}");
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let a = 3.0;
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = regularized_gamma_p(a, x);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - e^{-x} (the exponential CDF).
        for x in [0.1, 0.7, 1.3, 4.2] {
            let expected = 1.0 - f64::exp(-x);
            assert!((regularized_gamma_p(1.0, x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_squared_one_df_median() {
        // χ²₁ median ≈ 0.4549; CDF(median) = 0.5.
        let p = regularized_gamma_p(0.5, 0.454_936_423_119_572_81 / 2.0);
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn nonpositive_shape_panics() {
        let _ = regularized_gamma_p(0.0, 1.0);
    }
}
