//! Property-based tests of the statistical substrate: metric axioms, bounds,
//! and special-function identities over arbitrary inputs.

use proptest::prelude::*;
use viewseeker_stats::special::{ln_gamma, regularized_gamma_p, regularized_gamma_q};
use viewseeker_stats::{
    chi_squared_pvalue, earth_movers_distance, kl_divergence, l1_distance, l2_distance,
    max_deviation, Distance, Distribution,
};

/// Raw aggregate vectors that produce valid distributions.
fn arb_aggregates(bins: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, bins)
}

fn dist(vals: &[f64]) -> Distribution {
    Distribution::from_aggregates(vals).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distances_are_nonnegative_and_finite(
        a in arb_aggregates(6),
        b in arb_aggregates(6),
    ) {
        let (p, q) = (dist(&a), dist(&b));
        for d in Distance::all() {
            let v = d.eval(&p, &q).unwrap();
            prop_assert!(v.is_finite() && v >= 0.0, "{d} = {v}");
        }
    }

    #[test]
    fn symmetric_distances_are_symmetric(
        a in arb_aggregates(5),
        b in arb_aggregates(5),
    ) {
        let (p, q) = (dist(&a), dist(&b));
        for d in [Distance::EarthMovers, Distance::L1, Distance::L2, Distance::MaxDeviation] {
            let pq = d.eval(&p, &q).unwrap();
            let qp = d.eval(&q, &p).unwrap();
            prop_assert!((pq - qp).abs() < 1e-12, "{d}: {pq} vs {qp}");
        }
    }

    #[test]
    fn triangle_inequality_holds_for_metrics(
        a in arb_aggregates(4),
        b in arb_aggregates(4),
        c in arb_aggregates(4),
    ) {
        let (p, q, r) = (dist(&a), dist(&b), dist(&c));
        for d in [Distance::EarthMovers, Distance::L1, Distance::L2, Distance::MaxDeviation] {
            let pq = d.eval(&p, &q).unwrap();
            let qr = d.eval(&q, &r).unwrap();
            let pr = d.eval(&p, &r).unwrap();
            prop_assert!(pr <= pq + qr + 1e-9, "{d}: {pr} > {pq} + {qr}");
        }
    }

    #[test]
    fn distance_bounds(a in arb_aggregates(7), b in arb_aggregates(7)) {
        let (p, q) = (dist(&a), dist(&b));
        prop_assert!(l1_distance(&p, &q).unwrap() <= 2.0 + 1e-12);
        prop_assert!(l2_distance(&p, &q).unwrap() <= 2.0f64.sqrt() + 1e-12);
        prop_assert!(max_deviation(&p, &q).unwrap() <= 1.0 + 1e-12);
        // EMD over n ordered unit-spaced bins is at most n − 1.
        prop_assert!(earth_movers_distance(&p, &q).unwrap() <= 6.0 + 1e-12);
    }

    #[test]
    fn kl_is_zero_iff_equal(a in arb_aggregates(5)) {
        let p = dist(&a);
        prop_assert!(kl_divergence(&p, &p).unwrap() < 1e-9);
    }

    #[test]
    fn l2_never_exceeds_l1(a in arb_aggregates(6), b in arb_aggregates(6)) {
        let (p, q) = (dist(&a), dist(&b));
        let l1 = l1_distance(&p, &q).unwrap();
        let l2 = l2_distance(&p, &q).unwrap();
        prop_assert!(l2 <= l1 + 1e-12);
        // And max deviation never exceeds L2.
        prop_assert!(max_deviation(&p, &q).unwrap() <= l2 + 1e-12);
    }

    #[test]
    fn distributions_always_normalize(a in arb_aggregates(8)) {
        let p = dist(&a);
        prop_assert!((p.masses().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let s = p.smoothed();
        prop_assert!((s.masses().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.masses().iter().all(|m| *m > 0.0));
    }

    #[test]
    fn shifting_negative_aggregates_preserves_ranking_of_bins(
        a in proptest::collection::vec(-50.0f64..50.0, 5),
    ) {
        let p = dist(&a);
        // The heaviest bin of the distribution is an argmax of the raw data.
        let max_raw = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((a[p.mode()] - max_raw).abs() < 1e-12);
    }

    #[test]
    fn chisq_pvalue_in_unit_interval(stat in 0.0f64..500.0, df in 1usize..30) {
        let p = chi_squared_pvalue(stat, df).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gamma_p_q_complementary(a in 0.1f64..30.0, x in 0.0f64..60.0) {
        let p = regularized_gamma_p(a, x);
        let q = regularized_gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
