//! Benchmarks the per-iteration model refits: the view utility estimator
//! (ridge regression) and the uncertainty estimator (logistic regression),
//! at training-set sizes typical of an interactive session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewseeker_learn::{LogisticConfig, LogisticRegression, RidgeConfig, RidgeRegression};

fn training_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 7 + j * 13) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| (0.4 * r[0] + 0.6 * r[1]).min(1.0))
        .collect();
    (x, y)
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_refit");
    for n in [4usize, 16, 64] {
        let (x, y) = training_set(n);
        group.bench_with_input(BenchmarkId::new("ridge", n), &n, |b, _| {
            b.iter(|| {
                let mut m = RidgeRegression::new(RidgeConfig::default());
                m.fit(std::hint::black_box(&x), std::hint::black_box(&y))
                    .unwrap();
                m
            })
        });
        let y_bin: Vec<f64> = y.iter().map(|v| f64::from(*v >= 0.5)).collect();
        group.bench_with_input(BenchmarkId::new("logistic", n), &n, |b, _| {
            b.iter(|| {
                let mut m = LogisticRegression::new(LogisticConfig::default());
                m.fit(std::hint::black_box(&x), std::hint::black_box(&y_bin))
                    .unwrap();
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
