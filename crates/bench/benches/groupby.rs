//! Microbenchmarks of the group-by aggregation executor — the cost of
//! materializing one view, which the α-sampling optimization amortizes —
//! and of whole-view-space materialization under the three executors
//! (naive per-view, shared-scan, fused single-scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use viewseeker_core::viewgen::{materialize_all, materialize_all_fused, materialize_all_shared};
use viewseeker_core::ViewSpace;
use viewseeker_dataset::aggregate::{group_by_aggregate, within_bin_dispersion};
use viewseeker_dataset::generate::{generate_diab, DiabConfig};
use viewseeker_dataset::{AggregateFunction, BinSpec, Predicate, SelectQuery};

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    for rows in [10_000usize, 100_000] {
        let table = generate_diab(&DiabConfig::small(rows, 1)).unwrap();
        let all = table.all_rows();
        let spec = BinSpec::categorical_of(table.column_by_name("a6").unwrap()).unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("avg", rows), &rows, |b, _| {
            b.iter(|| {
                group_by_aggregate(&table, &all, "a6", &spec, "m0", AggregateFunction::Avg).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dispersion", rows), &rows, |b, _| {
            b.iter(|| within_bin_dispersion(&table, &all, "a6", &spec, "m0").unwrap())
        });
    }
    group.finish();
}

/// Full view-space materialization (the offline phase) under each executor,
/// at the paper's default bin configs, on the DIAB generator. This is the
/// headline comparison: fused does one pass over the data for *all* views,
/// shared does one pass per distinct `(dimension, bins)` group, naive does
/// three passes per view.
fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize_all");
    group.sample_size(10);
    for rows in [10_000usize, 100_000] {
        let table = generate_diab(&DiabConfig::small(rows, 1)).unwrap();
        let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
        let dq = query.execute(&table).unwrap();
        let dr = table.all_rows();
        let space = ViewSpace::enumerate(&table, &[3, 4]).unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("naive", rows), &rows, |b, _| {
            b.iter(|| materialize_all(&table, &dq, &dr, &space, 4).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("shared", rows), &rows, |b, _| {
            b.iter(|| materialize_all_shared(&table, &dq, &dr, &space, 4).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fused", rows), &rows, |b, _| {
            b.iter(|| materialize_all_fused(&table, &dq, &dr, &space, 4).unwrap())
        });
        // Thread-scaling sweep for the fused executor only (the grid is
        // fixed by the data, so these all produce bit-identical output).
        for threads in [1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("fused_t{threads}"), rows),
                &rows,
                |b, _| b.iter(|| materialize_all_fused(&table, &dq, &dr, &space, threads).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_groupby, bench_materialize);
criterion_main!(benches);
