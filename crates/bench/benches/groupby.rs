//! Microbenchmarks of the group-by aggregation executor — the cost of
//! materializing one view, which the α-sampling optimization amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use viewseeker_dataset::aggregate::{group_by_aggregate, within_bin_dispersion};
use viewseeker_dataset::generate::{generate_diab, DiabConfig};
use viewseeker_dataset::{AggregateFunction, BinSpec};

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    for rows in [10_000usize, 100_000] {
        let table = generate_diab(&DiabConfig::small(rows, 1)).unwrap();
        let all = table.all_rows();
        let spec = BinSpec::categorical_of(table.column_by_name("a6").unwrap()).unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("avg", rows), &rows, |b, _| {
            b.iter(|| {
                group_by_aggregate(&table, &all, "a6", &spec, "m0", AggregateFunction::Avg).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dispersion", rows), &rows, |b, _| {
            b.iter(|| within_bin_dispersion(&table, &all, "a6", &spec, "m0").unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groupby);
criterion_main!(benches);
