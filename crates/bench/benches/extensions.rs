//! Benchmarks of the extension surface: scatter-view materialization,
//! MMR diversification, and snapshot round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewseeker_core::persist::SessionSnapshot;
use viewseeker_core::scatter::{materialize_scatter, ScatterSpace, ScatterViewDef};
use viewseeker_core::{diverse_top_k, ViewSeeker, ViewSeekerConfig};
use viewseeker_dataset::generate::{generate_diab, generate_syn, DiabConfig, SynConfig};
use viewseeker_dataset::{Predicate, SelectQuery};

fn bench_scatter(c: &mut Criterion) {
    let table = generate_syn(&SynConfig::small(20_000, 1)).unwrap();
    let dq = SelectQuery::new(Predicate::range("d0", 0.0, 30.0))
        .execute(&table)
        .unwrap();
    let dr = table.all_rows();

    let mut group = c.benchmark_group("scatter");
    for grid in [4usize, 8, 16] {
        let def = ScatterViewDef {
            x: "m0".into(),
            y: "m1".into(),
            grid,
        };
        group.bench_with_input(
            BenchmarkId::new("materialize_one_pair", grid),
            &grid,
            |b, _| b.iter(|| materialize_scatter(&table, &dq, &dr, &def).unwrap()),
        );
    }
    let space = ScatterSpace::enumerate(&table, 8).unwrap();
    group.bench_function("feature_matrix_10_pairs", |b| {
        b.iter(|| {
            viewseeker_core::scatter::scatter_feature_matrix(&table, &dq, &dr, &space, 64.0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_diversity_and_persistence(c: &mut Criterion) {
    let table = generate_diab(&DiabConfig::small(5_000, 2)).unwrap();
    let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
    let mut seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
    for i in 0..8 {
        let v = seeker.next_views(1).unwrap()[0];
        seeker
            .submit_feedback(v, if i % 2 == 0 { 0.9 } else { 0.1 })
            .unwrap();
    }
    let scores = seeker.predicted_scores().unwrap();
    let matrix = seeker.feature_matrix().clone();

    let mut group = c.benchmark_group("extensions");
    group.bench_function("mmr_top10_of_280", |b| {
        b.iter(|| diverse_top_k(&matrix, &scores, 10, 0.7).unwrap())
    });
    group.bench_function("snapshot_save_restore", |b| {
        b.iter(|| {
            let json = SessionSnapshot::from_seeker(&seeker).to_json().unwrap();
            SessionSnapshot::from_json(&json)
                .unwrap()
                .restore_seeker(&table, &query, ViewSeekerConfig::default())
                .unwrap()
                .label_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scatter, bench_diversity_and_persistence);
criterion_main!(benches);
