//! Benchmarks one end-to-end interactive iteration — the paper's sub-second
//! (`tl` ≤ 1 s) responsiveness claim. An iteration is: run the refinement
//! budget, select the next view by uncertainty, record the feedback, refit
//! both estimators, and produce the top-k recommendation.

use criterion::{criterion_group, criterion_main, Criterion};
use viewseeker_core::{MaterializeStrategy, ViewSeeker, ViewSeekerConfig};
use viewseeker_dataset::generate::{generate_diab, DiabConfig};
use viewseeker_dataset::{Predicate, SelectQuery};

fn bench_iteration(c: &mut Criterion) {
    let table = generate_diab(&DiabConfig::small(20_000, 3)).unwrap();
    let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));

    let mut group = c.benchmark_group("interactive_iteration");
    group.sample_size(20);

    group.bench_function("offline_init_full", |b| {
        b.iter(|| ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap())
    });

    // Offline init dominated by view materialization: one entry per
    // executor so the session-level win of the fused default is visible
    // end-to-end, not just in the viewgen microbench.
    for strategy in [
        MaterializeStrategy::Naive,
        MaterializeStrategy::Shared,
        MaterializeStrategy::Fused,
    ] {
        group.bench_function(format!("offline_init_{strategy}"), |b| {
            let config = ViewSeekerConfig {
                materialize: strategy,
                ..ViewSeekerConfig::default()
            };
            b.iter(|| ViewSeeker::new(&table, &query, config.clone()).unwrap())
        });
    }

    group.bench_function("select_label_refit_recommend", |b| {
        b.iter_batched(
            || {
                // A warmed-up session with a few labels already collected.
                let mut s = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
                for i in 0..6 {
                    let v = s.next_views(1).unwrap()[0];
                    s.submit_feedback(v, if i % 2 == 0 { 0.9 } else { 0.1 })
                        .unwrap();
                }
                s
            },
            |mut s| {
                let v = s.next_views(1).unwrap()[0];
                s.submit_feedback(v, 0.6).unwrap();
                s.recommend(10).unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
