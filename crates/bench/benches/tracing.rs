//! Measures what phase tracing costs inside the interactive loop: the
//! default no-op tracer against a recording [`Recorder`]. The no-op path
//! wraps every phase in an `Instant::now()` pair and a dynamic dispatch
//! that does nothing, so it should sit within noise of the pre-tracing
//! iteration numbers; the recording path adds one mutex acquisition and a
//! few additions per phase.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use viewseeker_core::trace::{noop_tracer, Recorder, Tracer};
use viewseeker_core::{ViewSeeker, ViewSeekerConfig};
use viewseeker_dataset::generate::{generate_diab, DiabConfig};
use viewseeker_dataset::{Predicate, SelectQuery};

fn bench_tracing(c: &mut Criterion) {
    let table = generate_diab(&DiabConfig::small(20_000, 3)).unwrap();
    let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));

    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(20);

    type MakeTracer = fn() -> Arc<dyn Tracer>;
    let cases: [(&str, MakeTracer); 2] = [
        ("iteration_noop_tracer", noop_tracer as MakeTracer),
        ("iteration_recording_tracer", || Recorder::shared()),
    ];
    for (name, make_tracer) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    // A warmed-up session with a few labels, tracing into
                    // the tracer under measurement.
                    let mut s =
                        ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
                    s.set_tracer(make_tracer());
                    for i in 0..6 {
                        let v = s.next_views(1).unwrap()[0];
                        s.submit_feedback(v, if i % 2 == 0 { 0.9 } else { 0.1 })
                            .unwrap();
                    }
                    s
                },
                |mut s| {
                    let v = s.next_views(1).unwrap()[0];
                    s.submit_feedback(v, 0.6).unwrap();
                    s.recommend(10).unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
