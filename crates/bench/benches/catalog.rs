//! Dataset-resolution cost along the catalog's three paths: parsing the
//! original CSV (cold), loading the VSC1 columnar store (warm), and
//! handing out the shared in-memory `Arc<Table>` (cache hit). The spread
//! between the three is the case for the catalog: every session after the
//! first should pay the last price, not the first.

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use viewseeker_catalog::{vsc, Catalog};
use viewseeker_dataset::csv::{infer_schema, read_csv};

/// A convention-conforming CSV (`m_*` measure, `n_*` numeric dimension,
/// categorical otherwise) large enough for parse cost to dominate.
fn sales_csv(rows: usize) -> String {
    let mut csv = String::with_capacity(rows * 32);
    csv.push_str("region,product,n_age,m_sales\n");
    for i in 0..rows {
        let region = ["west", "east", "north", "south"][i % 4];
        let product = ["widget", "gadget", "gizmo"][i % 3];
        let age = 20 + (i * 7) % 50;
        let sales = 40.0 + (i % 997) as f64 * 0.25;
        csv.push_str(&format!("{region},{product},{age},{sales:.2}\n"));
    }
    csv
}

fn bench_catalog(c: &mut Criterion) {
    let rows = 100_000usize;
    let csv = sales_csv(rows);

    let schema = infer_schema(Cursor::new(csv.as_bytes())).unwrap();
    let table = read_csv(&schema, Cursor::new(csv.as_bytes())).unwrap();

    let dir = std::env::temp_dir().join(format!("vs-bench-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.join("sales");
    vsc::save(&store, &table).unwrap();

    let catalog = Catalog::in_memory(1 << 30);
    catalog.put("sales", table).unwrap();

    let mut group = c.benchmark_group("catalog");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_with_input(BenchmarkId::new("cold_csv_parse", rows), &rows, |b, _| {
        b.iter(|| {
            let schema = infer_schema(Cursor::new(csv.as_bytes())).unwrap();
            read_csv(&schema, Cursor::new(csv.as_bytes())).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("warm_vsc1_load", rows), &rows, |b, _| {
        b.iter(|| vsc::load(&store).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("cache_hit", rows), &rows, |b, _| {
        b.iter(|| catalog.get("sales").unwrap())
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
