//! Benchmarks the offline initialization phase: materializing the full view
//! space and computing the 8-feature matrix — exactly the work the
//! α-sampling optimization targets, serial vs parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewseeker_core::viewgen::{materialize_all, materialize_all_shared};
use viewseeker_core::{FeatureMatrix, ViewSpace};
use viewseeker_dataset::generate::{generate_diab, DiabConfig};
use viewseeker_dataset::sample::bernoulli_sample;

fn bench_offline_phase(c: &mut Criterion) {
    let table = generate_diab(&DiabConfig::small(20_000, 1)).unwrap();
    let space = ViewSpace::enumerate(&table, &[3, 4]).unwrap();
    let dr = table.all_rows();
    let dq = bernoulli_sample(&dr, 0.02, 9);

    let mut group = c.benchmark_group("offline_init");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("materialize_280_views", threads),
            &threads,
            |b, &threads| b.iter(|| materialize_all(&table, &dq, &dr, &space, threads).unwrap()),
        );
    }
    // SeeDB-style shared computation: one scan per (dim, measure) group.
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("materialize_280_views_shared", threads),
            &threads,
            |b, &threads| {
                b.iter(|| materialize_all_shared(&table, &dq, &dr, &space, threads).unwrap())
            },
        );
    }

    // α-sampling: the rough pass the optimization substitutes.
    let alpha_dq = bernoulli_sample(&dq, 0.1, 1);
    let alpha_dr = bernoulli_sample(&dr, 0.1, 2);
    group.bench_function("materialize_280_views_alpha10", |b| {
        b.iter(|| materialize_all(&table, &alpha_dq, &alpha_dr, &space, 1).unwrap())
    });

    let views = materialize_all(&table, &dq, &dr, &space, 1).unwrap();
    group.bench_function("feature_matrix_from_views", |b| {
        b.iter(|| FeatureMatrix::from_views(&views, 8.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_offline_phase);
criterion_main!(benches);
