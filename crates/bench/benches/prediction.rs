//! Benchmarks the predicted-scores hot path: scoring every view in the
//! space with the fitted utility estimator, serial vs. parallel. This runs
//! on every interactive turn (refinement prioritization, recommendation,
//! diverse re-ranking), so at large view-space sizes it dominates
//! user-perceived latency.
//!
//! Interpreting results: the parallel path only pays off with multiple
//! physical cores AND view spaces large enough to amortize thread spawns
//! (scoring one view is an 8-element dot product). On a single-core host
//! every `parallel_*` row degenerates to measuring spawn overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use viewseeker_core::estimator::{Label, ViewUtilityEstimator};
use viewseeker_core::features::{FeatureMatrix, FEATURE_COUNT};
use viewseeker_core::ViewId;

fn synthetic_matrix(views: usize) -> FeatureMatrix {
    let rows: Vec<[f64; FEATURE_COUNT]> = (0..views)
        .map(|i| {
            let x = (i as f64) / views as f64;
            [
                x,
                x * x,
                1.0 - x,
                (x * 9.1).sin().abs(),
                (x * 3.7).cos().abs(),
                x / 2.0,
                ((i * 31) % 97) as f64 / 97.0,
                0.9 - x / 2.0,
            ]
        })
        .collect();
    FeatureMatrix::new(rows)
}

fn fitted_estimator(matrix: &FeatureMatrix) -> ViewUtilityEstimator {
    let n = matrix.len();
    let labels: Vec<Label> = [0, n / 4, n / 2, (3 * n) / 4, n - 1]
        .iter()
        .map(|&i| Label {
            view: ViewId::from_index(i),
            score: (i as f64 / n as f64).clamp(0.05, 0.95),
        })
        .collect();
    let mut ve = ViewUtilityEstimator::new(1e-4);
    ve.refit(matrix, &labels).expect("refit");
    ve
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicted_scores");
    group.sample_size(20);
    for views in [1_000usize, 10_000, 50_000] {
        let matrix = synthetic_matrix(views);
        let ve = fitted_estimator(&matrix);
        group.throughput(Throughput::Elements(views as u64));
        group.bench_with_input(BenchmarkId::new("serial", views), &views, |b, _| {
            b.iter(|| ve.predict_all(std::hint::black_box(&matrix)).unwrap())
        });
        for threads in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_{threads}"), views),
                &views,
                |b, _| {
                    b.iter(|| {
                        ve.predict_all_parallel(std::hint::black_box(&matrix), threads)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
