//! Microbenchmarks of the distribution distance measures — the inner loop of
//! utility-feature computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewseeker_stats::{Distance, Distribution};

fn make_pair(bins: usize) -> (Distribution, Distribution) {
    let a: Vec<f64> = (0..bins).map(|i| (i % 7 + 1) as f64).collect();
    let b: Vec<f64> = (0..bins).map(|i| (i % 5 + 2) as f64).collect();
    (
        Distribution::from_aggregates(&a).unwrap(),
        Distribution::from_aggregates(&b).unwrap(),
    )
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    for bins in [4usize, 16, 64] {
        let (p, q) = make_pair(bins);
        for d in Distance::all() {
            group.bench_with_input(BenchmarkId::new(d.to_string(), bins), &bins, |bench, _| {
                bench.iter(|| {
                    d.eval(std::hint::black_box(&p), std::hint::black_box(&q))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
