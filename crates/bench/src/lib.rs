//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every table/figure of the paper has a binary under `src/bin/` (see
//! DESIGN.md §4 for the index). All binaries accept the same flags:
//!
//! ```text
//! --paper          run at the paper's full scale (100k DIAB / 1M SYN rows)
//! --rows N         override the row count (default: a laptop-scale subset)
//! --seed N         override the testbed seed
//! --threads N      offline-phase worker threads (default: CPU count)
//! --json PATH      also dump the raw results as JSON
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use viewseeker_core::ViewSeekerConfig;
use viewseeker_eval::TestbedScale;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Run at full Table 1 scale.
    pub paper: bool,
    /// Explicit row-count override.
    pub rows: Option<usize>,
    /// Testbed seed.
    pub seed: u64,
    /// Offline-phase threads.
    pub threads: usize,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            paper: false,
            rows: None,
            seed: 7,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            json: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on bad input.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on malformed flags (the binaries surface this as a usage
    /// error).
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("flag {name} needs a value"))
            };
            match arg.as_str() {
                "--paper" => out.paper = true,
                "--rows" => out.rows = Some(value("--rows").parse().expect("--rows: integer")),
                "--seed" => out.seed = value("--seed").parse().expect("--seed: integer"),
                "--threads" => {
                    out.threads = value("--threads").parse().expect("--threads: integer");
                }
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                other => panic!("unknown flag {other} (see crate docs for usage)"),
            }
        }
        out
    }

    /// The testbed scale for a dataset whose paper row count is
    /// `paper_rows`, with `default_small` as the laptop default.
    #[must_use]
    pub fn scale(&self, default_small: usize) -> TestbedScale {
        if let Some(rows) = self.rows {
            TestbedScale::Small(rows)
        } else if self.paper {
            TestbedScale::Paper
        } else {
            TestbedScale::Small(default_small)
        }
    }

    /// A seeker configuration with the CLI's thread count applied.
    #[must_use]
    pub fn seeker_config(&self) -> ViewSeekerConfig {
        ViewSeekerConfig {
            init_threads: self.threads,
            seed: self.seed,
            ..ViewSeekerConfig::default()
        }
    }

    /// Writes `json` to the `--json` path if one was given.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (acceptable in a bench binary).
    pub fn maybe_write_json(&self, json: &str) {
        if let Some(path) = &self.json {
            std::fs::write(path, json).expect("writing --json output");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags() {
        let a = BenchArgs::parse_from(
            [
                "--paper",
                "--rows",
                "123",
                "--seed",
                "9",
                "--threads",
                "2",
                "--json",
                "/tmp/x.json",
            ]
            .map(String::from),
        );
        assert!(a.paper);
        assert_eq!(a.rows, Some(123));
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 2);
        assert_eq!(a.json.unwrap().to_str().unwrap(), "/tmp/x.json");
    }

    #[test]
    fn scale_precedence_rows_beats_paper() {
        let a = BenchArgs::parse_from(["--paper", "--rows", "50"].map(String::from));
        assert_eq!(a.scale(1000), TestbedScale::Small(50));
        let b = BenchArgs::parse_from(["--paper".to_owned()]);
        assert_eq!(b.scale(1000), TestbedScale::Paper);
        let c = BenchArgs::parse_from(Vec::<String>::new());
        assert_eq!(c.scale(1000), TestbedScale::Small(1000));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = BenchArgs::parse_from(["--bogus".to_owned()]);
    }

    #[test]
    fn seeker_config_carries_threads_and_seed() {
        let a = BenchArgs::parse_from(["--threads", "3", "--seed", "11"].map(String::from));
        let c = a.seeker_config();
        assert_eq!(c.init_threads, 3);
        assert_eq!(c.seed, 11);
    }
}
