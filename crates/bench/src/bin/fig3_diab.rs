//! Regenerates **Figure 3: Recommendation precision for the DIAB dataset**.
//!
//! For k ∈ {5, 10, 15, 20, 25, 30} and each ideal-function group (single /
//! two / three components), prints the mean number of labels a simulated
//! user must provide before ViewSeeker's top-k reaches 100% precision.
//!
//! Paper's headline: 7–16 labels on average across the sweep.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::experiments::effort::{user_effort_experiment, PAPER_KS};
use viewseeker_eval::report::{effort_table, to_json};
use viewseeker_eval::{diab_testbed, TestbedScale};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 3: user effort to 100% precision (DIAB)",
        "x-axis: k of top-k; y-axis: labels needed; one column per u* group",
    );
    let scale = args.scale(20_000);
    let testbed = diab_testbed(scale, args.seed).expect("DIAB testbed");
    eprintln!(
        "testbed: {} rows, DQ selectivity {:.3}%{}",
        testbed.table.row_count(),
        testbed.selectivity * 100.0,
        if matches!(scale, TestbedScale::Paper) {
            " (paper scale)"
        } else {
            ""
        }
    );

    let points = user_effort_experiment(&testbed, &args.seeker_config(), &PAPER_KS, 200)
        .expect("experiment");
    println!("{}", effort_table(&points));

    let overall: f64 = points.iter().map(|p| p.mean_labels).sum::<f64>() / points.len() as f64;
    println!("overall mean labels: {overall:.1} (paper: 7-16)");
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
