//! Regenerates **Figure 6: Recommendation precision with optimization
//! (DIAB)** — the number of labels needed to reach UD = 0 with and without
//! the α-sampling + incremental-refinement optimizations.
//!
//! Paper's headline: the optimized model needs ≈19% more labels.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_core::ViewSeekerConfig;
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::optimization_experiment;
use viewseeker_eval::report::{optimization_labels_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 6: labels to UD = 0, optimization off vs on (DIAB)",
        "optimized model: α = 10% rough features + prioritized incremental refinement",
    );
    let testbed = diab_testbed(args.scale(20_000), args.seed).expect("DIAB testbed");
    let baseline = args.seeker_config();
    // The paper constrains refinement by wall-clock (tl = 1 s per
    // iteration); this Rust implementation refines the whole view space in
    // well under tl, which would make the optimized model exact from the
    // first iteration and erase the trade-off the figure studies. We
    // therefore emulate the paper's compute-constrained regime with a
    // deterministic budget of 10% of the view space per iteration —
    // refinement completes over ~10 interactions, as it does in the paper's
    // testbed.
    let optimized = ViewSeekerConfig {
        alpha: 0.10,
        refine_budget: viewseeker_core::RefineBudget::Views(28),
        ..baseline.clone()
    };
    let points =
        optimization_experiment(&testbed, &baseline, &optimized, 10, 200).expect("experiment");
    println!("{}", optimization_labels_table(&points));
    let mean_overhead: f64 =
        points.iter().map(|p| p.label_overhead()).sum::<f64>() / points.len() as f64;
    println!(
        "mean label overhead of the optimized model: {:+.1}% (paper: +19%)",
        mean_overhead * 100.0
    );
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
