//! Regenerates **Figure 7: System Runtime with optimization (DIAB)** — the
//! wall-clock time needed to reach UD = 0 with and without the α-sampling +
//! incremental-refinement optimizations.
//!
//! Paper's headline: the optimized model cuts runtime by ≈43%. The dominant
//! cost the optimization removes is the offline full-data feature pass,
//! which the optimized model replaces with an α = 10% pass plus
//! demand-driven refinement of only the promising views.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_core::ViewSeekerConfig;
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::optimization_experiment;
use viewseeker_eval::report::{optimization_runtime_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 7: runtime to UD = 0, optimization off vs on (DIAB)",
        "wall-clock includes offline initialization + all interactive iterations",
    );
    let testbed = diab_testbed(args.scale(20_000), args.seed).expect("DIAB testbed");
    let baseline = args.seeker_config();
    // The paper constrains refinement by wall-clock (tl = 1 s per
    // iteration); this Rust implementation refines the whole view space in
    // well under tl, which would make the optimized model exact from the
    // first iteration and erase the trade-off the figure studies. We
    // therefore emulate the paper's compute-constrained regime with a
    // deterministic budget of 10% of the view space per iteration —
    // refinement completes over ~10 interactions, as it does in the paper's
    // testbed.
    let optimized = ViewSeekerConfig {
        alpha: 0.10,
        refine_budget: viewseeker_core::RefineBudget::Views(28),
        ..baseline.clone()
    };
    let points =
        optimization_experiment(&testbed, &baseline, &optimized, 10, 200).expect("experiment");
    println!("{}", optimization_runtime_table(&points));
    let mean_reduction: f64 =
        points.iter().map(|p| p.runtime_reduction()).sum::<f64>() / points.len() as f64;
    println!(
        "mean runtime reduction of the optimized model: {:.1}% (paper: 43%)",
        mean_reduction * 100.0
    );
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
