//! Ablation: label-noise robustness.
//!
//! The paper's simulated user reports exact normalized utility scores; real
//! analysts are noisy and inconsistent. This bench perturbs every rating
//! with Gaussian noise of standard deviation σ and measures how the
//! interactive learner degrades — labels spent, final precision, and the
//! fraction of Table 2 ideal functions still recovered exactly.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::noise_sweep;
use viewseeker_eval::report::{noise_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation: label-noise robustness (DIAB)",
        "Gaussian noise on every rating; precision measured against the exact ideal",
    );
    let testbed = diab_testbed(args.scale(10_000), args.seed).expect("DIAB testbed");
    let sigmas = [0.0, 0.05, 0.10, 0.20, 0.40];
    let points = noise_sweep(&testbed, &args.seeker_config(), &sigmas, 10, 60).expect("experiment");
    println!("{}", noise_table(&points));
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
