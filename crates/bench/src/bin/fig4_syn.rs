//! Regenerates **Figure 4: Recommendation precision for the SYN dataset**.
//!
//! Same protocol as Figure 3 on the synthetic 5-dimension / 5-measure /
//! 2-bin-configuration numeric dataset.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::experiments::effort::{user_effort_experiment, PAPER_KS};
use viewseeker_eval::report::{effort_table, to_json};
use viewseeker_eval::syn_testbed;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 4: user effort to 100% precision (SYN)",
        "x-axis: k of top-k; y-axis: labels needed; one column per u* group",
    );
    let testbed = syn_testbed(args.scale(50_000), args.seed).expect("SYN testbed");
    eprintln!(
        "testbed: {} rows, DQ selectivity {:.3}%",
        testbed.table.row_count(),
        testbed.selectivity * 100.0
    );

    let points = user_effort_experiment(&testbed, &args.seeker_config(), &PAPER_KS, 200)
        .expect("experiment");
    println!("{}", effort_table(&points));

    let overall: f64 = points.iter().map(|p| p.mean_labels).sum::<f64>() / points.len() as f64;
    println!("overall mean labels: {overall:.1} (paper: 7-16)");
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
