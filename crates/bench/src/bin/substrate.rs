//! Regenerates **the data-substrate scaling reference** (`BENCH_substrate.json`).
//!
//! A SYN-shaped table (5 numeric dimensions, 5 measures) at substrate
//! scale — 10M rows under `--paper`, 1M by default — generated the way
//! operational telemetry actually arrives: dimension `n_d0` sorted
//! (ingest order), the remaining dimensions quantized to coarse grids,
//! and a measure mix of full-precision f64 streams (these stay
//! `raw`-encoded and are served zero-copy from the file mapping) and
//! quantized gauges (these dictionary-encode).
//!
//! Four substrate numbers come out, printed and dumped via `--json`:
//!
//! 1. **bytes**: on-disk size under VSC1 vs VSC2 (compression ratio);
//! 2. **cold start**: `vsc::load` vs `vsc2::load` wall time — the price
//!    of making the dataset servable after a restart;
//! 3. **per-iter scan**: one fused materialization pass over the view
//!    space, naive vs zone-pruned, for a selective `DQ` range on the
//!    sorted dimension;
//! 4. **pruning rate**: the fraction of row groups the zone maps let the
//!    executor skip for that `DQ`.
#![forbid(unsafe_code)]

use std::path::Path;
use std::time::Instant;

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_catalog::{vsc, vsc2};
use viewseeker_core::viewgen::{materialize_all, materialize_all_fused_pruned};
use viewseeker_core::ViewSpace;
use viewseeker_dataset::zones::DEFAULT_GROUP_ROWS;
use viewseeker_dataset::{Column, Predicate, Schema, Table};

/// Quantization grid for the coarse dimensions and gauge measures.
const LEVELS: u64 = 64;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The substrate table: `n_d0` sorted, `n_d1..n_d4` quantized,
/// `m_raw0..m_raw1` full-precision, `m_q0..m_q2` quantized gauges.
fn quantize(v: f64) -> f64 {
    (v * LEVELS as f64).floor() / LEVELS as f64 * 100.0
}

fn quantized(rows: usize, state: &mut u64) -> Vec<f64> {
    (0..rows).map(|_| quantize(uniform(state))).collect()
}

fn substrate_table(rows: usize, seed: u64) -> Table {
    let mut state = seed;
    let schema = Schema::builder()
        .numeric_dimension("n_d0")
        .numeric_dimension("n_d1")
        .numeric_dimension("n_d2")
        .numeric_dimension("n_d3")
        .numeric_dimension("n_d4")
        .measure("m_raw0")
        .measure("m_raw1")
        .measure("m_q0")
        .measure("m_q1")
        .measure("m_q2")
        .build()
        .expect("substrate schema");
    let sorted: Vec<f64> = (0..rows)
        .map(|i| quantize(i as f64 / rows as f64))
        .collect();
    let d1 = quantized(rows, &mut state);
    let d2 = quantized(rows, &mut state);
    let d3 = quantized(rows, &mut state);
    let d4 = quantized(rows, &mut state);
    let raw0: Vec<f64> = (0..rows).map(|_| uniform(&mut state) * 1e4).collect();
    let raw1: Vec<f64> = (0..rows).map(|_| uniform(&mut state) * 1e4).collect();
    let q0 = quantized(rows, &mut state);
    let q1 = quantized(rows, &mut state);
    let q2 = quantized(rows, &mut state);
    Table::new(
        schema,
        vec![
            Column::numeric(sorted),
            Column::numeric(d1),
            Column::numeric(d2),
            Column::numeric(d3),
            Column::numeric(d4),
            Column::numeric(raw0),
            Column::numeric(raw1),
            Column::numeric(q0),
            Column::numeric(q1),
            Column::numeric(q2),
        ],
    )
    .expect("substrate table")
}

/// Total bytes of every regular file directly under `dir`.
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("store directory")
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Best-of-`iters` wall time for `f`, in milliseconds.
fn best_ms<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t = Instant::now();
        let value = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one iteration"))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse();
    let rows = args
        .rows
        .unwrap_or(if args.paper { 10_000_000 } else { 1_000_000 });
    banner(
        "Substrate: VSC2 bytes, cold start, zone-pruned scan",
        &format!("rows: {rows}, threads: {}", args.threads),
    );

    let t = Instant::now();
    let table = substrate_table(rows, args.seed);
    eprintln!("generated in {:.1}s", t.elapsed().as_secs_f64());

    let root = std::env::temp_dir().join(format!("vs-substrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (dir1, dir2) = (root.join("vsc1"), root.join("vsc2"));
    vsc::save(&dir1, &table).expect("VSC1 save");
    vsc2::save(&dir2, &table, 0).expect("VSC2 save");
    let (bytes1, bytes2) = (dir_bytes(&dir1), dir_bytes(&dir2));
    let ratio = bytes1 as f64 / bytes2 as f64;
    println!("bytes:      VSC1 {bytes1}, VSC2 {bytes2} ({ratio:.2}x smaller)");

    let loads = 3;
    let (cold1_ms, _) = best_ms(loads, || vsc::load(&dir1).expect("VSC1 load"));
    let (cold2_ms, loaded) = best_ms(loads, || vsc2::load(&dir2).expect("VSC2 load"));
    let speedup = cold1_ms / cold2_ms;
    println!(
        "cold start: VSC1 {cold1_ms:.0}ms, VSC2 {cold2_ms:.0}ms ({speedup:.2}x faster, \
         {} of {} bytes zero-copy mapped)",
        loaded.mapped_bytes,
        loaded.resident_bytes(),
    );

    // A selective DQ on the sorted dimension: the shape zone maps prune.
    let predicate = Predicate::range("n_d0", 10.0, 20.0);
    let space = ViewSpace::enumerate(&table, &[3]).expect("view space");
    let zones = &loaded.zones;
    let scans = 2;
    let (naive_ms, _) = best_ms(scans, || {
        let dq = predicate.evaluate(&table).expect("DQ");
        materialize_all(&table, &dq, &table.all_rows(), &space, args.threads).expect("naive scan")
    });
    let (pruned_ms, stats) = best_ms(scans, || {
        let (_, _, stats, _) =
            materialize_all_fused_pruned(&table, zones, &predicate, &space, args.threads)
                .expect("pruned scan");
        stats
    });
    let groups = zones.groups.len() as u64;
    let pruned_pct = 100.0 * stats.rowgroups_pruned as f64 / groups as f64;
    println!(
        "scan:       naive {naive_ms:.0}ms, zone-pruned {pruned_ms:.0}ms \
         ({:.2}x faster, {}/{groups} groups pruned = {pruned_pct:.1}%)",
        naive_ms / pruned_ms,
        stats.rowgroups_pruned,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"note\": \"Substrate scaling reference: SYN-shaped table (5 numeric dims, ",
            "5 measures; n_d0 sorted, coarse dims and gauge measures quantized to {levels} ",
            "levels, 2 full-precision raw measures served zero-copy from the mapping). ",
            "bytes compares on-disk size, cold_start the load wall time after a restart ",
            "(best of {loads}), scan one fused materialization pass (best of {scans}) for ",
            "DQ = n_d0 in [10, 20) naive vs zone-pruned.\",\n",
            "  \"environment\": {{\"cpus\": {cpus}, \"os\": \"{os}\", \"profile\": \"release\"}},\n",
            "  \"rows\": {rows},\n",
            "  \"group_rows\": {group_rows},\n",
            "  \"threads\": {threads},\n",
            "  \"bytes\": {{\"vsc1\": {bytes1}, \"vsc2\": {bytes2}, ",
            "\"compression_ratio\": {ratio:.3}}},\n",
            "  \"cold_start\": {{\"vsc1_ms\": {cold1:.1}, \"vsc2_ms\": {cold2:.1}, ",
            "\"speedup\": {speedup:.3}, \"mapped_bytes\": {mapped}, \"owned_bytes\": {owned}}},\n",
            "  \"scan\": {{\"views\": {views}, \"naive_ms\": {naive:.1}, ",
            "\"pruned_ms\": {pruned:.1}, \"speedup\": {scan_speedup:.3}, ",
            "\"rowgroups\": {groups}, \"rowgroups_pruned\": {pruned_groups}, ",
            "\"pruned_pct\": {pruned_pct:.1}}}\n",
            "}}\n",
        ),
        levels = LEVELS,
        loads = loads,
        scans = scans,
        cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        os = std::env::consts::OS,
        rows = rows,
        group_rows = DEFAULT_GROUP_ROWS,
        threads = args.threads,
        bytes1 = bytes1,
        bytes2 = bytes2,
        ratio = ratio,
        cold1 = cold1_ms,
        cold2 = cold2_ms,
        speedup = speedup,
        mapped = loaded.mapped_bytes,
        owned = loaded.owned_bytes,
        views = space.len(),
        naive = naive_ms,
        pruned = pruned_ms,
        scan_speedup = naive_ms / pruned_ms,
        groups = groups,
        pruned_groups = stats.rowgroups_pruned,
        pruned_pct = pruned_pct,
    );
    args.maybe_write_json(&json);
    drop(loaded);
    let _ = std::fs::remove_dir_all(&root);
}
