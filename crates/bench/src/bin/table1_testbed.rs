//! Regenerates **Table 1: Testbed Parameters**.
//!
//! Builds both testbeds and prints every parameter row of the paper's
//! Table 1 with the values this reproduction actually uses, so the table can
//! be diffed against the paper directly.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_core::{ViewSeekerConfig, ViewSpace};
use viewseeker_eval::report::markdown_table;
use viewseeker_eval::{diab_testbed, syn_testbed};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Table 1: Testbed Parameters",
        "paper values: DIAB 100k rows / SYN 1M rows, DQ ratio 0.5%, 8 features, M = 1, tl = 1s, α = 10%",
    );

    let diab = diab_testbed(args.scale(20_000), args.seed).expect("DIAB testbed");
    let syn = syn_testbed(args.scale(50_000), args.seed).expect("SYN testbed");
    let config = ViewSeekerConfig::optimized();

    let diab_views = ViewSpace::enumerate(&diab.table, &diab.bin_configs).expect("DIAB views");
    let syn_views = ViewSpace::enumerate(&syn.table, &syn.bin_configs).expect("SYN views");

    let rows = vec![
        vec![
            "Total number of records".into(),
            format!("{} (paper: 100,000)", diab.table.row_count()),
            format!("{} (paper: 1,000,000)", syn.table.row_count()),
        ],
        vec![
            "Cardinality ratio of records in DQ".into(),
            format!("{:.3}% (paper: 0.5%)", diab.selectivity * 100.0),
            format!("{:.3}% (paper: 0.5%)", syn.selectivity * 100.0),
        ],
        vec![
            "Number of dimension attributes (A)".into(),
            diab.table.dimension_names().len().to_string(),
            syn.table.dimension_names().len().to_string(),
        ],
        vec![
            "Number of distinct values in A".into(),
            "2-10 (variable)".into(),
            "3 and 4 bins".into(),
        ],
        vec![
            "Number of measure attributes (M)".into(),
            diab.table.measure_names().len().to_string(),
            syn.table.measure_names().len().to_string(),
        ],
        vec![
            "Number of aggregation functions".into(),
            "5".into(),
            "5".into(),
        ],
        vec![
            "Number of view utility features".into(),
            viewseeker_core::features::FEATURE_COUNT.to_string(),
            viewseeker_core::features::FEATURE_COUNT.to_string(),
        ],
        vec![
            "Distinct views".into(),
            format!("{} (paper: 280)", diab_views.len()),
            format!("{} (paper: 250)", syn_views.len()),
        ],
        vec![
            "Utility estimator".into(),
            "linear regressor".into(),
            "linear regressor".into(),
        ],
        vec![
            "Views presented per iteration".into(),
            config.views_per_iteration.to_string(),
            config.views_per_iteration.to_string(),
        ],
        vec![
            "Optimization partial data ratio α".into(),
            format!("{:.0}%", config.alpha * 100.0),
            format!("{:.0}%", config.alpha * 100.0),
        ],
        vec![
            "Optimization time limit per iteration".into(),
            format!("{:?}", config.refine_budget),
            format!("{:?}", config.refine_budget),
        ],
    ];
    let table = markdown_table(&["parameter", "DIAB", "SYN"], &rows);
    println!("{table}");
    args.maybe_write_json(
        &serde_json::json!({
            "diab_rows": diab.table.row_count(),
            "syn_rows": syn.table.row_count(),
            "diab_views": diab_views.len(),
            "syn_views": syn_views.len(),
            "diab_selectivity": diab.selectivity,
            "syn_selectivity": syn.selectivity,
        })
        .to_string(),
    );
}
