//! Regenerates **Table 2: Simulated Ideal Utility Functions**.
//!
//! Prints the 11 ideal utility functions the evaluation sweeps, exactly as
//! constructed by `viewseeker_eval::idealfn`, for diffing against the paper.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::ideal_functions;
use viewseeker_eval::report::markdown_table;

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Table 2: Simulated Ideal Utility Functions",
        "u*() = β₁u₁() + … + βₙuₙ() over the 8 utility features",
    );
    let rows: Vec<Vec<String>> = ideal_functions()
        .iter()
        .map(|f| {
            vec![
                f.number.to_string(),
                f.group.to_string(),
                f.utility.name().to_owned(),
            ]
        })
        .collect();
    let table = markdown_table(
        &["#", "group", "involved utility features and weights"],
        &rows,
    );
    println!("{table}");
    args.maybe_write_json(
        &serde_json::to_string_pretty(
            &ideal_functions()
                .iter()
                .map(|f| (f.number, f.utility.name().to_owned()))
                .collect::<Vec<_>>(),
        )
        .expect("serializable"),
    );
}
