//! Ablation: views presented per iteration (the paper's `M`, default 1).
//!
//! Presenting several views per prompt reduces the number of interaction
//! rounds but selects all of them from one model state, so each label is
//! individually less informative. This bench quantifies the labels-vs-
//! rounds trade over all 11 Table 2 ideal functions.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::batch_size_sweep;
use viewseeker_eval::report::{batch_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation: batch size M (DIAB)",
        "labels and prompt rounds to 100% precision@10, averaged over all 11 ideal functions",
    );
    let testbed = diab_testbed(args.scale(10_000), args.seed).expect("DIAB testbed");
    let points = batch_size_sweep(&testbed, &args.seeker_config(), &[1, 2, 3, 5, 8], 10, 200)
        .expect("experiment");
    println!("{}", batch_table(&points));
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
