//! Ablation: the α partial-data ratio.
//!
//! Sweeps α from 1% to 100%, measuring the offline-initialization time the
//! sampling saves against the extra labels the rough features cost — the
//! trade the paper's §3.3 optimization navigates at α = 10%.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_core::{RefineBudget, ViewSeekerConfig};
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::alpha_sweep;
use viewseeker_eval::report::{alpha_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation: α sweep (DIAB)",
        "labels and runtime to UD = 0 across partial-data ratios; refinement budget fixed",
    );
    let testbed = diab_testbed(args.scale(20_000), args.seed).expect("DIAB testbed");
    let config = ViewSeekerConfig {
        refine_budget: RefineBudget::Views(25),
        ..args.seeker_config()
    };
    let alphas = [0.01, 0.05, 0.10, 0.25, 0.50, 1.0];
    let points = alpha_sweep(&testbed, &config, &alphas, 10, 200).expect("experiment");
    println!("{}", alpha_table(&points));
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
