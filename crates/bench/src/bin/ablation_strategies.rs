//! Ablation: query strategy.
//!
//! The paper picks least-confidence uncertainty sampling for its efficiency
//! and cites QBC (Seung et al.) as an alternative; random sampling is the
//! no-active-learning control. This bench measures the labels each strategy
//! needs to reach 100% precision@10, averaged over all 11 ideal functions.
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::strategy_ablation;
use viewseeker_eval::report::{strategy_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation: uncertainty sampling vs random vs query-by-committee (DIAB)",
        "labels to 100% precision@10, averaged over all 11 Table 2 ideal functions",
    );
    let testbed = diab_testbed(args.scale(10_000), args.seed).expect("DIAB testbed");
    let points = strategy_ablation(&testbed, &args.seeker_config(), 10, 200).expect("experiment");
    println!("{}", strategy_table(&points));
    args.maybe_write_json(&to_json(&points).expect("serializable"));
}
