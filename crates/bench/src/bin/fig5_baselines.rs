//! Regenerates **Figure 5: Precision comparison with individual utility
//! features**.
//!
//! Ideal utility function #11 (0.3·EMD + 0.3·KL + 0.4·Accuracy) on DIAB:
//! ViewSeeker's learned estimator against the 8 fixed single-feature
//! baselines, in maximum achievable precision@10.
//!
//! Paper's headline: ViewSeeker achieves ≈3× the precision of the best
//! fixed baseline (EMD).
#![forbid(unsafe_code)]

use viewseeker_bench::{banner, BenchArgs};
use viewseeker_eval::diab_testbed;
use viewseeker_eval::experiments::baseline_experiment;
use viewseeker_eval::report::{baseline_table, to_json};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Figure 5: ViewSeeker vs fixed single-feature baselines (DIAB)",
        "ideal u* = 0.3*EMD + 0.3*KL + 0.4*Accuracy (Table 2 #11), k = 10",
    );
    let testbed = diab_testbed(args.scale(20_000), args.seed).expect("DIAB testbed");
    let cmp =
        baseline_experiment(&testbed, &args.seeker_config(), 11, 10, 200).expect("experiment");
    println!("{}", baseline_table(&cmp));
    println!(
        "ViewSeeker converged in {} labels; precision trace: {:?}",
        cmp.labels_used,
        cmp.viewseeker_trace
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    args.maybe_write_json(&to_json(&cmp).expect("serializable"));
}
