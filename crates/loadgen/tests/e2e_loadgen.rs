//! Smoke end-to-end: loadgen against a real in-process server on the
//! event I/O path. The bar here is correctness, not throughput — every
//! response must frame cleanly (zero protocol errors) and full sessions
//! must complete.

use std::time::Duration;

use viewseeker_server::{serve_app, IoModel, LogFormat, LogLevel, ServerConfig};

#[test]
fn loadgen_completes_sessions_with_zero_protocol_errors() {
    let handle = serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 64,
        ttl: Duration::from_secs(600),
        snapshot_dir: None,
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        io: IoModel::Event,
        ..Default::default()
    })
    .expect("bind");

    let report = viewseeker_loadgen::run(&viewseeker_loadgen::Config {
        addr: handle.addr().to_string(),
        connections: 8,
        duration: Duration::from_secs(2),
        feedback_rounds: 1,
        ramp: Duration::from_millis(200),
    })
    .expect("load run");

    assert_eq!(report.protocol_errors, 0, "{}", report.to_json());
    assert_eq!(report.errors, 0, "{}", report.to_json());
    assert!(report.requests > 0, "{}", report.to_json());
    assert!(report.sessions > 0, "{}", report.to_json());
    assert!(report.p99_us >= report.p50_us, "{}", report.to_json());

    handle.shutdown();
}

#[test]
fn loadgen_refuses_a_dead_target() {
    // Port 9 on localhost: nothing listens there in the test environment.
    let err = viewseeker_loadgen::run(&viewseeker_loadgen::Config {
        addr: "127.0.0.1:9".into(),
        connections: 2,
        duration: Duration::from_millis(100),
        feedback_rounds: 0,
        ramp: Duration::ZERO,
    });
    assert!(err.is_err());
}
