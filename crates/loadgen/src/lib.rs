//! `viewseeker-loadgen`: a closed-loop load generator for the ViewSeeker
//! HTTP service.
//!
//! Each of N concurrent keep-alive connections replays the interactive
//! session mix end to end — create → (next → feedback) × k → recommend →
//! delete — then immediately starts a fresh session, until the configured
//! duration elapses. "Closed-loop" means a connection never has more than
//! one request in flight: the next request is issued only after the
//! previous response is fully parsed, so offered load adapts to server
//! latency instead of queueing unboundedly inside the client.
//!
//! The client rides the same building blocks as the server's event path:
//! [`viewseeker_net::sys::Poller`] for readiness, the incremental
//! [`viewseeker_net::http1`] parser for framing, and the log-linear
//! [`viewseeker_net::hist::Histogram`] for latency quantiles. A `503`
//! answer (admission-control shedding) is counted and the request is
//! retried on the same connection; it is not a protocol error. Protocol
//! errors — truncated frames, unparseable responses, unexpected EOF
//! mid-response — are what the differential/bench harness asserts to be
//! zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use viewseeker_net::hist::Histogram;
use viewseeker_net::http1::{parse_response, ParsedResponse};
use viewseeker_net::sys::{Interest, Poller};

/// Scores the simulated user assigns across feedback rounds (cycled).
const SCORES: &[&str] = &["0.9", "0.1", "0.7", "0.4", "0.8"];

/// Session-create spec template; `{seed}` varies per connection+session so
/// concurrent sessions exercise distinct seeker states.
const DATASET: &str = "diab";
const ROWS: usize = 200;
const QUERY: &str = "a0 = 'a0_v0'";

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Target server address (`host:port`).
    pub addr: String,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// How long to keep the loop running.
    pub duration: Duration,
    /// Feedback rounds per session (the `k` in the mix).
    pub feedback_rounds: usize,
    /// Linear connection ramp: client `i` of `n` connects `ramp * i / n`
    /// into the run instead of all connections up front (`--ramp`; zero
    /// keeps the old everything-at-once behavior).
    pub ramp: Duration,
}

/// Latency summary for one step of the session mix.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointStats {
    /// Step name: `create`, `next`, `feedback`, `recommend`, or `delete`.
    pub endpoint: &'static str,
    /// Responses received for this step (any status).
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

/// Aggregate results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Connections that were actually established.
    pub connections: usize,
    /// Wall-clock run length in seconds.
    pub duration_secs: f64,
    /// Configured connection ramp in seconds (zero = no ramp).
    pub ramp_secs: f64,
    /// Responses received (any status).
    pub requests: u64,
    /// Full sessions completed (create through delete).
    pub sessions: u64,
    /// Non-2xx, non-503 responses.
    pub errors: u64,
    /// Framing/transport failures: unparseable responses, EOF
    /// mid-response, connect failures mid-run.
    pub protocol_errors: u64,
    /// `503 Service Unavailable` responses (admission-control sheds).
    pub shed: u64,
    /// Connections re-established after a server-initiated close.
    pub reconnects: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst observed request latency, microseconds.
    pub max_us: u64,
    /// Responses whose echoed `X-Request-Id` differs from the one sent
    /// (expected 0 — every response path echoes the id).
    pub id_mismatches: u64,
    /// Per-step latency breakdown, in session-mix order.
    pub endpoints: Vec<EndpointStats>,
}

impl Report {
    /// Renders the report as a single JSON object (the `loadgen` CLI
    /// output and the `BENCH_net.json`/`BENCH_trace.json` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        let endpoints = self
            .endpoints
            .iter()
            .map(|e| {
                format!(
                    "\"{}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                    e.endpoint, e.count, e.p50_us, e.p99_us, e.max_us
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"connections\": {}, \"duration_secs\": {:.3}, \
             \"ramp_secs\": {:.3}, \"requests\": {}, \
             \"sessions\": {}, \"errors\": {}, \"protocol_errors\": {}, \
             \"shed\": {}, \"reconnects\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
             \"id_mismatches\": {}, \"endpoints\": {{{endpoints}}}}}",
            self.connections,
            self.duration_secs,
            self.ramp_secs,
            self.requests,
            self.sessions,
            self.errors,
            self.protocol_errors,
            self.shed,
            self.reconnects,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.id_mismatches,
        )
    }
}

/// Where a connection is in the session script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Create,
    Next(usize),
    Feedback(usize),
    Recommend,
    Delete,
}

/// Step names in session-mix order, indexed by [`Step::index`].
const STEP_NAMES: [&str; 5] = ["create", "next", "feedback", "recommend", "delete"];

impl Step {
    /// Index into [`STEP_NAMES`] and the per-step histogram array.
    fn index(self) -> usize {
        match self {
            Step::Create => 0,
            Step::Next(_) => 1,
            Step::Feedback(_) => 2,
            Step::Recommend => 3,
            Step::Delete => 4,
        }
    }
}

/// One closed-loop connection's state machine.
struct Client {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    interest: Interest,
    step: Step,
    session: String,
    view: String,
    seed: u64,
    sent_at: Instant,
    /// A request is outstanding (response not yet parsed).
    awaiting: bool,
    /// Requests issued on this connection, for minting unique ids.
    issued: u64,
    /// The `X-Request-Id` sent with the outstanding request.
    request_id: String,
}

/// Mutable counters shared across the run loop.
#[derive(Default)]
struct Counters {
    requests: u64,
    sessions: u64,
    errors: u64,
    protocol_errors: u64,
    shed: u64,
    reconnects: u64,
    id_mismatches: u64,
}

/// Overall and per-step latency histograms.
struct Latency {
    total: Histogram,
    steps: [Histogram; 5],
}

impl Latency {
    fn new() -> Self {
        Self {
            total: Histogram::new(),
            steps: std::array::from_fn(|_| Histogram::new()),
        }
    }

    fn record(&mut self, step: Step, us: u64) {
        self.total.record(us);
        if let Some(hist) = self.steps.get_mut(step.index()) {
            hist.record(us);
        }
    }

    /// Per-step summaries in session-mix order, skipping steps never hit.
    fn endpoints(&self) -> Vec<EndpointStats> {
        STEP_NAMES
            .iter()
            .zip(&self.steps)
            .filter(|(_, hist)| hist.count() > 0)
            .map(|(name, hist)| EndpointStats {
                endpoint: name,
                count: hist.count(),
                p50_us: hist.quantile(0.50),
                p99_us: hist.quantile(0.99),
                max_us: hist.max_us(),
            })
            .collect()
    }
}

impl Client {
    fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Client {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            interest: Interest::READ,
            step: Step::Create,
            session: String::new(),
            view: String::new(),
            seed: 0,
            sent_at: Instant::now(),
            awaiting: false,
            issued: 0,
            request_id: String::new(),
        })
    }

    /// Queues the request for the current step.
    fn issue(&mut self) {
        let (method, path, body) = match self.step {
            Step::Create => (
                "POST",
                "/sessions".to_owned(),
                format!(
                    "{{\"dataset\": \"{DATASET}\", \"rows\": {ROWS}, \
                     \"seed\": {}, \"query\": \"{QUERY}\"}}",
                    self.seed
                ),
            ),
            Step::Next(_) => (
                "GET",
                format!("/sessions/{}/next?m=1", self.session),
                String::new(),
            ),
            Step::Feedback(i) => (
                "POST",
                format!("/sessions/{}/feedback", self.session),
                format!(
                    "{{\"view\": {}, \"score\": {}}}",
                    self.view,
                    SCORES[i % SCORES.len()]
                ),
            ),
            Step::Recommend => (
                "GET",
                format!("/sessions/{}/recommend?k=3", self.session),
                String::new(),
            ),
            Step::Delete => (
                "DELETE",
                format!("/sessions/{}", self.session),
                String::new(),
            ),
        };
        self.issued += 1;
        self.request_id = format!("lg-{:x}-{:x}", self.seed, self.issued);
        self.write_buf.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: loadgen\r\n\
                 X-Request-Id: {}\r\nContent-Length: {}\r\n\r\n{body}",
                self.request_id,
                body.len()
            )
            .as_bytes(),
        );
        self.sent_at = Instant::now();
        self.awaiting = true;
    }

    /// Advances the script after a successful response; returns `true`
    /// when a full session just completed.
    fn advance(&mut self, body: &[u8], rounds: usize) -> bool {
        match self.step {
            Step::Create => {
                self.session = json_field(body, "id").unwrap_or_default();
                self.step = if rounds == 0 {
                    Step::Recommend
                } else {
                    Step::Next(0)
                };
            }
            Step::Next(i) => {
                self.view = json_field(body, "id").unwrap_or_default();
                self.step = Step::Feedback(i);
            }
            Step::Feedback(i) => {
                self.step = if i + 1 < rounds {
                    Step::Next(i + 1)
                } else {
                    Step::Recommend
                };
            }
            Step::Recommend => self.step = Step::Delete,
            Step::Delete => {
                self.seed = self.seed.wrapping_add(1_000_003);
                self.step = Step::Create;
                return true;
            }
        }
        false
    }

    fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Writes as much of the pending request as the socket accepts.
    fn flush(&mut self) -> io::Result<()> {
        while self.wants_write() {
            let chunk = self.write_buf.get(self.written..).unwrap_or_default();
            match (&self.stream).write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if !self.wants_write() {
            self.write_buf.clear();
            self.written = 0;
        }
        Ok(())
    }
}

/// When each of `connections` clients should connect, as offsets from the
/// run start: a linear spread over `ramp`, first client at zero. A zero
/// ramp yields all-zero offsets (everything connects immediately).
fn ramp_offsets(ramp: Duration, connections: usize) -> Vec<Duration> {
    (0..connections)
        .map(|i| ramp.mul_f64(i as f64 / connections as f64))
        .collect()
}

/// Extracts the first `"key": value` from a JSON body, stripping quotes —
/// enough to pull session and view ids out of known-shape responses
/// without a JSON parser.
fn json_field(body: &[u8], key: &str) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text.get(start..)?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| matches!(c, ',' | '}' | ']'))
        .map_or(rest.len(), |(i, _)| i);
    Some(rest.get(..end)?.trim().trim_matches('"').to_owned())
}

/// Runs the closed loop and aggregates a [`Report`].
///
/// # Errors
///
/// Fails when the address does not resolve, when no connection can be
/// established at all, or when the platform lacks epoll (`Unsupported`).
pub fn run(config: &Config) -> io::Result<Report> {
    if config.connections == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "loadgen needs at least one connection",
        ));
    }
    let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;

    let mut poller = Poller::new()?;
    let mut counters = Counters::default();
    let mut latency = Latency::new();

    // Ramp: connection `i` of `n` is established `ramp * i / n` into the
    // run (a zero ramp brings everything up before the first poll). The
    // clock starts before the ramp so throughput reflects the whole run.
    let started = Instant::now();
    let deadline = started + config.duration;
    let offsets = ramp_offsets(config.ramp, config.connections);
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(config.connections);

    let mut events = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Bring up every connection whose ramp slot has arrived.
        while let Some(&offset) = offsets.get(clients.len()) {
            if started + offset > now {
                break;
            }
            let i = clients.len();
            match Client::connect(addr) {
                Ok(mut client) => {
                    client.seed = i as u64;
                    client.issue();
                    client.interest = Interest::READ_WRITE;
                    poller.add(client.stream.as_raw_fd(), i as u64, client.interest)?;
                    clients.push(Some(client));
                }
                // The first connect failing means the server is not there
                // at all; later failures (fd limits, backlog overflow)
                // degrade the run instead of aborting it.
                Err(e) if i == 0 => return Err(e),
                Err(_) => {
                    counters.protocol_errors += 1;
                    clients.push(None);
                }
            }
        }
        // Sleep until the deadline or the next ramp slot, whichever is
        // sooner, so a long poll never delays a scheduled connect.
        let wake = offsets
            .get(clients.len())
            .map_or(deadline, |&offset| deadline.min(started + offset));
        let remaining = wake.saturating_duration_since(now);
        let timeout_ms = i32::try_from(remaining.as_millis().min(100))
            .unwrap_or(100)
            .max(1);
        events.clear();
        poller.wait(timeout_ms, &mut events)?;
        for &event in &events {
            let index = usize::try_from(event.token).unwrap_or(usize::MAX);
            let Some(slot) = clients.get_mut(index) else {
                continue;
            };
            let Some(client) = slot.as_mut() else {
                continue;
            };
            let mut failed = event.error;
            if !failed && event.writable && client.flush().is_err() {
                failed = true;
            }
            if !failed && event.readable {
                failed = read_and_step(
                    client,
                    &mut scratch,
                    config.feedback_rounds,
                    &mut counters,
                    &mut latency,
                );
            }
            if failed {
                counters.protocol_errors += u64::from(client.awaiting);
                reconnect(&poller, slot, index, addr, &mut counters);
            } else if let Some(client) = slot.as_mut() {
                let wanted = if client.wants_write() {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if wanted != client.interest {
                    client.interest = wanted;
                    let _ = poller.modify(client.stream.as_raw_fd(), event.token, wanted);
                }
            }
        }
    }

    let established = clients.iter().flatten().count();
    let elapsed = started.elapsed().as_secs_f64();
    Ok(Report {
        connections: established,
        duration_secs: elapsed,
        ramp_secs: config.ramp.as_secs_f64(),
        requests: counters.requests,
        sessions: counters.sessions,
        errors: counters.errors,
        protocol_errors: counters.protocol_errors,
        shed: counters.shed,
        reconnects: counters.reconnects,
        throughput_rps: if elapsed > 0.0 {
            counters.requests as f64 / elapsed
        } else {
            0.0
        },
        p50_us: latency.total.quantile(0.50),
        p99_us: latency.total.quantile(0.99),
        max_us: latency.total.max_us(),
        id_mismatches: counters.id_mismatches,
        endpoints: latency.endpoints(),
    })
}

/// Drains readable bytes and processes any complete responses. Returns
/// `true` when the connection is no longer usable.
fn read_and_step(
    client: &mut Client,
    scratch: &mut [u8],
    rounds: usize,
    counters: &mut Counters,
    latency: &mut Latency,
) -> bool {
    loop {
        match (&client.stream).read(scratch) {
            Ok(0) => {
                // EOF: either a clean server-side close between requests
                // (reconnect) or a truncation mid-response (protocol
                // error, counted by the caller via `awaiting`).
                return true;
            }
            Ok(n) => client
                .read_buf
                .extend_from_slice(scratch.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
    loop {
        match parse_response(&client.read_buf) {
            Ok(None) => return false,
            Ok(Some(parsed)) => {
                client.read_buf.drain(..parsed.consumed);
                if handle_response(client, &parsed, rounds, counters, latency) {
                    return true;
                }
            }
            Err(_) => {
                counters.protocol_errors += 1;
                client.awaiting = false;
                return true;
            }
        }
    }
}

/// Applies one parsed response to the state machine. Returns `true` when
/// the server asked to close the connection.
fn handle_response(
    client: &mut Client,
    parsed: &ParsedResponse,
    rounds: usize,
    counters: &mut Counters,
    latency: &mut Latency,
) -> bool {
    counters.requests += 1;
    client.awaiting = false;
    latency.record(
        client.step,
        u64::try_from(client.sent_at.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
    if parsed.request_id.as_deref() != Some(client.request_id.as_str()) {
        counters.id_mismatches += 1;
    }
    if parsed.status == 503 {
        // Shed by admission control: retry the same step on the same
        // (still-alive) connection.
        counters.shed += 1;
    } else if parsed.status >= 300 {
        counters.errors += 1;
        // The session may be gone; restart the script from create.
        client.seed = client.seed.wrapping_add(1_000_003);
        client.step = Step::Create;
    } else if client.advance(&parsed.body, rounds) {
        counters.sessions += 1;
    }
    if parsed.keep_alive {
        client.issue();
        false
    } else {
        true
    }
}

/// Replaces a dead connection in place; on connect failure the slot is
/// abandoned for the rest of the run.
fn reconnect(
    poller: &Poller,
    slot: &mut Option<Client>,
    index: usize,
    addr: SocketAddr,
    counters: &mut Counters,
) {
    if let Some(old) = slot.take() {
        let _ = poller.remove(old.stream.as_raw_fd());
    }
    match Client::connect(addr) {
        Ok(mut client) => {
            client.seed = (index as u64).wrapping_add(counters.reconnects.wrapping_mul(7919));
            client.issue();
            client.interest = Interest::READ_WRITE;
            if poller
                .add(client.stream.as_raw_fd(), index as u64, client.interest)
                .is_ok()
            {
                counters.reconnects += 1;
                *slot = Some(client);
            }
        }
        Err(_) => counters.protocol_errors += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_pulls_ids_out_of_known_shapes() {
        assert_eq!(
            json_field(br#"{"id": "s-12", "views": 40}"#, "id").as_deref(),
            Some("s-12")
        );
        assert_eq!(
            json_field(br#"{"id": 7, "rows": 200}"#, "id").as_deref(),
            Some("7")
        );
        assert_eq!(json_field(b"not json", "id"), None);
    }

    #[test]
    fn report_serializes_as_one_json_object() {
        let report = Report {
            connections: 8,
            duration_secs: 2.0,
            ramp_secs: 0.5,
            requests: 100,
            sessions: 10,
            errors: 0,
            protocol_errors: 0,
            shed: 3,
            reconnects: 0,
            throughput_rps: 50.0,
            p50_us: 800,
            p99_us: 2_000,
            max_us: 3_000,
            id_mismatches: 0,
            endpoints: vec![
                EndpointStats {
                    endpoint: "create",
                    count: 10,
                    p50_us: 900,
                    p99_us: 2_500,
                    max_us: 3_000,
                },
                EndpointStats {
                    endpoint: "next",
                    count: 30,
                    p50_us: 700,
                    p99_us: 1_500,
                    max_us: 1_800,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"protocol_errors\": 0"), "{json}");
        assert!(json.contains("\"ramp_secs\": 0.500"), "{json}");
        assert!(json.contains("\"shed\": 3"), "{json}");
        assert!(json.contains("\"id_mismatches\": 0"), "{json}");
        assert!(
            json.contains(
                "\"next\": {\"count\": 30, \"p50_us\": 700, \"p99_us\": 1500, \"max_us\": 1800}"
            ),
            "{json}"
        );
    }

    #[test]
    fn per_step_latency_lands_in_the_right_bucket() {
        let mut latency = Latency::new();
        latency.record(Step::Create, 5_000);
        latency.record(Step::Next(0), 800);
        latency.record(Step::Next(1), 900);
        latency.record(Step::Delete, 100);
        let endpoints = latency.endpoints();
        let names: Vec<&str> = endpoints.iter().map(|e| e.endpoint).collect();
        assert_eq!(
            names,
            ["create", "next", "delete"],
            "mix order, gaps skipped"
        );
        let next = endpoints.iter().find(|e| e.endpoint == "next").unwrap();
        assert_eq!(next.count, 2);
        assert_eq!(next.max_us, 900);
        assert_eq!(latency.total.count(), 4);
    }

    #[test]
    fn ramp_offsets_spread_connects_linearly() {
        let offsets = ramp_offsets(Duration::from_secs(4), 4);
        assert_eq!(
            offsets,
            [
                Duration::ZERO,
                Duration::from_secs(1),
                Duration::from_secs(2),
                Duration::from_secs(3),
            ],
            "first client at zero, last one ramp-width/n before the end"
        );
        assert_eq!(
            ramp_offsets(Duration::ZERO, 3),
            [Duration::ZERO; 3],
            "zero ramp connects everything immediately"
        );
        assert!(ramp_offsets(Duration::from_secs(1), 0).is_empty());
    }

    #[test]
    fn script_advances_through_the_session_mix() {
        let mut client = Client {
            stream: TcpStream::connect(local_listener()).unwrap(),
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            interest: Interest::READ,
            step: Step::Create,
            session: String::new(),
            view: String::new(),
            seed: 0,
            sent_at: Instant::now(),
            awaiting: false,
            issued: 0,
            request_id: String::new(),
        };
        assert!(!client.advance(br#"{"id": "s-1"}"#, 2));
        assert_eq!(client.step, Step::Next(0));
        assert_eq!(client.session, "s-1");
        assert!(!client.advance(br#"{"id": 4}"#, 2));
        assert_eq!(client.step, Step::Feedback(0));
        assert_eq!(client.view, "4");
        assert!(!client.advance(b"{}", 2));
        assert_eq!(client.step, Step::Next(1));
        assert!(!client.advance(br#"{"id": 9}"#, 2));
        assert!(!client.advance(b"{}", 2));
        assert_eq!(client.step, Step::Recommend);
        assert!(!client.advance(b"{}", 2));
        assert_eq!(client.step, Step::Delete);
        assert!(client.advance(b"{}", 2), "delete completes the session");
        assert_eq!(client.step, Step::Create);
    }

    fn local_listener() -> SocketAddr {
        // A throwaway listener so the state-machine test can hold a real
        // TcpStream without a server.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::mem::forget(listener);
        addr
    }
}
