//! Property-based tests of the learning substrate: exact recovery, bounded
//! outputs, scaler idempotence, and solver round-trips on arbitrary inputs.

use proptest::prelude::*;
use viewseeker_learn::active::QueryStrategy;
use viewseeker_learn::{
    LogisticConfig, LogisticRegression, Matrix, MinMaxScaler, QueryByCommittee, RandomSampling,
    RidgeConfig, RidgeRegression, UncertaintySampling,
};

/// Feature rows in the unit cube (matching the normalized feature matrix).
fn arb_rows(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ridge_recovers_noiseless_linear_functions(
        rows in arb_rows(24, 4),
        w in proptest::collection::vec(-3.0f64..3.0, 4),
        intercept in -2.0f64..2.0,
    ) {
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>() + intercept)
            .collect();
        let mut m = RidgeRegression::new(RidgeConfig { lambda: 1e-10, fit_intercept: true });
        m.fit(&rows, &y).unwrap();
        for (r, target) in rows.iter().zip(&y) {
            let pred = m.predict(r).unwrap();
            prop_assert!(
                (pred - target).abs() < 1e-5 * (1.0 + target.abs()),
                "pred {pred} vs target {target}"
            );
        }
    }

    #[test]
    fn ridge_predictions_are_finite_on_any_data(
        rows in arb_rows(8, 3),
        y in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let mut m = RidgeRegression::new(RidgeConfig::default());
        m.fit(&rows, &y).unwrap();
        for r in &rows {
            prop_assert!(m.predict(r).unwrap().is_finite());
        }
    }

    #[test]
    fn logistic_probabilities_in_unit_interval(
        rows in arb_rows(10, 3),
        labels in proptest::collection::vec(0u8..2, 10),
    ) {
        let y: Vec<f64> = labels.iter().map(|l| f64::from(*l)).collect();
        let mut m = LogisticRegression::new(LogisticConfig {
            max_iterations: 200,
            ..LogisticConfig::default()
        });
        m.fit(&rows, &y).unwrap();
        for r in &rows {
            let p = m.predict_proba(r).unwrap();
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn scaler_output_is_unit_bounded_and_idempotent(rows in arb_rows(12, 5)) {
        let s = MinMaxScaler::fit(&rows).unwrap();
        let once = s.transform_batch(&rows).unwrap();
        for row in &once {
            prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // Fitting on already-scaled data and transforming again is identity
        // (within fp tolerance) for non-constant columns.
        let s2 = MinMaxScaler::fit(&once).unwrap();
        let twice = s2.transform_batch(&once).unwrap();
        for (a, b) in once.iter().flatten().zip(twice.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-9 || *b == 0.0);
        }
    }

    #[test]
    fn cholesky_round_trip_on_random_spd(
        data in proptest::collection::vec(-2.0f64..2.0, 12),
        x_true in proptest::collection::vec(-5.0f64..5.0, 3),
    ) {
        // SPD via AᵀA + I.
        let a = Matrix::from_rows(4, 3, data).unwrap();
        let g = a.gram_regularized(1.0);
        let b = g.mul_vec(&x_true).unwrap();
        let x = g.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn strategies_score_every_candidate(
        labeled in arb_rows(6, 3),
        candidates in arb_rows(9, 3),
        labels in proptest::collection::vec(0u8..2, 6),
    ) {
        // Guarantee both classes so the classifier-based strategies are
        // well-posed.
        let mut y: Vec<f64> = labels.iter().map(|l| f64::from(*l)).collect();
        y[0] = 0.0;
        y[1] = 1.0;
        let mut strategies: Vec<Box<dyn QueryStrategy>> = vec![
            Box::new(UncertaintySampling::default()),
            Box::new(RandomSampling::new(3)),
            Box::new(QueryByCommittee::new(LogisticConfig {
                max_iterations: 100,
                ..LogisticConfig::default()
            }, 3, 5)),
        ];
        for s in &mut strategies {
            let scores = s.scores(&labeled, &y, &candidates).unwrap();
            prop_assert_eq!(scores.len(), candidates.len(), "{}", s.name());
            prop_assert!(scores.iter().all(|v| v.is_finite()));
            let top = s.select_top(&labeled, &y, &candidates, 3).unwrap();
            prop_assert_eq!(top.len(), 3);
            prop_assert!(top.iter().all(|i| *i < candidates.len()));
        }
    }

    #[test]
    fn ridge_interpolates_single_sample(row in proptest::collection::vec(0.0f64..1.0, 6), y in 0.0f64..1.0) {
        let mut m = RidgeRegression::new(RidgeConfig::default());
        m.fit(std::slice::from_ref(&row), &[y]).unwrap();
        prop_assert!((m.predict(&row).unwrap() - y).abs() < 1e-2);
    }
}
