//! Ridge-regularized linear regression — the **view utility estimator**.
//!
//! The paper chooses linear regression "because the task for predicting the
//! utility score of a view can naturally be seen as a regression task"
//! (§3.2), and because the ideal utility function is itself a linear
//! combination of utility components (Eq. 4) — so the hypothesis class
//! matches the target class exactly.
//!
//! A small ridge term keeps the normal equations positive definite when few
//! labels exist (early iterations train on 2–3 examples in an 8-dimensional
//! feature space).

use crate::matrix::{dot, Matrix};
use crate::LearnError;

/// Configuration for [`RidgeRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidgeConfig {
    /// L2 penalty λ on the feature weights (the intercept is not penalized).
    pub lambda: f64,
    /// Whether to fit an intercept term.
    pub fit_intercept: bool,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            fit_intercept: true,
        }
    }
}

/// A fitted (or not-yet-fitted) ridge regression model.
///
/// ```
/// use viewseeker_learn::{RidgeConfig, RidgeRegression};
///
/// // y = 2x exactly.
/// let x = vec![vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![2.0, 4.0, 6.0];
/// let mut model = RidgeRegression::new(RidgeConfig::default());
/// model.fit(&x, &y).unwrap();
/// assert!((model.predict(&[4.0]).unwrap() - 8.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    config: RidgeConfig,
    /// Learned feature weights; `None` until fitted.
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl RidgeRegression {
    /// Creates an unfitted model.
    #[must_use]
    pub fn new(config: RidgeConfig) -> Self {
        Self {
            config,
            weights: None,
            intercept: 0.0,
        }
    }

    /// Fits the model on `x` (one row per sample) against targets `y` by
    /// solving the ridge normal equations with a Cholesky factorization.
    ///
    /// # Errors
    ///
    /// * [`LearnError::DimensionMismatch`] if `x.len() != y.len()` or rows
    ///   have inconsistent lengths;
    /// * [`LearnError::InsufficientData`] for an empty training set;
    /// * [`LearnError::Numerical`] if the system is singular despite the
    ///   ridge.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), LearnError> {
        if x.is_empty() {
            return Err(LearnError::InsufficientData { got: 0, need: 1 });
        }
        if x.len() != y.len() {
            return Err(LearnError::DimensionMismatch(format!(
                "{} samples vs {} targets",
                x.len(),
                y.len()
            )));
        }
        let d = x.first().map_or(0, Vec::len);
        if x.iter().any(|row| row.len() != d) {
            return Err(LearnError::DimensionMismatch(
                "inconsistent feature dimensions".into(),
            ));
        }

        let cols = if self.config.fit_intercept { d + 1 } else { d };
        let mut data = Vec::with_capacity(x.len() * cols);
        for row in x {
            data.extend_from_slice(row);
            if self.config.fit_intercept {
                data.push(1.0);
            }
        }
        let design = Matrix::from_rows(x.len(), cols, data)?;
        let mut gram = design.gram_regularized(self.config.lambda.max(0.0));
        if self.config.fit_intercept {
            // Remove the ridge from the intercept column, but keep a tiny
            // jitter so the factorization cannot hit an exact zero pivot.
            if let Some(slot) = gram.at_mut(d, d) {
                *slot += 1e-12 - self.config.lambda.max(0.0);
            }
        }
        let rhs = design.transpose_mul_vec(y)?;
        let mut solution = gram.cholesky_solve(&rhs)?;

        if self.config.fit_intercept {
            // The intercept is the trailing column of the design matrix.
            self.intercept = solution.pop().unwrap_or_default();
            self.weights = Some(solution);
        } else {
            self.intercept = 0.0;
            self.weights = Some(solution);
        }
        Ok(())
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// * [`LearnError::NotFitted`] before `fit`;
    /// * [`LearnError::DimensionMismatch`] on a wrong-length input.
    pub fn predict(&self, features: &[f64]) -> Result<f64, LearnError> {
        let w = self.weights.as_ref().ok_or(LearnError::NotFitted)?;
        if features.len() != w.len() {
            return Err(LearnError::DimensionMismatch(format!(
                "expected {} features, got {}",
                w.len(),
                features.len()
            )));
        }
        Ok(dot(w, features) + self.intercept)
    }

    /// Predicts targets for many feature vectors.
    ///
    /// # Errors
    ///
    /// Same as [`RidgeRegression::predict`].
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, LearnError> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// The learned weights, if fitted.
    #[must_use]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// The learned intercept (0 until fitted or when disabled).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether the model has been fitted.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.weights.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(x: &[Vec<f64>], y: &[f64], cfg: RidgeConfig) -> RidgeRegression {
        let mut m = RidgeRegression::new(cfg);
        m.fit(x, y).unwrap();
        m
    }

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2 x0 - 3 x1 + 5
        let x: Vec<Vec<f64>> = vec![
            vec![0., 0.],
            vec![1., 0.],
            vec![0., 1.],
            vec![2., 3.],
            vec![4., 1.],
        ];
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let m = fit(
            &x,
            &y,
            RidgeConfig {
                lambda: 1e-10,
                fit_intercept: true,
            },
        );
        let w = m.weights().unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] + 3.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-6);
        assert!((m.predict(&[10.0, -1.0]).unwrap() - 28.0).abs() < 1e-5);
    }

    #[test]
    fn without_intercept() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![2.0, 4.0, 6.0];
        let m = fit(
            &x,
            &y,
            RidgeConfig {
                lambda: 1e-10,
                fit_intercept: false,
            },
        );
        assert!((m.weights().unwrap()[0] - 2.0).abs() < 1e-6);
        assert_eq!(m.intercept(), 0.0);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![2.0, 4.0, 6.0];
        let small = fit(
            &x,
            &y,
            RidgeConfig {
                lambda: 1e-8,
                fit_intercept: false,
            },
        );
        let big = fit(
            &x,
            &y,
            RidgeConfig {
                lambda: 100.0,
                fit_intercept: false,
            },
        );
        assert!(big.weights().unwrap()[0].abs() < small.weights().unwrap()[0].abs());
    }

    #[test]
    fn handles_underdetermined_system_via_ridge() {
        // 2 samples, 5 features: only solvable thanks to regularization.
        let x = vec![vec![1., 0., 2., 1., 0.], vec![0., 1., 1., 0., 3.]];
        let y = vec![1.0, 0.0];
        let m = fit(&x, &y, RidgeConfig::default());
        assert!(m.is_fitted());
        let preds = m.predict_batch(&x).unwrap();
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn duplicate_features_do_not_blow_up() {
        // Perfectly collinear columns — singular without the ridge.
        let x = vec![vec![1., 1.], vec![2., 2.], vec![3., 3.]];
        let y = vec![1., 2., 3.];
        let m = fit(&x, &y, RidgeConfig::default());
        assert!((m.predict(&[2.0, 2.0]).unwrap() - 2.0).abs() < 0.05);
    }

    #[test]
    fn error_paths() {
        let mut m = RidgeRegression::new(RidgeConfig::default());
        assert!(matches!(m.predict(&[1.0]), Err(LearnError::NotFitted)));
        assert!(matches!(
            m.fit(&[], &[]),
            Err(LearnError::InsufficientData { .. })
        ));
        assert!(m.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(m.fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
        m.fit(&[vec![1.0, 2.0]], &[1.0]).unwrap();
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn single_sample_fit_predicts_its_label() {
        let mut m = RidgeRegression::new(RidgeConfig::default());
        m.fit(&[vec![0.5, 0.25]], &[0.7]).unwrap();
        // With one sample the intercept should absorb most of the target.
        assert!((m.predict(&[0.5, 0.25]).unwrap() - 0.7).abs() < 1e-3);
    }
}
