//! L2-regularized logistic regression — the **uncertainty estimator**.
//!
//! "Since estimating the uncertainty of a given view requires a probabilistic
//! based machine learning model, the view utility estimator (i.e.,
//! non-probabilistic linear regression model) cannot be used to obtain the
//! uncertainty score. To overcome this challenge, we employed a separate
//! Logistic Regression model trained on the same set of labeled views"
//! (paper §3.2).
//!
//! Training is full-batch gradient descent with a fixed learning rate,
//! L2 penalty, and convergence detection on the gradient norm — simple,
//! deterministic, and comfortably fast at active-learning training-set
//! sizes (tens of samples).

use crate::matrix::dot;
use crate::LearnError;

/// Configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// L2 penalty on the weights (not the intercept).
    pub lambda: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Maximum gradient-descent iterations.
    pub max_iterations: usize,
    /// Stop when the gradient's L∞ norm falls below this.
    pub tolerance: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            learning_rate: 0.5,
            max_iterations: 2_000,
            tolerance: 1e-6,
        }
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A binary logistic-regression classifier with probability output.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    config: LogisticConfig,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    #[must_use]
    pub fn new(config: LogisticConfig) -> Self {
        Self {
            config,
            weights: None,
            intercept: 0.0,
        }
    }

    /// Fits on samples `x` with binary labels `y` (each 0.0 or 1.0; values
    /// in between are accepted and treated as soft labels — the gradient of
    /// cross-entropy is linear in the label, so soft targets are
    /// well-defined).
    ///
    /// # Errors
    ///
    /// * [`LearnError::InsufficientData`] for an empty training set;
    /// * [`LearnError::DimensionMismatch`] for ragged rows or a length
    ///   mismatch with `y`.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), LearnError> {
        if x.is_empty() {
            return Err(LearnError::InsufficientData { got: 0, need: 1 });
        }
        if x.len() != y.len() {
            return Err(LearnError::DimensionMismatch(format!(
                "{} samples vs {} labels",
                x.len(),
                y.len()
            )));
        }
        let d = x.first().map_or(0, Vec::len);
        if x.iter().any(|r| r.len() != d) {
            return Err(LearnError::DimensionMismatch(
                "inconsistent feature dimensions".into(),
            ));
        }

        let n = x.len() as f64;
        // Keep the ridge term's update contractive: gradient descent on the
        // L2 penalty alone multiplies w by (1 − lr·λ) each step, which
        // diverges when lr·λ > 2. Damp the step size accordingly so any λ is
        // stable without the caller tuning the learning rate.
        let lr = self.config.learning_rate / (1.0 + self.config.learning_rate * self.config.lambda);
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..self.config.max_iterations {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &yi) in x.iter().zip(y) {
                let err = sigmoid(dot(&w, row) + b) - yi;
                for (g, v) in grad_w.iter_mut().zip(row) {
                    *g += err * v;
                }
                grad_b += err;
            }
            let mut max_grad = grad_b.abs() / n;
            for (g, wi) in grad_w.iter_mut().zip(&w) {
                *g = *g / n + self.config.lambda * wi;
                max_grad = max_grad.max(g.abs());
            }
            grad_b /= n;
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= lr * g;
            }
            b -= lr * grad_b;
            if max_grad < self.config.tolerance {
                break;
            }
        }
        self.weights = Some(w);
        self.intercept = b;
        Ok(())
    }

    /// Predicted probability of the positive class for one sample.
    ///
    /// # Errors
    ///
    /// [`LearnError::NotFitted`] before fitting;
    /// [`LearnError::DimensionMismatch`] on a wrong-length input.
    pub fn predict_proba(&self, features: &[f64]) -> Result<f64, LearnError> {
        let w = self.weights.as_ref().ok_or(LearnError::NotFitted)?;
        if features.len() != w.len() {
            return Err(LearnError::DimensionMismatch(format!(
                "expected {} features, got {}",
                w.len(),
                features.len()
            )));
        }
        Ok(sigmoid(dot(w, features) + self.intercept))
    }

    /// Predicted probabilities for many samples.
    ///
    /// # Errors
    ///
    /// Same as [`LogisticRegression::predict_proba`].
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, LearnError> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Hard 0/1 prediction at threshold 0.5.
    ///
    /// # Errors
    ///
    /// Same as [`LogisticRegression::predict_proba`].
    pub fn predict(&self, features: &[f64]) -> Result<f64, LearnError> {
        Ok(if self.predict_proba(features)? >= 0.5 {
            1.0
        } else {
            0.0
        })
    }

    /// Whether the model has been fitted.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.weights.is_some()
    }

    /// The learned weights, if fitted.
    #[must_use]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-800.0) >= 0.0); // no underflow panic
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn separates_linearly_separable_data() {
        let x: Vec<Vec<f64>> = vec![
            vec![0.0, 0.1],
            vec![0.2, 0.0],
            vec![0.1, 0.2],
            vec![0.9, 1.0],
            vec![1.0, 0.8],
            vec![0.8, 0.9],
        ];
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y).unwrap();
        for (row, yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(row).unwrap(), *yi);
        }
        assert!(m.predict_proba(&[1.0, 1.0]).unwrap() > 0.9);
        assert!(m.predict_proba(&[0.0, 0.0]).unwrap() < 0.1);
    }

    #[test]
    fn midpoint_is_uncertain() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba(&[0.5]).unwrap();
        assert!((p - 0.5).abs() < 0.05, "midpoint p = {p}");
    }

    #[test]
    fn soft_labels_are_accepted() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![0.1, 0.5, 0.9];
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y).unwrap();
        let p0 = m.predict_proba(&[0.0]).unwrap();
        let p1 = m.predict_proba(&[1.0]).unwrap();
        assert!(p0 < 0.5 && p1 > 0.5);
    }

    #[test]
    fn all_one_class_predicts_that_class() {
        let x = vec![vec![0.3], vec![0.7]];
        let y = vec![1.0, 1.0];
        let mut m = LogisticRegression::new(LogisticConfig::default());
        m.fit(&x, &y).unwrap();
        assert!(m.predict_proba(&[0.5]).unwrap() > 0.5);
    }

    #[test]
    fn regularization_bounds_weights() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let mut strong = LogisticRegression::new(LogisticConfig {
            lambda: 10.0,
            ..LogisticConfig::default()
        });
        strong.fit(&x, &y).unwrap();
        let mut weak = LogisticRegression::new(LogisticConfig {
            lambda: 1e-6,
            ..LogisticConfig::default()
        });
        weak.fit(&x, &y).unwrap();
        assert!(strong.weights().unwrap()[0].abs() < weak.weights().unwrap()[0].abs());
    }

    #[test]
    fn error_paths() {
        let mut m = LogisticRegression::new(LogisticConfig::default());
        assert!(matches!(
            m.predict_proba(&[1.0]),
            Err(LearnError::NotFitted)
        ));
        assert!(m.fit(&[], &[]).is_err());
        assert!(m.fit(&[vec![1.0]], &[1.0, 0.0]).is_err());
        assert!(m.fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 0.0]).is_err());
        m.fit(&[vec![1.0, 0.0]], &[1.0]).unwrap();
        assert!(m.predict_proba(&[1.0]).is_err());
    }
}
