//! Hand-rolled machine-learning substrate for ViewSeeker.
//!
//! The paper's interactive loop needs exactly two models plus a query
//! strategy, all small enough to retrain within the sub-second iteration
//! budget:
//!
//! * [`linreg`] — ridge-regularized **linear regression** (the *view utility
//!   estimator*): predicts the user's utility score for every view from its
//!   8 utility features;
//! * [`logreg`] — L2-regularized **logistic regression** (the *uncertainty
//!   estimator*): a probabilistic classifier over the same features whose
//!   predicted probability drives uncertainty sampling;
//! * [`active`] — **query strategies**: least-confidence uncertainty
//!   sampling (the paper's choice, after Lewis & Gale), random sampling (the
//!   cold-start fallback and an ablation baseline), and query-by-committee
//!   (an ablation extension; the paper cites Seung et al. as an alternative).
//!
//! Supporting pieces: a small dense [`matrix`] type with Cholesky solving
//! for the normal equations, and a [`scaler`] for feature normalization.
//!
//! Everything is implemented from scratch per the reproduction brief ("must
//! hand-roll active learning and ranking models").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod linreg;
pub mod logreg;
pub mod matrix;
pub mod scaler;

pub use active::{QueryByCommittee, QueryStrategy, RandomSampling, UncertaintySampling};
pub use linreg::{RidgeConfig, RidgeRegression};
pub use logreg::{LogisticConfig, LogisticRegression};
pub use matrix::Matrix;
pub use scaler::MinMaxScaler;

/// Errors produced by the learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// Dimension mismatch between inputs (rows/columns/labels).
    DimensionMismatch(String),
    /// Not enough training data for the requested operation.
    InsufficientData {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// A numerical routine failed (e.g. the normal equations were singular
    /// beyond what regularization could repair).
    Numerical(String),
    /// A model was used before being fitted.
    NotFitted,
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LearnError::InsufficientData { got, need } => {
                write!(f, "insufficient data: got {got}, need {need}")
            }
            LearnError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            LearnError::NotFitted => write!(f, "model has not been fitted"),
        }
    }
}

impl std::error::Error for LearnError {}
