//! Small dense matrices.
//!
//! The estimators in this crate work in tiny feature spaces (8 utility
//! features + intercept), so a straightforward row-major `Vec<f64>` matrix
//! with an explicit Cholesky solve is both simpler and faster than pulling
//! in a linear-algebra dependency.

use crate::LearnError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            if let Some(slot) = m.at_mut(i, i) {
                *slot = 1.0;
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LearnError> {
        if data.len() != rows * cols {
            return Err(LearnError::DimensionMismatch(format!(
                "{rows}x{cols} needs {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice; empty for an out-of-range `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        self.data
            .get(start..start.saturating_add(self.cols))
            .unwrap_or(&[])
    }

    /// The entry at `(r, c)`, or `0.0` out of range. The solvers below
    /// only read coordinates their own loop bounds keep in range.
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.data
            .get(r * self.cols + c)
            .copied()
            .unwrap_or_default()
    }

    /// Mutable entry at `(r, c)`; `None` out of range.
    pub(crate) fn at_mut(&mut self, r: usize, c: usize) -> Option<&mut f64> {
        self.data.get_mut(r * self.cols + c)
    }

    /// `Aᵀ A + λI` — the regularized Gram matrix of the design matrix, the
    /// left side of the ridge normal equations.
    #[must_use]
    pub fn gram_regularized(&self, lambda: f64) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in self.data.chunks_exact(n.max(1)) {
            for (i, &vi) in row.iter().enumerate() {
                if vi == 0.0 {
                    continue;
                }
                // g[i][i..] += vi * row[i..] (upper triangle only).
                let upper = g.data.iter_mut().skip(i * n + i);
                for (gij, &vj) in upper.zip(row.iter().skip(i)) {
                    *gij += vi * vj;
                }
            }
        }
        // mirror the upper triangle and add the ridge.
        for i in 0..n {
            for j in 0..i {
                let mirrored = g.at(j, i);
                if let Some(slot) = g.at_mut(i, j) {
                    *slot = mirrored;
                }
            }
            if let Some(diag) = g.at_mut(i, i) {
                *diag += lambda;
            }
        }
        g
    }

    /// `Aᵀ y` — the right side of the normal equations.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::DimensionMismatch`] if `y.len() != rows`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Result<Vec<f64>, LearnError> {
        if y.len() != self.rows {
            return Err(LearnError::DimensionMismatch(format!(
                "vector has {} entries, matrix has {} rows",
                y.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (row, &yr) in self.data.chunks_exact(self.cols.max(1)).zip(y) {
            if yr == 0.0 {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v * yr;
            }
        }
        Ok(out)
    }

    /// `A x` for a column vector `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LearnError> {
        if x.len() != self.cols {
            return Err(LearnError::DimensionMismatch(format!(
                "vector has {} entries, matrix has {} cols",
                x.len(),
                self.cols
            )));
        }
        Ok((0..self.rows).map(|r| dot(self.row(r), x)).collect())
    }

    /// Solves `self · x = b` for a symmetric positive-definite `self` via
    /// Cholesky factorization (`self = L Lᵀ`, forward then back substitution).
    ///
    /// # Errors
    ///
    /// * [`LearnError::DimensionMismatch`] for a non-square matrix or a
    ///   wrong-length `b`;
    /// * [`LearnError::Numerical`] if the matrix is not positive definite.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, LearnError> {
        let n = self.rows;
        if self.cols != n {
            return Err(LearnError::DimensionMismatch(
                "cholesky requires a square matrix".into(),
            ));
        }
        if b.len() != n {
            return Err(LearnError::DimensionMismatch(format!(
                "rhs has {} entries, expected {n}",
                b.len()
            )));
        }
        // Factorize into lower-triangular L (row-major `n × n`).
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                // Σ_{k<j} L[i][k]·L[j][k], as a zip over the two row
                // prefixes (the slice bounds encode the loop bounds).
                let prod: f64 = l
                    .get(i * n..i * n + j)
                    .unwrap_or(&[])
                    .iter()
                    .zip(l.get(j * n..j * n + j).unwrap_or(&[]))
                    .map(|(a, b)| a * b)
                    .sum();
                let sum = self.at(i, j) - prod;
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LearnError::Numerical(format!(
                            "matrix not positive definite at pivot {i} (value {sum})"
                        )));
                    }
                    if let Some(slot) = l.get_mut(i * n + j) {
                        *slot = sum.sqrt();
                    }
                } else {
                    let pivot = l.get(j * n + j).copied().unwrap_or_default();
                    if let Some(slot) = l.get_mut(i * n + j) {
                        *slot = sum / pivot;
                    }
                }
            }
        }
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let prod: f64 = l
                .get(i * n..i * n + i)
                .unwrap_or(&[])
                .iter()
                .zip(&z)
                .map(|(a, b)| a * b)
                .sum();
            let sum = b.get(i).copied().unwrap_or_default() - prod;
            let pivot = l.get(i * n + i).copied().unwrap_or_default();
            if let Some(slot) = z.get_mut(i) {
                *slot = sum / pivot;
            }
        }
        // Back substitution: Lᵀ x = z. L's column `i` below the diagonal
        // is the strided walk starting at `(i+1, i)`.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let prod: f64 = l
                .iter()
                .skip((i + 1) * n + i)
                .step_by(n.max(1))
                .zip(x.iter().skip(i + 1))
                .map(|(a, b)| a * b)
                .sum();
            let sum = z.get(i).copied().unwrap_or_default() - prod;
            let pivot = l.get(i * n + i).copied().unwrap_or_default();
            if let Some(slot) = x.get_mut(i) {
                *slot = sum / pivot;
            }
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert!(Matrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn identity_mul() {
        let i = Matrix::identity(3);
        assert_eq!(i.mul_vec(&[1., 2., 3.]).unwrap(), vec![1., 2., 3.]);
    }

    #[test]
    fn gram_is_ata_plus_lambda() {
        let a = Matrix::from_rows(3, 2, vec![1., 0., 1., 1., 0., 2.]).unwrap();
        let g = a.gram_regularized(0.5);
        // AᵀA = [[2, 1], [1, 5]]
        assert_eq!(g[(0, 0)], 2.5);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 5.5);
    }

    #[test]
    fn transpose_mul_vec_works() {
        let a = Matrix::from_rows(3, 2, vec![1., 0., 1., 1., 0., 2.]).unwrap();
        let v = a.transpose_mul_vec(&[1., 2., 3.]).unwrap();
        assert_eq!(v, vec![3., 8.]);
        assert!(a.transpose_mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_solves_known_system() {
        // [[4, 2], [2, 3]] x = [10, 8] → x = [1.75, 1.5]
        let m = Matrix::from_rows(2, 2, vec![4., 2., 2., 3.]).unwrap();
        let x = m.cholesky_solve(&[10., 8.]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(2, 2, vec![1., 2., 2., 1.]).unwrap();
        assert!(matches!(
            m.cholesky_solve(&[1., 1.]),
            Err(LearnError::Numerical(_))
        ));
    }

    #[test]
    fn cholesky_rejects_bad_shapes() {
        let m = Matrix::zeros(2, 3);
        assert!(m.cholesky_solve(&[1., 1.]).is_err());
        let sq = Matrix::identity(2);
        assert!(sq.cholesky_solve(&[1., 2., 3.]).is_err());
    }

    #[test]
    fn solve_round_trip_random_spd() {
        // Build SPD as AᵀA + I and verify solve(g, g·x) ≈ x.
        let a =
            Matrix::from_rows(4, 3, vec![1., 2., 0., 3., 1., 1., 0., 1., 4., 2., 2., 2.]).unwrap();
        let g = a.gram_regularized(1.0);
        let x_true = vec![0.3, -1.2, 2.5];
        let b = g.mul_vec(&x_true).unwrap();
        let x = g.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}
