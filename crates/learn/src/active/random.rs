//! Random sampling.
//!
//! Used in two places: as ViewSeeker's cold-start fallback ("ViewSeeker will
//! then switch to random sampling for the subsequent interactions", paper
//! §3.2) and as the ablation baseline against which uncertainty sampling's
//! label savings are measured.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::active::QueryStrategy;
use crate::LearnError;

/// Scores every candidate with an i.i.d. uniform draw, making `select_top`
/// a uniform random choice without replacement. Seeded and deterministic.
#[derive(Debug, Clone)]
pub struct RandomSampling {
    rng: StdRng,
}

impl RandomSampling {
    /// Creates the strategy with a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl QueryStrategy for RandomSampling {
    fn scores(
        &mut self,
        _labeled_x: &[Vec<f64>],
        _labeled_y: &[f64],
        candidates: &[Vec<f64>],
    ) -> Result<Vec<f64>, LearnError> {
        Ok(candidates.iter().map(|_| self.rng.gen::<f64>()).collect())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut a = RandomSampling::new(7);
        let mut b = RandomSampling::new(7);
        assert_eq!(
            a.scores(&[], &[], &candidates).unwrap(),
            b.scores(&[], &[], &candidates).unwrap()
        );
    }

    #[test]
    fn successive_calls_differ() {
        let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut s = RandomSampling::new(7);
        let first = s.scores(&[], &[], &candidates).unwrap();
        let second = s.scores(&[], &[], &candidates).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn works_without_labels() {
        let mut s = RandomSampling::new(1);
        let top = s
            .select_top(&[], &[], &[vec![0.0], vec![1.0], vec![2.0]], 2)
            .unwrap();
        assert_eq!(top.len(), 2);
        assert_ne!(top[0], top[1]);
    }
}
