//! Query-by-committee (Seung, Opper & Sompolinsky, COLT'92).
//!
//! The paper cites QBC among the alternative query strategies; this
//! implementation exists for the strategy-ablation bench. A committee of
//! logistic regressions is trained on bootstrap resamples of the labeled
//! set; a candidate's informativeness is the committee's *soft-vote
//! disagreement* — the variance of the members' predicted probabilities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::active::{binarize, QueryStrategy};
use crate::logreg::{LogisticConfig, LogisticRegression};
use crate::LearnError;

/// Bootstrap query-by-committee over logistic regressions.
#[derive(Debug, Clone)]
pub struct QueryByCommittee {
    config: LogisticConfig,
    committee_size: usize,
    rng: StdRng,
}

impl QueryByCommittee {
    /// Creates a committee of `committee_size` members (at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `committee_size < 2` — a single member cannot disagree.
    #[must_use]
    pub fn new(config: LogisticConfig, committee_size: usize, seed: u64) -> Self {
        assert!(committee_size >= 2, "a committee needs at least 2 members");
        Self {
            config,
            committee_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl QueryStrategy for QueryByCommittee {
    fn scores(
        &mut self,
        labeled_x: &[Vec<f64>],
        labeled_y: &[f64],
        candidates: &[Vec<f64>],
    ) -> Result<Vec<f64>, LearnError> {
        if labeled_x.is_empty() {
            return Err(LearnError::InsufficientData { got: 0, need: 1 });
        }
        let y = binarize(labeled_y, 0.5);
        let n = labeled_x.len();

        let mut members = Vec::with_capacity(self.committee_size);
        for _ in 0..self.committee_size {
            // Bootstrap resample; guarantee at least one of each observed
            // class when possible by resampling until the draw is not
            // degenerate (bounded retries keep this deterministic-ish).
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = self.rng.gen_range(0..n);
                bx.push(labeled_x[i].clone());
                by.push(y[i]);
            }
            let mut model = LogisticRegression::new(self.config);
            model.fit(&bx, &by)?;
            members.push(model);
        }

        candidates
            .iter()
            .map(|c| {
                let probs: Result<Vec<f64>, LearnError> =
                    members.iter().map(|m| m.predict_proba(c)).collect();
                let probs = probs?;
                let mean = probs.iter().sum::<f64>() / probs.len() as f64;
                Ok(probs.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / probs.len() as f64)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "qbc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disagreement_is_higher_off_the_training_manifold() {
        // Labeled points cluster at the extremes; the committee should
        // disagree more around the middle than at the well-covered extremes.
        let labeled_x: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![0.05],
            vec![0.1],
            vec![0.9],
            vec![0.95],
            vec![1.0],
        ];
        let labeled_y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let candidates = vec![vec![0.0], vec![0.5], vec![1.0]];
        let mut s = QueryByCommittee::new(LogisticConfig::default(), 7, 13);
        let scores = s.scores(&labeled_x, &labeled_y, &candidates).unwrap();
        assert!(
            scores[1] >= scores[0] && scores[1] >= scores[2],
            "middle candidate should maximize disagreement: {scores:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let lx = vec![vec![0.0], vec![1.0], vec![0.2], vec![0.8]];
        let ly = vec![0.0, 1.0, 0.0, 1.0];
        let c = vec![vec![0.4], vec![0.6]];
        let s1 = QueryByCommittee::new(LogisticConfig::default(), 5, 3)
            .scores(&lx, &ly, &c)
            .unwrap();
        let s2 = QueryByCommittee::new(LogisticConfig::default(), 5, 3)
            .scores(&lx, &ly, &c)
            .unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_labels_error() {
        let mut s = QueryByCommittee::new(LogisticConfig::default(), 3, 1);
        assert!(matches!(
            s.scores(&[], &[], &[vec![0.0]]),
            Err(LearnError::InsufficientData { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least 2 members")]
    fn tiny_committee_panics() {
        let _ = QueryByCommittee::new(LogisticConfig::default(), 1, 1);
    }

    #[test]
    fn scores_are_nonnegative_variances() {
        let lx = vec![vec![0.0], vec![1.0]];
        let ly = vec![0.0, 1.0];
        let c: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let mut s = QueryByCommittee::new(LogisticConfig::default(), 4, 11);
        let scores = s.scores(&lx, &ly, &c).unwrap();
        assert!(scores.iter().all(|v| *v >= 0.0 && *v <= 0.25 + 1e-12));
    }
}
