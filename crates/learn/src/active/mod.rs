//! Active-learning query strategies.
//!
//! "A query strategy attempts to minimize the labeling costs by selecting
//! the most informative examples" (paper §3.2). The trait here abstracts
//! over the three strategies this repository ships:
//!
//! * [`UncertaintySampling`] — least confidence (the paper's choice, "the
//!   most efficient query strategy");
//! * [`RandomSampling`] — the cold-start fallback and the natural ablation
//!   baseline;
//! * [`QueryByCommittee`] — a bootstrap-committee strategy (the paper cites
//!   Seung et al.'s QBC as an alternative; we implement it for the ablation
//!   bench).

mod qbc;
mod random;
mod uncertainty;

pub use qbc::QueryByCommittee;
pub use random::RandomSampling;
pub use uncertainty::UncertaintySampling;

use crate::LearnError;

/// A strategy that scores unlabeled candidates by informativeness.
pub trait QueryStrategy {
    /// Returns one informativeness score per candidate — higher means more
    /// worth labeling. `labeled_x`/`labeled_y` are the examples labeled so
    /// far (labels in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Implementations surface model-fitting errors; all return
    /// [`LearnError::DimensionMismatch`] for ragged inputs.
    fn scores(
        &mut self,
        labeled_x: &[Vec<f64>],
        labeled_y: &[f64],
        candidates: &[Vec<f64>],
    ) -> Result<Vec<f64>, LearnError>;

    /// Human-readable strategy name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Indices of the `m` most informative candidates, best first.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryStrategy::scores`] errors.
    fn select_top(
        &mut self,
        labeled_x: &[Vec<f64>],
        labeled_y: &[f64],
        candidates: &[Vec<f64>],
        m: usize,
    ) -> Result<Vec<usize>, LearnError> {
        let scores = self.scores(labeled_x, labeled_y, candidates)?;
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(m);
        Ok(idx)
    }
}

/// Binarizes soft labels at `threshold` for classifier-based strategies.
#[must_use]
pub(crate) fn binarize(labels: &[f64], threshold: f64) -> Vec<f64> {
    labels
        .iter()
        .map(|&l| if l >= threshold { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl QueryStrategy for Fixed {
        fn scores(
            &mut self,
            _: &[Vec<f64>],
            _: &[f64],
            _: &[Vec<f64>],
        ) -> Result<Vec<f64>, LearnError> {
            Ok(self.0.clone())
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn select_top_orders_by_score() {
        let mut s = Fixed(vec![0.1, 0.9, 0.5, 0.9]);
        let top = s
            .select_top(&[], &[], &[vec![], vec![], vec![], vec![]], 3)
            .unwrap();
        assert_eq!(top, vec![1, 3, 2]); // ties broken by index
    }

    #[test]
    fn select_top_handles_m_larger_than_candidates() {
        let mut s = Fixed(vec![0.3, 0.1]);
        let top = s.select_top(&[], &[], &[vec![], vec![]], 10).unwrap();
        assert_eq!(top, vec![0, 1]);
    }

    #[test]
    fn binarize_thresholds() {
        assert_eq!(
            binarize(&[0.0, 0.5, 0.49, 1.0], 0.5),
            vec![0.0, 1.0, 0.0, 1.0]
        );
    }
}
