//! Least-confidence uncertainty sampling (Lewis & Gale, SIGIR'94).
//!
//! "The intuition underlying uncertainty sampling is that patterns with high
//! uncertainty are hard to classify, and thus if the labels of those
//! patterns are obtained, they can boost the accuracy of the classification
//! models" (paper §3.2). For a binary probabilistic classifier the least
//! confidence measure is `u(x) = 1 − p(ŷ|x)` (Eq. 6), maximized where the
//! predicted probability is closest to 0.5.

use crate::active::{binarize, QueryStrategy};
use crate::logreg::{LogisticConfig, LogisticRegression};
use crate::LearnError;

/// Uncertainty sampling backed by a logistic-regression uncertainty
/// estimator retrained on every call.
#[derive(Debug, Clone)]
pub struct UncertaintySampling {
    config: LogisticConfig,
    /// Feedback at or above this value counts as a positive label.
    positive_threshold: f64,
}

impl UncertaintySampling {
    /// Creates the strategy with the given classifier configuration.
    #[must_use]
    pub fn new(config: LogisticConfig) -> Self {
        Self {
            config,
            positive_threshold: 0.5,
        }
    }

    /// Overrides the positive-label threshold (default 0.5).
    #[must_use]
    pub fn with_positive_threshold(mut self, threshold: f64) -> Self {
        self.positive_threshold = threshold;
        self
    }
}

impl Default for UncertaintySampling {
    fn default() -> Self {
        Self::new(LogisticConfig::default())
    }
}

impl QueryStrategy for UncertaintySampling {
    fn scores(
        &mut self,
        labeled_x: &[Vec<f64>],
        labeled_y: &[f64],
        candidates: &[Vec<f64>],
    ) -> Result<Vec<f64>, LearnError> {
        let mut model = LogisticRegression::new(self.config);
        model.fit(labeled_x, &binarize(labeled_y, self.positive_threshold))?;
        candidates
            .iter()
            .map(|c| {
                let p = model.predict_proba(c)?;
                // Least confidence for the binary case: 1 − max(p, 1−p);
                // maximal (0.5) when p = 0.5.
                Ok(1.0 - p.max(1.0 - p))
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "uncertainty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_the_decision_boundary() {
        let labeled_x = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let labeled_y = vec![0.0, 0.0, 1.0, 1.0];
        let candidates = vec![vec![0.05], vec![0.5], vec![0.95]];
        let mut s = UncertaintySampling::default();
        let top = s
            .select_top(&labeled_x, &labeled_y, &candidates, 1)
            .unwrap();
        assert_eq!(top, vec![1], "the boundary point should be most uncertain");
    }

    #[test]
    fn scores_are_bounded() {
        let labeled_x = vec![vec![0.0], vec![1.0]];
        let labeled_y = vec![0.0, 1.0];
        let candidates: Vec<Vec<f64>> = (0..11).map(|i| vec![i as f64 / 10.0]).collect();
        let mut s = UncertaintySampling::default();
        let scores = s.scores(&labeled_x, &labeled_y, &candidates).unwrap();
        assert!(scores.iter().all(|u| (0.0..=0.5 + 1e-12).contains(u)));
    }

    #[test]
    fn no_labels_is_an_error() {
        let mut s = UncertaintySampling::default();
        assert!(s.scores(&[], &[], &[vec![0.0]]).is_err());
    }

    #[test]
    fn custom_threshold_changes_binarization() {
        // With threshold 0.8 the label 0.7 is negative.
        let labeled_x = vec![vec![0.0], vec![1.0]];
        let labeled_y = vec![0.7, 0.9];
        let mut low = UncertaintySampling::default();
        let mut high = UncertaintySampling::default().with_positive_threshold(0.8);
        let c = vec![vec![0.0]];
        // Low threshold: both positive → p near 1 at x=0 → low uncertainty
        // relative to the split case. Just assert both run and differ.
        let sl = low.scores(&labeled_x, &labeled_y, &c).unwrap();
        let sh = high.scores(&labeled_x, &labeled_y, &c).unwrap();
        assert_ne!(sl, sh);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(UncertaintySampling::default().name(), "uncertainty");
    }
}
