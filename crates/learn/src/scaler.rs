//! Feature scaling.
//!
//! The view feature matrix is min-max scaled per column so that (a) the
//! learned weights of the utility estimator are comparable across utility
//! components, and (b) the simulated user's "fraction of the maximum"
//! feedback is well-defined. The scaler is fitted once on the full view
//! space and then applied to any subset.

use crate::LearnError;

/// A per-column min-max scaler mapping each feature into `[0, 1]`.
///
/// ```
/// use viewseeker_learn::MinMaxScaler;
///
/// let scaler = MinMaxScaler::fit(&[vec![0.0, 100.0], vec![10.0, 300.0]]).unwrap();
/// assert_eq!(scaler.transform(&[5.0, 200.0]).unwrap(), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on `rows` (one sample per row).
    ///
    /// Constant columns get a zero range and are mapped to 0 (inert in a
    /// linear model).
    ///
    /// # Errors
    ///
    /// * [`LearnError::InsufficientData`] for an empty input;
    /// * [`LearnError::DimensionMismatch`] for ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, LearnError> {
        let first = rows
            .first()
            .ok_or(LearnError::InsufficientData { got: 0, need: 1 })?;
        let d = first.len();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in rows {
            if row.len() != d {
                return Err(LearnError::DimensionMismatch(
                    "ragged rows in scaler input".into(),
                ));
            }
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| (hi - lo).max(0.0))
            .collect();
        Ok(Self { mins, ranges })
    }

    /// Scales one row into `[0, 1]` per column (values outside the fitted
    /// range are clamped).
    ///
    /// # Errors
    ///
    /// [`LearnError::DimensionMismatch`] on a wrong-length row.
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>, LearnError> {
        if row.len() != self.mins.len() {
            return Err(LearnError::DimensionMismatch(format!(
                "expected {} features, got {}",
                self.mins.len(),
                row.len()
            )));
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                if self.ranges[j] <= 0.0 {
                    0.0
                } else {
                    ((v - self.mins[j]) / self.ranges[j]).clamp(0.0, 1.0)
                }
            })
            .collect())
    }

    /// Scales many rows.
    ///
    /// # Errors
    ///
    /// Same as [`MinMaxScaler::transform`].
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LearnError> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Number of features the scaler was fitted on.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.mins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_unit_interval() {
        let rows = vec![vec![0.0, 100.0], vec![10.0, 300.0], vec![5.0, 200.0]];
        let s = MinMaxScaler::fit(&rows).unwrap();
        assert_eq!(s.transform(&[0.0, 100.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[10.0, 300.0]).unwrap(), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[5.0, 200.0]).unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn clamps_out_of_range() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(s.transform(&[-5.0]).unwrap(), vec![0.0]);
        assert_eq!(s.transform(&[5.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn constant_column_is_zeroed() {
        let s = MinMaxScaler::fit(&[vec![3.0, 1.0], vec![3.0, 2.0]]).unwrap();
        assert_eq!(s.transform(&[3.0, 1.5]).unwrap(), vec![0.0, 0.5]);
    }

    #[test]
    fn error_paths() {
        assert!(MinMaxScaler::fit(&[]).is_err());
        assert!(MinMaxScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let s = MinMaxScaler::fit(&[vec![0.0, 1.0]]).unwrap();
        assert!(s.transform(&[1.0]).is_err());
        assert_eq!(s.dimensions(), 2);
    }

    #[test]
    fn transform_batch_matches_per_row() {
        let rows = vec![vec![1.0], vec![3.0]];
        let s = MinMaxScaler::fit(&rows).unwrap();
        let batch = s.transform_batch(&rows).unwrap();
        assert_eq!(batch, vec![vec![0.0], vec![1.0]]);
    }
}
