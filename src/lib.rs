//! # ViewSeeker
//!
//! An interactive view-recommendation library — a from-scratch Rust
//! reproduction of *"ViewSeeker: An Interactive View Recommendation Tool"*
//! (Zhang, Ge, Chrysanthis, Sharaf — BigVis @ EDBT/ICDT 2019).
//!
//! Classic view recommenders (SeeDB, MuVE, DeepEye, …) rank every possible
//! aggregate view of a dataset by a *fixed* utility function. ViewSeeker
//! instead **learns the user's utility function** — an unknown linear
//! combination of deviation, usability, accuracy, and significance
//! components — from simple 0–1 feedback on a handful of actively selected
//! example views, typically reaching the user's exact top-k in 7–16 labels.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dataset`] — in-memory columnar engine: tables, predicates, group-by
//!   aggregation, binning, sampling, CSV, synthetic-dataset generators;
//! * [`catalog`] — persistent dataset store: the VSC1 on-disk columnar
//!   format, CSV ingestion, and a shared in-memory table cache so many
//!   sessions resolve one `Arc<Table>`;
//! * [`stats`] — distributions, histogram distances (KL/EMD/L1/L2/L∞), χ²;
//! * [`learn`] — hand-rolled ridge regression, logistic regression, and
//!   active-learning query strategies;
//! * [`core`] — the ViewSeeker session itself plus baselines and metrics;
//! * [`eval`] — the simulated-user harness reproducing the paper's
//!   experiments.
//!
//! ## Quickstart
//!
//! ```
//! use viewseeker::prelude::*;
//!
//! // A dataset with categorical dimensions and numeric measures.
//! let table = generate_diab(&DiabConfig::small(2_000, 7)).unwrap();
//! // The user explores a subset (here: one patient cohort).
//! let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
//! let mut seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
//!
//! // Interactive loop: rate the views ViewSeeker presents (0 = boring,
//! // 1 = fascinating). Here a simulated user wants high-EMD views.
//! let hidden_interest = CompositeUtility::single(UtilityFeature::Emd);
//! let scores = hidden_interest.normalized_scores(seeker.feature_matrix()).unwrap();
//! for _ in 0..12 {
//!     let Some(view) = seeker.next_views(1).unwrap().pop() else { break };
//!     seeker.submit_feedback(view, scores[view.index()]).unwrap();
//! }
//!
//! // The learned estimator now ranks all 280 views by *your* taste.
//! for view in seeker.recommend(3).unwrap() {
//!     println!("{}", seeker.view_space().def(view).unwrap());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use viewseeker_catalog as catalog;
pub use viewseeker_core as core;
pub use viewseeker_dataset as dataset;
pub use viewseeker_eval as eval;
pub use viewseeker_learn as learn;
pub use viewseeker_stats as stats;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use viewseeker_core::scatter::{ScatterSpace, ScatterViewDef};
    pub use viewseeker_core::{
        precision_at_k, tie_aware_precision_at_k, utility_distance, CompositeUtility, CoreError,
        FeatureMatrix, FeedbackSession, QueryStrategyKind, RefineBudget, SeekerPhase,
        SessionSnapshot, UtilityFeature, ViewDef, ViewId, ViewSeeker, ViewSeekerConfig, ViewSpace,
    };
    pub use viewseeker_dataset::generate::{
        generate_diab, generate_syn, hypercube_query, DiabConfig, HypercubeConfig, SynConfig,
    };
    pub use viewseeker_dataset::{
        AggregateFunction, BinSpec, Column, Predicate, RowSet, Schema, SelectQuery, Table,
    };
    pub use viewseeker_eval::{
        diab_testbed, ideal_functions, run_session, syn_testbed, RunnerConfig, SessionOutcome,
        SimulatedUser, StopCriterion, Testbed, TestbedScale,
    };
    pub use viewseeker_stats::Distribution;
}
